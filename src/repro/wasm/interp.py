"""WebAssembly interpreter (MVP).

A straightforward stack-machine interpreter over decoded modules.  Used as
the semantic reference for WebAssembly execution: the differential tests
check that the Chrome/Firefox JIT pipelines produce x86 code whose
behaviour matches direct interpretation of the same module.

Structured control flow is executed with a pre-computed matching-``end``
map, so branches are O(1).
"""

from __future__ import annotations

import math
import struct

from ..errors import LinkError, TrapError
from ..ir import intops
from .module import PAGE_SIZE, WasmModule
from .validate import validate_module

_M32 = 0xFFFFFFFF
_M64 = 0xFFFFFFFFFFFFFFFF

_LOAD_FMT = {
    "i32.load": ("<I", 4, False, 32), "i64.load": ("<Q", 8, False, 64),
    "i32.load8_s": ("<b", 1, True, 32), "i32.load8_u": ("<B", 1, False, 32),
    "i32.load16_s": ("<h", 2, True, 32), "i32.load16_u": ("<H", 2, False, 32),
    "i64.load8_s": ("<b", 1, True, 64), "i64.load8_u": ("<B", 1, False, 64),
    "i64.load16_s": ("<h", 2, True, 64),
    "i64.load16_u": ("<H", 2, False, 64),
    "i64.load32_s": ("<i", 4, True, 64),
    "i64.load32_u": ("<I", 4, False, 64),
}
_STORE_FMT = {
    "i32.store": ("<I", 4, 32), "i64.store": ("<Q", 8, 64),
    "i32.store8": ("<B", 1, 8), "i32.store16": ("<H", 2, 16),
    "i64.store8": ("<B", 1, 8), "i64.store16": ("<H", 2, 16),
    "i64.store32": ("<I", 4, 32),
}


def _match_control(body):
    """Map each block/loop/if index to (end index, else index or None)."""
    matches = {}
    stack = []
    for i, instr in enumerate(body):
        op = instr.op
        if op in ("block", "loop", "if"):
            stack.append([i, None])
        elif op == "else":
            stack[-1][1] = i
        elif op == "end":
            start, else_idx = stack.pop()
            matches[start] = (i, else_idx)
    return matches


class WasmInstance:
    """An instantiated module: memory, table, globals, and execution."""

    def __init__(self, module: WasmModule, host=None, validate: bool = True,
                 max_call_depth: int = 2000):
        if validate:
            validate_module(module)
        self.module = module
        self.host = host
        initial, maximum = module.memory_pages
        self.memory = bytearray(initial * PAGE_SIZE)
        self.max_pages = maximum
        self.globals = [self._eval_const(g.init) for g in module.globals]
        self.table = list(module.table)
        self.max_call_depth = max_call_depth
        self.call_depth = 0
        self._imports = [imp for imp in module.imports if imp.kind == "func"]
        self._match_cache = {}
        for seg in module.data:
            self.memory[seg.offset:seg.offset + len(seg.data)] = seg.data

    @staticmethod
    def _eval_const(instr):
        if instr.op in ("i32.const", "i64.const", "f32.const", "f64.const"):
            value = instr.args[0]
            if instr.op == "i32.const":
                return value & _M32
            if instr.op == "i64.const":
                return value & _M64
            return float(value)
        raise TrapError(f"unsupported constant initializer {instr.op}")

    # -- embedder API -----------------------------------------------------------

    def read_mem(self, addr: int, length: int) -> bytes:
        if addr < 0 or addr + length > len(self.memory):
            raise TrapError(f"out-of-bounds read at {addr:#x}")
        return bytes(self.memory[addr:addr + length])

    def write_mem(self, addr: int, data: bytes) -> None:
        if addr < 0 or addr + len(data) > len(self.memory):
            raise TrapError(f"out-of-bounds write at {addr:#x}")
        self.memory[addr:addr + len(data)] = data

    def invoke(self, export_name: str, args=()):
        index = self.module.export_index(export_name)
        if index is None:
            raise LinkError(f"no exported function {export_name}")
        return self._call_function(index, list(args))

    # -- execution ------------------------------------------------------------------

    def _call_function(self, func_index: int, args):
        num_imports = len(self._imports)
        if func_index < num_imports:
            imp = self._imports[func_index]
            if self.host is None:
                raise LinkError(f"unresolved import {imp.name}")
            return self.host.call(self, imp.name, args)
        func = self.module.functions[func_index - num_imports]
        ftype = self.module.types[func.type_index]
        self.call_depth += 1
        if self.call_depth > self.max_call_depth:
            self.call_depth -= 1
            raise TrapError("call stack exhausted")
        try:
            locals_ = list(args)
            for valtype in func.locals:
                locals_.append(0.0 if valtype in ("f32", "f64") else 0)
            result = self._exec_body(func, ftype, locals_)
            return result
        except RecursionError:
            raise TrapError("call stack exhausted") from None
        finally:
            self.call_depth -= 1

    def _exec_body(self, func, ftype, locals_):
        body = func.body
        key = id(func)
        matches = self._match_cache.get(key)
        if matches is None:
            matches = _match_control(body)
            self._match_cache[key] = matches

        stack = []
        # Control stack entries: (op, start, end, else, height, arity)
        ctrl = [("func", -1, len(body), None, 0, len(ftype.results))]
        pc = 0
        n = len(body)
        memory = self.memory

        while pc < n or ctrl:
            if pc >= n:
                break
            instr = body[pc]
            op = instr.op
            pc += 1

            if op == "local.get":
                stack.append(locals_[instr.args[0]])
            elif op == "local.set":
                locals_[instr.args[0]] = stack.pop()
            elif op == "local.tee":
                locals_[instr.args[0]] = stack[-1]
            elif op == "i32.const":
                stack.append(instr.args[0] & _M32)
            elif op == "i64.const":
                stack.append(instr.args[0] & _M64)
            elif op in ("f32.const", "f64.const"):
                stack.append(float(instr.args[0]))
            elif op == "block" or op == "loop":
                end, _else = matches[pc - 1]
                arity = 1 if instr.args[0] else 0
                ctrl.append((op, pc - 1, end, None, len(stack), arity))
            elif op == "if":
                end, else_idx = matches[pc - 1]
                cond = stack.pop()
                arity = 1 if instr.args[0] else 0
                ctrl.append(("if", pc - 1, end, else_idx,
                             len(stack), arity))
                if not cond:
                    pc = (else_idx + 1) if else_idx is not None else end
            elif op == "else":
                # Falling into else after the then-arm: jump to end.
                frame = ctrl[-1]
                pc = frame[2]
            elif op == "end":
                ctrl.pop()
            elif op == "br" or op == "br_if":
                if op == "br_if":
                    if not stack.pop():
                        continue
                pc = self._do_branch(instr.args[0], ctrl, stack)
            elif op == "br_table":
                targets, default = instr.args
                index = stack.pop()
                depth = targets[index] if index < len(targets) else default
                pc = self._do_branch(depth, ctrl, stack)
            elif op == "return":
                break
            elif op == "call":
                pc_args = self._pop_call_args(stack, instr.args[0])
                result = self._call_function(instr.args[0], pc_args)
                if result is not None:
                    stack.append(self._norm_result(instr.args[0], result))
            elif op == "call_indirect":
                index = stack.pop()
                if not 0 <= index < len(self.table):
                    raise TrapError("undefined table element")
                target = self.table[index]
                expect = self.module.types[instr.args[0]]
                actual = self.module.func_type_of(target)
                if expect != actual:
                    raise TrapError("indirect call type mismatch")
                nargs = len(expect.params)
                args = stack[len(stack) - nargs:]
                del stack[len(stack) - nargs:]
                result = self._call_function(target, args)
                if result is not None and expect.results:
                    stack.append(result)
            elif op == "drop":
                stack.pop()
            elif op == "select":
                cond = stack.pop()
                b = stack.pop()
                a = stack.pop()
                stack.append(a if cond else b)
            elif op == "global.get":
                stack.append(self.globals[instr.args[0]])
            elif op == "global.set":
                self.globals[instr.args[0]] = stack.pop()
            elif op == "unreachable":
                raise TrapError("unreachable executed")
            elif op == "nop":
                pass
            elif op == "memory.size":
                stack.append(len(memory) // PAGE_SIZE)
            elif op == "memory.grow":
                delta = stack.pop()
                old = len(memory) // PAGE_SIZE
                new = old + delta
                if self.max_pages is not None and new > self.max_pages:
                    stack.append(_M32)  # -1
                else:
                    self.memory.extend(bytes(delta * PAGE_SIZE))
                    memory = self.memory
                    stack.append(old)
            elif op == "f64.load" or op == "f32.load":
                addr = stack.pop() + instr.args[1]
                width = 8 if op == "f64.load" else 4
                if addr < 0 or addr + width > len(memory):
                    raise TrapError("out-of-bounds memory access")
                fmt = "<d" if op == "f64.load" else "<f"
                stack.append(struct.unpack_from(fmt, memory, addr)[0])
            elif op in _LOAD_FMT:
                fmt, width, signed_load, bits = _LOAD_FMT[op]
                addr = stack.pop() + instr.args[1]
                if addr < 0 or addr + width > len(memory):
                    raise TrapError("out-of-bounds memory access")
                value = struct.unpack_from(fmt, memory, addr)[0]
                stack.append(value & ((1 << bits) - 1))
            elif op == "f64.store" or op == "f32.store":
                value = stack.pop()
                addr = stack.pop() + instr.args[1]
                width = 8 if op == "f64.store" else 4
                if addr < 0 or addr + width > len(memory):
                    raise TrapError("out-of-bounds memory access")
                fmt = "<d" if op == "f64.store" else "<f"
                struct.pack_into(fmt, memory, addr, value)
            elif op in _STORE_FMT:
                fmt, width, bits = _STORE_FMT[op]
                value = stack.pop()
                addr = stack.pop() + instr.args[1]
                if addr < 0 or addr + width > len(memory):
                    raise TrapError("out-of-bounds memory access")
                struct.pack_into(fmt, memory, addr,
                                 value & ((1 << bits) - 1))
            else:
                self._numeric(op, stack)

        if ftype.results:
            return stack[-1] if stack else 0
        return None

    def _pop_call_args(self, stack, func_index):
        ftype = self.module.func_type_of(func_index)
        nargs = len(ftype.params)
        args = stack[len(stack) - nargs:] if nargs else []
        if nargs:
            del stack[len(stack) - nargs:]
        return args

    def _norm_result(self, func_index, result):
        ftype = self.module.func_type_of(func_index)
        if not ftype.results:
            return result
        rt = ftype.results[0]
        if rt == "i32":
            return int(result) & _M32
        if rt == "i64":
            return int(result) & _M64
        return float(result)

    @staticmethod
    def _do_branch(depth, ctrl, stack):
        """Unwind to the target frame; returns the new pc."""
        target = ctrl[len(ctrl) - 1 - depth]
        op, start, end, _else, height, arity = target
        # Preserve the branch operands, discard the rest.
        if arity and op != "loop":
            operands = stack[len(stack) - arity:]
            del stack[height:]
            stack.extend(operands)
        else:
            del stack[height:]
        if op == "loop":
            # Back edge: unwind to (but keep) the loop frame.
            if depth:
                del ctrl[len(ctrl) - depth:]
            return start + 1
        # Forward branch: the target frame is popped too (its `end` is
        # skipped), and execution resumes after it.
        del ctrl[len(ctrl) - depth - 1:]
        return end + 1 if op != "func" else 10 ** 9

    # -- numeric operations -----------------------------------------------------------

    def _numeric(self, op, stack) -> None:
        prefix, _, suffix = op.partition(".")
        try:
            if prefix in ("i32", "i64"):
                bits = 32 if prefix == "i32" else 64
                self._int_op(suffix, bits, stack)
            elif prefix in ("f32", "f64"):
                self._float_op(op, prefix, suffix, stack)
            else:
                raise TrapError(f"unhandled opcode {op}")
        except ZeroDivisionError:
            raise TrapError("integer divide by zero") from None
        except ArithmeticError as exc:
            raise TrapError(str(exc)) from None

    def _int_op(self, suffix, bits, stack) -> None:
        mask = (1 << bits) - 1
        if suffix == "eqz":
            stack.append(1 if stack.pop() == 0 else 0)
            return
        if suffix == "clz":
            stack.append(intops.clz(stack.pop(), bits))
            return
        if suffix == "ctz":
            stack.append(intops.ctz(stack.pop(), bits))
            return
        if suffix == "popcnt":
            stack.append(intops.popcnt(stack.pop(), bits))
            return
        if suffix == "wrap_i64":
            stack.append(stack.pop() & _M32)
            return
        if suffix in ("extend_i32_s", "extend_i32_u"):
            value = stack.pop()
            if suffix.endswith("_s"):
                stack.append(intops.signed32(value) & _M64)
            else:
                stack.append(value & _M32)
            return
        if suffix.startswith("trunc_"):
            value = stack.pop()
            stack.append(intops.trunc_f64(value, bits,
                                          suffix.endswith("_s")))
            return
        if suffix.startswith("reinterpret"):
            value = stack.pop()
            if bits == 64:
                stack.append(intops.f64_bits(value))
            else:
                stack.append(struct.unpack("<I", struct.pack("<f", value))[0])
            return

        b = stack.pop()
        a = stack.pop()
        sa, sb = intops.signed(a, bits), intops.signed(b, bits)
        if suffix == "add":
            stack.append((a + b) & mask)
        elif suffix == "sub":
            stack.append((a - b) & mask)
        elif suffix == "mul":
            stack.append((a * b) & mask)
        elif suffix == "div_s":
            if sa == -(1 << (bits - 1)) and sb == -1:
                raise TrapError("integer overflow")
            stack.append(intops.div_s(a, b, bits))
        elif suffix == "div_u":
            stack.append(intops.div_u(a, b, bits))
        elif suffix == "rem_s":
            stack.append(intops.rem_s(a, b, bits))
        elif suffix == "rem_u":
            stack.append(intops.rem_u(a, b, bits))
        elif suffix == "and":
            stack.append(a & b)
        elif suffix == "or":
            stack.append(a | b)
        elif suffix == "xor":
            stack.append(a ^ b)
        elif suffix == "shl":
            stack.append(intops.shl(a, b, bits))
        elif suffix == "shr_s":
            stack.append(intops.shr_s(a, b, bits))
        elif suffix == "shr_u":
            stack.append(intops.shr_u(a, b, bits))
        elif suffix == "rotl":
            stack.append(intops.rotl(a, b, bits))
        elif suffix == "rotr":
            stack.append(intops.rotr(a, b, bits))
        elif suffix == "eq":
            stack.append(1 if a == b else 0)
        elif suffix == "ne":
            stack.append(1 if a != b else 0)
        elif suffix == "lt_s":
            stack.append(1 if sa < sb else 0)
        elif suffix == "lt_u":
            stack.append(1 if a < b else 0)
        elif suffix == "gt_s":
            stack.append(1 if sa > sb else 0)
        elif suffix == "gt_u":
            stack.append(1 if a > b else 0)
        elif suffix == "le_s":
            stack.append(1 if sa <= sb else 0)
        elif suffix == "le_u":
            stack.append(1 if a <= b else 0)
        elif suffix == "ge_s":
            stack.append(1 if sa >= sb else 0)
        elif suffix == "ge_u":
            stack.append(1 if a >= b else 0)
        else:
            raise TrapError(f"unhandled integer op {suffix}")

    def _float_op(self, op, prefix, suffix, stack) -> None:
        def narrow(x: float) -> float:
            if prefix == "f32":
                return struct.unpack("<f", struct.pack("<f", x))[0]
            return x

        if suffix.startswith("convert_"):
            value = stack.pop()
            bits = 64 if "i64" in suffix else 32
            if suffix.endswith("_s"):
                stack.append(narrow(float(intops.signed(value, bits))))
            else:
                stack.append(narrow(float(value & ((1 << bits) - 1))))
            return
        if suffix == "demote_f64" or suffix == "promote_f32":
            stack.append(narrow(stack.pop()))
            return
        if suffix.startswith("reinterpret"):
            value = stack.pop()
            if prefix == "f64":
                stack.append(intops.bits_f64(value))
            else:
                stack.append(struct.unpack("<f", struct.pack("<I",
                                                             value))[0])
            return
        if suffix in ("abs", "neg", "ceil", "floor", "trunc", "nearest",
                      "sqrt"):
            value = stack.pop()
            if suffix == "abs":
                result = abs(value)
            elif suffix == "neg":
                result = -value
            elif suffix == "ceil":
                result = float(math.ceil(value))
            elif suffix == "floor":
                result = float(math.floor(value))
            elif suffix == "trunc":
                result = float(math.trunc(value))
            elif suffix == "nearest":
                result = float(round(value))
            else:
                result = math.sqrt(value) if value >= 0 else float("nan")
            stack.append(narrow(result))
            return

        b = stack.pop()
        a = stack.pop()
        if suffix == "add":
            stack.append(narrow(a + b))
        elif suffix == "sub":
            stack.append(narrow(a - b))
        elif suffix == "mul":
            stack.append(narrow(a * b))
        elif suffix == "div":
            if b == 0.0:
                stack.append(float("inf") if a > 0
                             else float("-inf") if a < 0 else float("nan"))
            else:
                stack.append(narrow(a / b))
        elif suffix == "min":
            stack.append(min(a, b))
        elif suffix == "max":
            stack.append(max(a, b))
        elif suffix == "copysign":
            stack.append(math.copysign(a, b))
        elif suffix == "eq":
            stack.append(1 if a == b else 0)
        elif suffix == "ne":
            stack.append(1 if a != b else 0)
        elif suffix == "lt":
            stack.append(1 if a < b else 0)
        elif suffix == "gt":
            stack.append(1 if a > b else 0)
        elif suffix == "le":
            stack.append(1 if a <= b else 0)
        elif suffix == "ge":
            stack.append(1 if a >= b else 0)
        else:
            raise TrapError(f"unhandled float op {op}")
