"""WebAssembly interpreter (MVP) with table dispatch.

A stack-machine interpreter over decoded modules, used as the semantic
reference for WebAssembly execution: the differential tests check that
the Chrome/Firefox JIT pipelines produce x86 code whose behaviour
matches direct interpretation of the same module.

Execution is driven by a pre-decoded instruction stream: each function
body is decoded once (per instance) into a list of ``(kind, payload)``
entries.  Structured control flow (matching ``end``, ``else`` targets,
block arities) is resolved at decode time so branches are O(1), and
every numeric/memory/const opcode becomes a single precomputed handler
closure from the module-level opcode tables below — the hot loop does
one list index, one small-int compare, and one call per step instead of
walking an if/elif chain over opcode strings.

:mod:`repro.wasm.interp_baseline` keeps the original chain-dispatch
implementation as an independent semantic cross-check (and as the
pre-optimization baseline for ``bench/``).
"""

from __future__ import annotations

import math
import struct

from ..errors import FuelExhausted, LinkError, ReproError, TrapError
from ..ir import intops
from ..tier import HOT_CALLS, note_promotion, tier_level
from .module import PAGE_SIZE, WasmModule
from .validate import validate_module

_M32 = 0xFFFFFFFF
_M64 = 0xFFFFFFFFFFFFFFFF

_LOAD_FMT = {
    "i32.load": ("<I", 4, False, 32), "i64.load": ("<Q", 8, False, 64),
    "i32.load8_s": ("<b", 1, True, 32), "i32.load8_u": ("<B", 1, False, 32),
    "i32.load16_s": ("<h", 2, True, 32), "i32.load16_u": ("<H", 2, False, 32),
    "i64.load8_s": ("<b", 1, True, 64), "i64.load8_u": ("<B", 1, False, 64),
    "i64.load16_s": ("<h", 2, True, 64),
    "i64.load16_u": ("<H", 2, False, 64),
    "i64.load32_s": ("<i", 4, True, 64),
    "i64.load32_u": ("<I", 4, False, 64),
}
_STORE_FMT = {
    "i32.store": ("<I", 4, 32), "i64.store": ("<Q", 8, 64),
    "i32.store8": ("<B", 1, 8), "i32.store16": ("<H", 2, 16),
    "i64.store8": ("<B", 1, 8), "i64.store16": ("<H", 2, 16),
    "i64.store32": ("<I", 4, 32),
}


def _match_control(body):
    """Map each block/loop/if index to (end index, else index or None)."""
    matches = {}
    stack = []
    for i, instr in enumerate(body):
        op = instr.op
        if op in ("block", "loop", "if"):
            stack.append([i, None])
        elif op == "else":
            stack[-1][1] = i
        elif op == "end":
            start, else_idx = stack.pop()
            matches[start] = (i, else_idx)
    return matches


# ---------------------------------------------------------------------------
# Per-opcode handler tables, built once at module load.
#
# Each entry is a closure ``f(stack)`` with every immediate-free numeric
# operation fully bound; the decoder binds immediates (constants, memory
# offsets) into per-instruction closures.  Semantics mirror the original
# chain-dispatch interpreter exactly — including which operations raise
# Python arithmetic errors (converted to traps by the execution loop).
# ---------------------------------------------------------------------------

def _int_ops(prefix: str, bits: int) -> dict:
    mask = (1 << bits) - 1
    int_min = -(1 << (bits - 1))
    signed = intops.signed
    t = {}

    def eqz(stack):
        stack.append(1 if stack.pop() == 0 else 0)

    def clz(stack):
        stack.append(intops.clz(stack.pop(), bits))

    def ctz(stack):
        stack.append(intops.ctz(stack.pop(), bits))

    def popcnt(stack):
        stack.append(intops.popcnt(stack.pop(), bits))

    t["eqz"], t["clz"], t["ctz"], t["popcnt"] = eqz, clz, ctz, popcnt

    def add(stack):
        b = stack.pop()
        stack.append((stack.pop() + b) & mask)

    def sub(stack):
        b = stack.pop()
        stack.append((stack.pop() - b) & mask)

    def mul(stack):
        b = stack.pop()
        stack.append((stack.pop() * b) & mask)

    t["add"], t["sub"], t["mul"] = add, sub, mul

    def div_s(stack):
        b = stack.pop()
        a = stack.pop()
        if signed(a, bits) == int_min and signed(b, bits) == -1:
            raise TrapError("integer overflow")
        stack.append(intops.div_s(a, b, bits))

    def div_u(stack):
        b = stack.pop()
        stack.append(intops.div_u(stack.pop(), b, bits))

    def rem_s(stack):
        b = stack.pop()
        stack.append(intops.rem_s(stack.pop(), b, bits))

    def rem_u(stack):
        b = stack.pop()
        stack.append(intops.rem_u(stack.pop(), b, bits))

    t["div_s"], t["div_u"], t["rem_s"], t["rem_u"] = \
        div_s, div_u, rem_s, rem_u

    def and_(stack):
        b = stack.pop()
        stack.append(stack.pop() & b)

    def or_(stack):
        b = stack.pop()
        stack.append(stack.pop() | b)

    def xor(stack):
        b = stack.pop()
        stack.append(stack.pop() ^ b)

    t["and"], t["or"], t["xor"] = and_, or_, xor

    for name, fn in (("shl", intops.shl), ("shr_s", intops.shr_s),
                     ("shr_u", intops.shr_u), ("rotl", intops.rotl),
                     ("rotr", intops.rotr)):
        def shift(stack, _fn=fn):
            b = stack.pop()
            stack.append(_fn(stack.pop(), b, bits))
        t[name] = shift

    def eq(stack):
        b = stack.pop()
        stack.append(1 if stack.pop() == b else 0)

    def ne(stack):
        b = stack.pop()
        stack.append(1 if stack.pop() != b else 0)

    def lt_u(stack):
        b = stack.pop()
        stack.append(1 if stack.pop() < b else 0)

    def gt_u(stack):
        b = stack.pop()
        stack.append(1 if stack.pop() > b else 0)

    def le_u(stack):
        b = stack.pop()
        stack.append(1 if stack.pop() <= b else 0)

    def ge_u(stack):
        b = stack.pop()
        stack.append(1 if stack.pop() >= b else 0)

    def lt_s(stack):
        b = stack.pop()
        stack.append(1 if signed(stack.pop(), bits) < signed(b, bits)
                     else 0)

    def gt_s(stack):
        b = stack.pop()
        stack.append(1 if signed(stack.pop(), bits) > signed(b, bits)
                     else 0)

    def le_s(stack):
        b = stack.pop()
        stack.append(1 if signed(stack.pop(), bits) <= signed(b, bits)
                     else 0)

    def ge_s(stack):
        b = stack.pop()
        stack.append(1 if signed(stack.pop(), bits) >= signed(b, bits)
                     else 0)

    t["eq"], t["ne"] = eq, ne
    t["lt_u"], t["gt_u"], t["le_u"], t["ge_u"] = lt_u, gt_u, le_u, ge_u
    t["lt_s"], t["gt_s"], t["le_s"], t["ge_s"] = lt_s, gt_s, le_s, ge_s

    def trunc(stack, _s=True):
        stack.append(intops.trunc_f64(stack.pop(), bits, _s))

    for name in ("trunc_f32_s", "trunc_f64_s"):
        t[name] = trunc
    for name in ("trunc_f32_u", "trunc_f64_u"):
        def trunc_u(stack):
            stack.append(intops.trunc_f64(stack.pop(), bits, False))
        t[name] = trunc_u

    if bits == 32:
        def wrap(stack):
            stack.append(stack.pop() & _M32)

        def reinterpret(stack):
            stack.append(struct.unpack(
                "<I", struct.pack("<f", stack.pop()))[0])

        t["wrap_i64"] = wrap
        t["reinterpret_f32"] = reinterpret
    else:
        def extend_s(stack):
            stack.append(intops.signed32(stack.pop()) & _M64)

        def extend_u(stack):
            stack.append(stack.pop() & _M32)

        def reinterpret(stack):
            stack.append(intops.f64_bits(stack.pop()))

        t["extend_i32_s"] = extend_s
        t["extend_i32_u"] = extend_u
        t["reinterpret_f64"] = reinterpret

    return {f"{prefix}.{name}": fn for name, fn in t.items()}


def _float_ops(prefix: str) -> dict:
    f32 = prefix == "f32"

    def narrow(x: float) -> float:
        if f32:
            return struct.unpack("<f", struct.pack("<f", x))[0]
        return x

    t = {}

    def add(stack):
        b = stack.pop()
        stack.append(narrow(stack.pop() + b))

    def sub(stack):
        b = stack.pop()
        stack.append(narrow(stack.pop() - b))

    def mul(stack):
        b = stack.pop()
        stack.append(narrow(stack.pop() * b))

    def div(stack):
        b = stack.pop()
        a = stack.pop()
        if b == 0.0:
            stack.append(float("inf") if a > 0
                         else float("-inf") if a < 0 else float("nan"))
        else:
            stack.append(narrow(a / b))

    t["add"], t["sub"], t["mul"], t["div"] = add, sub, mul, div

    def fmin(stack):
        b = stack.pop()
        stack.append(min(stack.pop(), b))

    def fmax(stack):
        b = stack.pop()
        stack.append(max(stack.pop(), b))

    def copysign(stack):
        b = stack.pop()
        stack.append(math.copysign(stack.pop(), b))

    t["min"], t["max"], t["copysign"] = fmin, fmax, copysign

    def eq(stack):
        b = stack.pop()
        stack.append(1 if stack.pop() == b else 0)

    def ne(stack):
        b = stack.pop()
        stack.append(1 if stack.pop() != b else 0)

    def lt(stack):
        b = stack.pop()
        stack.append(1 if stack.pop() < b else 0)

    def gt(stack):
        b = stack.pop()
        stack.append(1 if stack.pop() > b else 0)

    def le(stack):
        b = stack.pop()
        stack.append(1 if stack.pop() <= b else 0)

    def ge(stack):
        b = stack.pop()
        stack.append(1 if stack.pop() >= b else 0)

    t["eq"], t["ne"], t["lt"], t["gt"], t["le"], t["ge"] = \
        eq, ne, lt, gt, le, ge

    def fabs(stack):
        stack.append(narrow(abs(stack.pop())))

    def neg(stack):
        stack.append(narrow(-stack.pop()))

    def ceil(stack):
        stack.append(narrow(float(math.ceil(stack.pop()))))

    def floor(stack):
        stack.append(narrow(float(math.floor(stack.pop()))))

    def trunc(stack):
        stack.append(narrow(float(math.trunc(stack.pop()))))

    def nearest(stack):
        stack.append(narrow(float(round(stack.pop()))))

    def sqrt(stack):
        value = stack.pop()
        stack.append(narrow(math.sqrt(value) if value >= 0
                            else float("nan")))

    t["abs"], t["neg"], t["ceil"], t["floor"] = fabs, neg, ceil, floor
    t["trunc"], t["nearest"], t["sqrt"] = trunc, nearest, sqrt

    for name, bits, is_signed in (("convert_i32_s", 32, True),
                                  ("convert_i32_u", 32, False),
                                  ("convert_i64_s", 64, True),
                                  ("convert_i64_u", 64, False)):
        if is_signed:
            def convert(stack, _b=bits):
                stack.append(narrow(float(intops.signed(stack.pop(), _b))))
        else:
            def convert(stack, _m=(1 << bits) - 1):
                stack.append(narrow(float(stack.pop() & _m)))
        t[name] = convert

    def requantize(stack):
        stack.append(narrow(stack.pop()))

    if f32:
        t["demote_f64"] = requantize

        def reinterpret(stack):
            stack.append(struct.unpack(
                "<f", struct.pack("<I", stack.pop()))[0])
        t["reinterpret_i32"] = reinterpret
    else:
        t["promote_f32"] = requantize

        def reinterpret(stack):
            stack.append(intops.bits_f64(stack.pop()))
        t["reinterpret_i64"] = reinterpret

    return {f"{prefix}.{name}": fn for name, fn in t.items()}


#: Numeric opcode -> handler(stack); ZeroDivisionError/ArithmeticError
#: raised by a handler is converted to the matching trap by the loop.
NUMERIC_TABLE = {}
NUMERIC_TABLE.update(_int_ops("i32", 32))
NUMERIC_TABLE.update(_int_ops("i64", 64))
NUMERIC_TABLE.update(_float_ops("f32"))
NUMERIC_TABLE.update(_float_ops("f64"))

#: Numeric opcodes that can raise a Python arithmetic error (the K_NUM
#: guard exists for these); everything else is quickened to K_RAW in the
#: ``quicken`` tier.
_IMPURE_NUM = {f"{p}.{s}" for p in ("i32", "i64")
               for s in ("div_s", "div_u", "rem_s", "rem_u",
                         "trunc_f32_s", "trunc_f32_u",
                         "trunc_f64_s", "trunc_f64_u")}


# ---------------------------------------------------------------------------
# Operand-form pure binary ops for superinstruction fusion: ``fn(a, b)``
# with ``a`` the deeper stack operand.  Only ops that can never trap (no
# div/rem/trunc), so fused handlers need no arithmetic-trap guard —
# semantics match the stack-form NUMERIC_TABLE handlers exactly.
# ---------------------------------------------------------------------------

def _pure2_int(prefix: str, bits: int) -> dict:
    mask = (1 << bits) - 1
    signed = intops.signed
    t = {
        "add": lambda a, b: (a + b) & mask,
        "sub": lambda a, b: (a - b) & mask,
        "mul": lambda a, b: (a * b) & mask,
        "and": lambda a, b: a & b,
        "or": lambda a, b: a | b,
        "xor": lambda a, b: a ^ b,
        "shl": lambda a, b: intops.shl(a, b, bits),
        "shr_s": lambda a, b: intops.shr_s(a, b, bits),
        "shr_u": lambda a, b: intops.shr_u(a, b, bits),
        "rotl": lambda a, b: intops.rotl(a, b, bits),
        "rotr": lambda a, b: intops.rotr(a, b, bits),
        "eq": lambda a, b: 1 if a == b else 0,
        "ne": lambda a, b: 1 if a != b else 0,
        "lt_u": lambda a, b: 1 if a < b else 0,
        "gt_u": lambda a, b: 1 if a > b else 0,
        "le_u": lambda a, b: 1 if a <= b else 0,
        "ge_u": lambda a, b: 1 if a >= b else 0,
        "lt_s": lambda a, b: 1 if signed(a, bits) < signed(b, bits) else 0,
        "gt_s": lambda a, b: 1 if signed(a, bits) > signed(b, bits) else 0,
        "le_s": lambda a, b: 1 if signed(a, bits) <= signed(b, bits) else 0,
        "ge_s": lambda a, b: 1 if signed(a, bits) >= signed(b, bits) else 0,
    }
    return {f"{prefix}.{name}": fn for name, fn in t.items()}


def _pure2_float(prefix: str) -> dict:
    f32 = prefix == "f32"

    def narrow(x: float) -> float:
        if f32:
            return struct.unpack("<f", struct.pack("<f", x))[0]
        return x

    def div(a, b):
        # wasm float division never traps: +-inf / nan at zero.
        if b == 0.0:
            return (float("inf") if a > 0
                    else float("-inf") if a < 0 else float("nan"))
        return narrow(a / b)

    t = {
        "add": lambda a, b: narrow(a + b),
        "sub": lambda a, b: narrow(a - b),
        "mul": lambda a, b: narrow(a * b),
        "div": div,
        "min": lambda a, b: min(a, b),
        "max": lambda a, b: max(a, b),
        "copysign": lambda a, b: math.copysign(a, b),
        "eq": lambda a, b: 1 if a == b else 0,
        "ne": lambda a, b: 1 if a != b else 0,
        "lt": lambda a, b: 1 if a < b else 0,
        "gt": lambda a, b: 1 if a > b else 0,
        "le": lambda a, b: 1 if a <= b else 0,
        "ge": lambda a, b: 1 if a >= b else 0,
    }
    return {f"{prefix}.{name}": fn for name, fn in t.items()}


_PURE2 = {}
_PURE2.update(_pure2_int("i32", 32))
_PURE2.update(_pure2_int("i64", 64))
_PURE2.update(_pure2_float("f32"))
_PURE2.update(_pure2_float("f64"))

_CONST_OPS = ("i32.const", "i64.const", "f32.const", "f64.const")


def _const_value(instr):
    """Immediate value with the same normalization as the decoder."""
    if instr.op == "i32.const":
        return instr.args[0] & _M32
    if instr.op == "i64.const":
        return instr.args[0] & _M64
    return float(instr.args[0])


# Superinstruction handler factories.  Each returns ``h(stack, locals_)``
# whose net stack/locals effect is exactly that of executing the fused
# constituent sequence one entry at a time.

def _f_ggbs(ia, ib, fn, dst):       # get a; get b; binop; set d
    def h(stack, locals_):
        locals_[dst] = fn(locals_[ia], locals_[ib])
    return h


def _f_ggb(ia, ib, fn):             # get a; get b; binop
    def h(stack, locals_):
        stack.append(fn(locals_[ia], locals_[ib]))
    return h


def _f_gcbs(ia, k, fn, dst):        # get a; const k; binop; set d
    def h(stack, locals_):
        locals_[dst] = fn(locals_[ia], k)
    return h


def _f_gcb(ia, k, fn):              # get a; const k; binop
    def h(stack, locals_):
        stack.append(fn(locals_[ia], k))
    return h


def _f_gb(ia, fn):                  # get a; binop  (TOS op= local)
    def h(stack, locals_):
        stack[-1] = fn(stack[-1], locals_[ia])
    return h


def _f_gbs(ia, fn, dst):            # get a; binop; set d
    def h(stack, locals_):
        locals_[dst] = fn(stack.pop(), locals_[ia])
    return h


def _f_cgb(k, ib, fn):              # const k; get b; binop
    def h(stack, locals_):
        stack.append(fn(k, locals_[ib]))
    return h


def _f_cgbs(k, ib, fn, dst):        # const k; get b; binop; set d
    def h(stack, locals_):
        locals_[dst] = fn(k, locals_[ib])
    return h


def _f_gls(loadv, dst):             # get a; load; set d
    def h(stack, locals_):
        locals_[dst] = loadv(locals_)
    return h


def _f_glb(loadv, fn):              # get a; load; binop
    def h(stack, locals_):
        stack[-1] = fn(stack[-1], loadv(locals_))
    return h


def _f_glbs(loadv, fn, dst):        # get a; load; binop; set d
    def h(stack, locals_):
        locals_[dst] = fn(stack.pop(), loadv(locals_))
    return h


def _f_cbs(k, fn, dst):             # const k; binop; set d
    def h(stack, locals_):
        locals_[dst] = fn(stack.pop(), k)
    return h


def _f_cb(k, fn):                   # const k; binop
    def h(stack, locals_):
        stack[-1] = fn(stack[-1], k)
    return h


def _f_bs(fn, dst):                 # binop; set d
    def h(stack, locals_):
        b = stack.pop()
        locals_[dst] = fn(stack.pop(), b)
    return h


def _f_move(src, dst):              # get a; set d
    def h(stack, locals_):
        locals_[dst] = locals_[src]
    return h


def _f_cset(k, dst):                # const k; set d
    def h(stack, locals_):
        locals_[dst] = k
    return h


# Fused branch tests: ``t(stack, locals_)`` pops the same operands as the
# constituent sequence and returns the branch condition.

def _t_binop(fn):                   # cmp/binop; br_if
    def t(stack, locals_):
        b = stack.pop()
        return fn(stack.pop(), b)
    return t


def _t_ggb(ia, ib, fn):             # get a; get b; cmp; br_if
    def t(stack, locals_):
        return fn(locals_[ia], locals_[ib])
    return t


def _t_gcb(ia, k, fn):              # get a; const k; cmp; br_if
    def t(stack, locals_):
        return fn(locals_[ia], k)
    return t


def _t_gb(ia, fn):                  # get a; cmp; br_if
    def t(stack, locals_):
        return fn(stack.pop(), locals_[ia])
    return t


def _t_cgb(k, ib, fn):              # const k; get b; cmp; br_if
    def t(stack, locals_):
        return fn(k, locals_[ib])
    return t


# Value producers for fused stores: ``v(stack, locals_)`` computes the
# stored value with the same net stack effect as the constituent prefix.

def _v_ggb(ia, ib, fn):
    def v(stack, locals_):
        return fn(locals_[ia], locals_[ib])
    return v


def _v_gcb(ia, k, fn):
    def v(stack, locals_):
        return fn(locals_[ia], k)
    return v


def _v_binop(fn):
    def v(stack, locals_):
        b = stack.pop()
        return fn(stack.pop(), b)
    return v


def _v_gb(ia, fn):
    def v(stack, locals_):
        return fn(stack.pop(), locals_[ia])
    return v


def _v_cgb(k, ib, fn):
    def v(stack, locals_):
        return fn(k, locals_[ib])
    return v


def _v_const(k):
    def v(stack, locals_):
        return k
    return v


def _t_eqz(stack, locals_):         # eqz; br_if
    return stack.pop() == 0


def _t_get(src):                    # get a; br_if
    def t(stack, locals_):
        return locals_[src]
    return t


def _op_drop(stack):
    stack.pop()


def _op_select(stack):
    cond = stack.pop()
    b = stack.pop()
    a = stack.pop()
    stack.append(a if cond else b)


def _op_nop(stack):
    pass


def _op_unreachable(stack):
    raise TrapError("unreachable executed")


def _const_fn(value):
    def push(stack):
        stack.append(value)
    return push


def _load_fn(memory, fmt, width, mask, offset):
    unpack_from = struct.unpack_from

    def load(stack):
        addr = stack.pop() + offset
        if addr < 0 or addr + width > len(memory):
            raise TrapError("out-of-bounds memory access")
        stack.append(unpack_from(fmt, memory, addr)[0] & mask)
    return load


def _fload_fn(memory, fmt, width, offset):
    unpack_from = struct.unpack_from

    def load(stack):
        addr = stack.pop() + offset
        if addr < 0 or addr + width > len(memory):
            raise TrapError("out-of-bounds memory access")
        stack.append(unpack_from(fmt, memory, addr)[0])
    return load


def _store_fn(memory, fmt, width, mask, offset):
    pack_into = struct.pack_into

    def store(stack):
        value = stack.pop()
        addr = stack.pop() + offset
        if addr < 0 or addr + width > len(memory):
            raise TrapError("out-of-bounds memory access")
        pack_into(fmt, memory, addr, value & mask)
    return store


def _fstore_fn(memory, fmt, width, offset):
    pack_into = struct.pack_into

    def store(stack):
        value = stack.pop()
        addr = stack.pop() + offset
        if addr < 0 or addr + width > len(memory):
            raise TrapError("out-of-bounds memory access")
        pack_into(fmt, memory, addr, value)
    return store


# Decoded-entry kinds (small ints: the hot loop compares these, not
# opcode strings).
K_RAW = 0            # payload(stack): consts, memory, globals, parametrics
K_NUM = 1            # payload(stack) with arithmetic-trap conversion
K_LOCAL_GET = 2      # payload: local index
K_LOCAL_SET = 3
K_LOCAL_TEE = 4
K_END = 5
K_BLOCK = 6          # payload: (op, start, end, arity)
K_IF = 7             # payload: (start, end, else index or None, arity)
K_ELSE = 8           # payload: end index (jump target)
K_BR = 9             # payload: depth
K_BR_IF = 10
K_BR_TABLE = 11      # payload: (targets tuple, default depth)
K_RETURN = 12
K_CALL = 13          # payload: (func index, nargs, result type or None)
K_CALL_INDIRECT = 14  # payload: (expected func type, type index)
K_FALLBACK = 15      # payload: opcode string -> self._numeric

# Superinstruction kinds are negative so the hot loop filters them with a
# single ``kind < 0`` test before the ordinary chain.  A fused entry
# replaces only the FIRST slot of its pattern; the consumed interior
# slots keep their original entries, so a branch landing mid-pattern
# executes the originals and no branch-target remapping is ever needed.
K_FUSED = -1         # payload: (handler(stack, locals), skip, ops tuple)
K_FUSED_BRIF = -2    # payload: (test(stack, locals), skip, ops, depth)


class WasmInstance:
    """An instantiated module: memory, table, globals, and execution."""

    #: Default fuel: taken branches before a loop is declared runaway.
    #: Matches the x86 executor's 2G-instruction budget in spirit; every
    #: loop iteration takes at least one taken branch, so a hung guest
    #: raises ``TrapError("fuel exhausted: ...")`` instead of spinning.
    DEFAULT_FUEL = 2_000_000_000

    def __init__(self, module: WasmModule, host=None, validate: bool = True,
                 max_call_depth: int = 2000, profile=None,
                 max_fuel: int = None, tier=None, hwc=None):
        if validate:
            validate_module(module)
        self.module = module
        self.host = host
        #: Optional :class:`repro.obs.profile.WasmProfile`.  When None
        #: (the default) execution is unchanged; when set, instruction
        #: counts are bucketed per function, per wasm opcode, and per
        #: structured block.
        self.profile = profile
        #: Optional :class:`repro.obs.hwc.BranchHwc`: a branch-predictor
        #: model fed every conditional (``if``/``br_if``, fused or not)
        #: and indirect (``br_table``/``call_indirect``) branch.  Purely
        #: observational — stack, locals, fuel, and results are
        #: untouched.
        self.hwc = hwc
        #: Execution tier (0=off, 1=quicken, 2=fuse); ``None`` follows
        #: the process-wide setting from :mod:`repro.tier`.
        self._tier = tier_level(tier)
        self._ops_cache = {}
        self._name_cache = {}
        self._loop_cache = {}
        initial, maximum = module.memory_pages
        self.memory = bytearray(initial * PAGE_SIZE)
        self.max_pages = maximum
        self.globals = [self._eval_const(g.init) for g in module.globals]
        self.table = list(module.table)
        self.max_call_depth = max_call_depth
        self.call_depth = 0
        self.max_fuel = max_fuel if max_fuel is not None else \
            self.DEFAULT_FUEL
        #: Taken branches so far, shared across nested calls.
        self.fuel_used = 0
        self._imports = [imp for imp in module.imports if imp.kind == "func"]
        self._decode_cache = {}
        #: --check-ranges oracle facts from the "repro-ranges" custom
        #: section, rekeyed by function identity: {id(WasmFunction):
        #: {local index: Ival}}.  Empty unless the producer emitted them.
        self._range_facts = {}
        for func_pos, locs in getattr(module, "ranges", {}).items():
            from ..dataflow.interval import Ival
            self._range_facts[id(module.functions[func_pos])] = {
                local: Ival(bits, lo, hi, maybe)
                for local, (bits, lo, hi, maybe) in locs.items()}
        for seg in module.data:
            self.memory[seg.offset:seg.offset + len(seg.data)] = seg.data

    @staticmethod
    def _eval_const(instr):
        if instr.op in ("i32.const", "i64.const", "f32.const", "f64.const"):
            value = instr.args[0]
            if instr.op == "i32.const":
                return value & _M32
            if instr.op == "i64.const":
                return value & _M64
            return float(value)
        raise TrapError(f"unsupported constant initializer {instr.op}")

    # -- embedder API -----------------------------------------------------------

    def read_mem(self, addr: int, length: int) -> bytes:
        if addr < 0 or addr + length > len(self.memory):
            raise TrapError(f"out-of-bounds read at {addr:#x}")
        return bytes(self.memory[addr:addr + length])

    def write_mem(self, addr: int, data: bytes) -> None:
        if addr < 0 or addr + len(data) > len(self.memory):
            raise TrapError(f"out-of-bounds write at {addr:#x}")
        self.memory[addr:addr + len(data)] = data

    def invoke(self, export_name: str, args=()):
        index = self.module.export_index(export_name)
        if index is None:
            raise LinkError(f"no exported function {export_name}")
        # Guest boundary: any raw Python error escaping the interpreter
        # (the kind the fuzz suite hunts for) degrades into a TrapError,
        # so a misbehaving module can never abort the embedder.
        try:
            return self._call_function(index, list(args))
        except ReproError:
            raise
        except (IndexError, KeyError, ValueError, TypeError,
                ArithmeticError, MemoryError, UnicodeDecodeError,
                struct.error, RecursionError) as exc:
            raise TrapError(
                f"interpreter fault: {type(exc).__name__}: {exc}") from exc

    # -- pre-decoding ----------------------------------------------------------------

    def _memory_grow(self, stack) -> None:
        delta = stack.pop()
        old = len(self.memory) // PAGE_SIZE
        new = old + delta
        if self.max_pages is not None and new > self.max_pages:
            stack.append(_M32)  # -1
        else:
            # extend() keeps the bytearray's identity, so the decoded
            # memory closures stay valid after growth.
            self.memory.extend(bytes(delta * PAGE_SIZE))
            stack.append(old)

    def _decode_body(self, body):
        """Decode one function body into (kind, payload) entries."""
        matches = _match_control(body)
        numeric = NUMERIC_TABLE
        memory = self.memory
        globals_ = self.globals
        module = self.module
        code = []
        for i, instr in enumerate(body):
            op = instr.op
            if op == "local.get":
                entry = (K_LOCAL_GET, instr.args[0])
            elif op == "local.set":
                entry = (K_LOCAL_SET, instr.args[0])
            elif op == "local.tee":
                entry = (K_LOCAL_TEE, instr.args[0])
            elif op == "i32.const":
                entry = (K_RAW, _const_fn(instr.args[0] & _M32))
            elif op == "i64.const":
                entry = (K_RAW, _const_fn(instr.args[0] & _M64))
            elif op in ("f32.const", "f64.const"):
                entry = (K_RAW, _const_fn(float(instr.args[0])))
            elif op in ("block", "loop"):
                end, _else = matches[i]
                entry = (K_BLOCK, (op, i, end,
                                   1 if instr.args[0] else 0))
            elif op == "if":
                end, else_idx = matches[i]
                entry = (K_IF, (i, end, else_idx,
                                1 if instr.args[0] else 0))
            elif op == "else":
                # Falling into else after the then-arm: jump to end.
                entry = (K_ELSE, self._enclosing_end(matches, body, i))
            elif op == "end":
                entry = (K_END, None)
            elif op == "br":
                entry = (K_BR, instr.args[0])
            elif op == "br_if":
                entry = (K_BR_IF, instr.args[0])
            elif op == "br_table":
                targets, default = instr.args
                entry = (K_BR_TABLE, (tuple(targets), default))
            elif op == "return":
                entry = (K_RETURN, None)
            elif op == "call":
                index = instr.args[0]
                ftype = module.func_type_of(index)
                result = ftype.results[0] if ftype.results else None
                entry = (K_CALL, (index, len(ftype.params), result))
            elif op == "call_indirect":
                entry = (K_CALL_INDIRECT,
                         (module.types[instr.args[0]], instr.args[0]))
            elif op == "drop":
                entry = (K_RAW, _op_drop)
            elif op == "select":
                entry = (K_RAW, _op_select)
            elif op == "nop":
                entry = (K_RAW, _op_nop)
            elif op == "unreachable":
                entry = (K_RAW, _op_unreachable)
            elif op == "global.get":
                def g_get(stack, _g=globals_, _i=instr.args[0]):
                    stack.append(_g[_i])
                entry = (K_RAW, g_get)
            elif op == "global.set":
                def g_set(stack, _g=globals_, _i=instr.args[0]):
                    _g[_i] = stack.pop()
                entry = (K_RAW, g_set)
            elif op == "memory.size":
                def mem_size(stack, _m=memory):
                    stack.append(len(_m) // PAGE_SIZE)
                entry = (K_RAW, mem_size)
            elif op == "memory.grow":
                def mem_grow(stack, _self=self):
                    _self._memory_grow(stack)
                entry = (K_RAW, mem_grow)
            elif op in ("f32.load", "f64.load"):
                width = 8 if op == "f64.load" else 4
                fmt = "<d" if op == "f64.load" else "<f"
                entry = (K_RAW, _fload_fn(memory, fmt, width,
                                          instr.args[1]))
            elif op in _LOAD_FMT:
                fmt, width, _signed, bits = _LOAD_FMT[op]
                entry = (K_RAW, _load_fn(memory, fmt, width,
                                         (1 << bits) - 1, instr.args[1]))
            elif op in ("f32.store", "f64.store"):
                width = 8 if op == "f64.store" else 4
                fmt = "<d" if op == "f64.store" else "<f"
                entry = (K_RAW, _fstore_fn(memory, fmt, width,
                                           instr.args[1]))
            elif op in _STORE_FMT:
                fmt, width, bits = _STORE_FMT[op]
                entry = (K_RAW, _store_fn(memory, fmt, width,
                                          (1 << bits) - 1, instr.args[1]))
            else:
                handler = numeric.get(op)
                if handler is not None:
                    entry = (K_NUM, handler)
                else:
                    # Unknown opcode: defer to the chain interpreter's
                    # error path so messages stay identical.
                    entry = (K_FALLBACK, op)
            code.append(entry)
        return code

    @staticmethod
    def _enclosing_end(matches, body, else_index):
        """The end index of the if-block owning the else at else_index."""
        for start, (end, else_idx) in matches.items():
            if else_idx == else_index:
                return end
        raise TrapError("else without matching if")

    # -- tiering: quickening + superinstruction fusion -------------------------------

    def _promote_code(self, func, code, tier):
        """Re-decode a hot function at the given tier level.

        ``quicken`` drops the arithmetic-trap guard from trap-free
        numeric ops; ``fuse`` additionally collapses hot adjacent
        patterns into single handlers.  Slot count is preserved: a fused
        entry replaces only the first slot of its pattern and records how
        many interior slots to skip.
        """
        body = func.body
        n = len(code)
        out = list(code)
        for i, (kind, payload) in enumerate(code):
            if kind == K_NUM and body[i].op not in _IMPURE_NUM:
                out[i] = (K_RAW, payload)
        fused = 0
        if tier >= 2:
            ops = [instr.op for instr in body]
            i = 0
            while i < n:
                match = self._fuse_at(body, ops, i, n)
                if match is not None:
                    out[i], length = match
                    fused += 1
                    i += length
                else:
                    i += 1
        note_promotion(fused)
        return out

    def _fuse_at(self, body, ops, i, n):
        """Try to fuse the pattern starting at ``i``; longest match wins.

        Trap-capable constituents (loads/stores) only ever appear in the
        LAST position, so pre-charging every constituent's profile count
        before execution matches the unfused charge-then-execute order
        even when the pattern traps.
        """
        op = ops[i]
        pure2 = _PURE2
        if op == "local.get":
            ia = body[i].args[0]
            if i + 1 >= n:
                return None
            op1 = ops[i + 1]
            if op1 == "local.get" and i + 2 < n:
                fn = pure2.get(ops[i + 2])
                if fn is not None:
                    ib = body[i + 1].args[0]
                    op3 = ops[i + 3] if i + 3 < n else None
                    if op3 == "local.set":
                        dst = body[i + 3].args[0]
                        return self._entry(
                            _f_ggbs(ia, ib, fn, dst), ops, i, 4)
                    if op3 == "br_if":
                        return self._brif_entry(
                            _t_ggb(ia, ib, fn), ops, i, 4,
                            body[i + 3].args[0])
                    if op3 is not None and self._is_store(op3):
                        return self._entry(
                            self._fused_store(body[i + 3],
                                              _v_ggb(ia, ib, fn)),
                            ops, i, 4)
                    return self._entry(_f_ggb(ia, ib, fn), ops, i, 3)
            elif op1 in _CONST_OPS and i + 2 < n:
                fn = pure2.get(ops[i + 2])
                if fn is not None:
                    k = _const_value(body[i + 1])
                    op3 = ops[i + 3] if i + 3 < n else None
                    if op3 == "local.set":
                        dst = body[i + 3].args[0]
                        return self._entry(
                            _f_gcbs(ia, k, fn, dst), ops, i, 4)
                    if op3 == "br_if":
                        return self._brif_entry(
                            _t_gcb(ia, k, fn), ops, i, 4,
                            body[i + 3].args[0])
                    if op3 is not None and self._is_store(op3):
                        return self._entry(
                            self._fused_store(body[i + 3],
                                              _v_gcb(ia, k, fn)),
                            ops, i, 4)
                    return self._entry(_f_gcb(ia, k, fn), ops, i, 3)
            if op1 in _LOAD_FMT or op1 in ("f32.load", "f64.load"):
                # Patterns with the load in an interior slot are only
                # used with profiling off: pre-charging a later
                # constituent would diverge from charge-then-execute
                # order if the load trapped.  Outputs and fuel are exact
                # either way.
                if self.profile is None and i + 2 < n:
                    op2 = ops[i + 2]
                    loadv = None
                    if op2 == "local.set":
                        loadv = self._fused_load_value(ia, body[i + 1])
                        return self._entry(
                            _f_gls(loadv, body[i + 2].args[0]), ops, i, 3)
                    fn = pure2.get(op2)
                    if fn is not None:
                        loadv = self._fused_load_value(ia, body[i + 1])
                        if i + 3 < n and ops[i + 3] == "local.set":
                            return self._entry(
                                _f_glbs(loadv, fn, body[i + 3].args[0]),
                                ops, i, 4)
                        return self._entry(_f_glb(loadv, fn), ops, i, 3)
                return self._entry(
                    self._fused_get_load(ia, body[i + 1]), ops, i, 2)
            if op1 in _STORE_FMT or op1 in ("f32.store", "f64.store"):
                return self._entry(
                    self._fused_get_store(ia, body[i + 1]), ops, i, 2)
            if op1 == "local.set":
                return self._entry(
                    _f_move(ia, body[i + 1].args[0]), ops, i, 2)
            if op1 == "br_if":
                return self._brif_entry(
                    _t_get(ia), ops, i, 2, body[i + 1].args[0])
            fn = pure2.get(op1)
            if fn is not None:
                op2 = ops[i + 2] if i + 2 < n else None
                if op2 == "local.set":
                    return self._entry(
                        _f_gbs(ia, fn, body[i + 2].args[0]), ops, i, 3)
                if op2 == "br_if":
                    return self._brif_entry(
                        _t_gb(ia, fn), ops, i, 3, body[i + 2].args[0])
                if op2 is not None and self._is_store(op2):
                    return self._entry(
                        self._fused_store(body[i + 2], _v_gb(ia, fn)),
                        ops, i, 3)
                return self._entry(_f_gb(ia, fn), ops, i, 2)
            return None
        if op in _CONST_OPS:
            if i + 1 >= n:
                return None
            k = _const_value(body[i])
            op1 = ops[i + 1]
            if op1 == "local.get" and i + 2 < n:
                fn = pure2.get(ops[i + 2])
                if fn is not None:
                    ib = body[i + 1].args[0]
                    op3 = ops[i + 3] if i + 3 < n else None
                    if op3 == "local.set":
                        return self._entry(
                            _f_cgbs(k, ib, fn, body[i + 3].args[0]),
                            ops, i, 4)
                    if op3 == "br_if":
                        return self._brif_entry(
                            _t_cgb(k, ib, fn), ops, i, 4,
                            body[i + 3].args[0])
                    if op3 is not None and self._is_store(op3):
                        return self._entry(
                            self._fused_store(body[i + 3],
                                              _v_cgb(k, ib, fn)),
                            ops, i, 4)
                    return self._entry(_f_cgb(k, ib, fn), ops, i, 3)
            fn = pure2.get(op1)
            if fn is not None:
                if i + 2 < n and ops[i + 2] == "local.set":
                    dst = body[i + 2].args[0]
                    return self._entry(_f_cbs(k, fn, dst), ops, i, 3)
                return self._entry(_f_cb(k, fn), ops, i, 2)
            if op1 == "local.set":
                return self._entry(
                    _f_cset(k, body[i + 1].args[0]), ops, i, 2)
            if self._is_store(op1):
                return self._entry(
                    self._fused_store(body[i + 1], _v_const(k)), ops, i, 2)
            return None
        if i + 1 < n:
            op1 = ops[i + 1]
            fn = pure2.get(op)
            if fn is not None:
                if op1 == "local.set":
                    return self._entry(
                        _f_bs(fn, body[i + 1].args[0]), ops, i, 2)
                if op1 == "br_if":
                    return self._brif_entry(
                        _t_binop(fn), ops, i, 2, body[i + 1].args[0])
                if self._is_store(op1):
                    return self._entry(
                        self._fused_store(body[i + 1], _v_binop(fn)),
                        ops, i, 2)
            elif op in ("i32.eqz", "i64.eqz") and op1 == "br_if":
                return self._brif_entry(
                    _t_eqz, ops, i, 2, body[i + 1].args[0])
        return None

    @staticmethod
    def _is_store(op):
        return op in _STORE_FMT or op in ("f32.store", "f64.store")

    @staticmethod
    def _entry(handler, ops, i, length):
        return ((K_FUSED, (handler, length - 1,
                           tuple(ops[i:i + length]))), length)

    @staticmethod
    def _brif_entry(test, ops, i, length, depth):
        return ((K_FUSED_BRIF, (test, length - 1,
                                tuple(ops[i:i + length]), depth)), length)

    def _fused_get_load(self, src, instr):
        """Handler for ``local.get; load`` with the address pre-bound."""
        memory = self.memory
        unpack_from = struct.unpack_from
        op = instr.op
        offset = instr.args[1]
        if op in ("f32.load", "f64.load"):
            fmt = "<d" if op == "f64.load" else "<f"
            width = 8 if op == "f64.load" else 4

            def fload(stack, locals_):
                addr = locals_[src] + offset
                if addr < 0 or addr + width > len(memory):
                    raise TrapError("out-of-bounds memory access")
                stack.append(unpack_from(fmt, memory, addr)[0])
            return fload
        fmt, width, _signed, bits = _LOAD_FMT[op]
        mask = (1 << bits) - 1

        def load(stack, locals_):
            addr = locals_[src] + offset
            if addr < 0 or addr + width > len(memory):
                raise TrapError("out-of-bounds memory access")
            stack.append(unpack_from(fmt, memory, addr)[0] & mask)
        return load

    def _fused_load_value(self, src, instr):
        """Value producer ``loadv(locals_)`` for ``local.get; load``."""
        memory = self.memory
        unpack_from = struct.unpack_from
        op = instr.op
        offset = instr.args[1]
        if op in ("f32.load", "f64.load"):
            fmt = "<d" if op == "f64.load" else "<f"
            width = 8 if op == "f64.load" else 4

            def floadv(locals_):
                addr = locals_[src] + offset
                if addr < 0 or addr + width > len(memory):
                    raise TrapError("out-of-bounds memory access")
                return unpack_from(fmt, memory, addr)[0]
            return floadv
        fmt, width, _signed, bits = _LOAD_FMT[op]
        mask = (1 << bits) - 1

        def loadv(locals_):
            addr = locals_[src] + offset
            if addr < 0 or addr + width > len(memory):
                raise TrapError("out-of-bounds memory access")
            return unpack_from(fmt, memory, addr)[0] & mask
        return loadv

    def _fused_get_store(self, src, instr):
        """Handler for ``local.get; store`` with the value pre-bound."""
        memory = self.memory
        pack_into = struct.pack_into
        op = instr.op
        offset = instr.args[1]
        if op in ("f32.store", "f64.store"):
            fmt = "<d" if op == "f64.store" else "<f"
            width = 8 if op == "f64.store" else 4

            def fstore(stack, locals_):
                addr = stack.pop() + offset
                if addr < 0 or addr + width > len(memory):
                    raise TrapError("out-of-bounds memory access")
                pack_into(fmt, memory, addr, locals_[src])
            return fstore
        fmt, width, bits = _STORE_FMT[op]
        mask = (1 << bits) - 1

        def store(stack, locals_):
            addr = stack.pop() + offset
            if addr < 0 or addr + width > len(memory):
                raise TrapError("out-of-bounds memory access")
            pack_into(fmt, memory, addr, locals_[src] & mask)
        return store

    def _fused_store(self, instr, value_fn):
        """Handler for ``<value producer>; store``.

        ``value_fn(stack, locals_)`` computes the stored value with the
        same net stack effect as the fused prefix; the address comes off
        the stack exactly as in the unfused sequence.
        """
        memory = self.memory
        pack_into = struct.pack_into
        op = instr.op
        offset = instr.args[1]
        if op in ("f32.store", "f64.store"):
            fmt = "<d" if op == "f64.store" else "<f"
            width = 8 if op == "f64.store" else 4

            def fstore(stack, locals_):
                value = value_fn(stack, locals_)
                addr = stack.pop() + offset
                if addr < 0 or addr + width > len(memory):
                    raise TrapError("out-of-bounds memory access")
                pack_into(fmt, memory, addr, value)
            return fstore
        fmt, width, bits = _STORE_FMT[op]
        mask = (1 << bits) - 1

        def store(stack, locals_):
            value = value_fn(stack, locals_)
            addr = stack.pop() + offset
            if addr < 0 or addr + width > len(memory):
                raise TrapError("out-of-bounds memory access")
            pack_into(fmt, memory, addr, value & mask)
        return store

    # -- execution ------------------------------------------------------------------

    def _call_function(self, func_index: int, args):
        num_imports = len(self._imports)
        if func_index < num_imports:
            imp = self._imports[func_index]
            if self.host is None:
                raise LinkError(f"unresolved import {imp.name}")
            return self.host.call(self, imp.name, args)
        func = self.module.functions[func_index - num_imports]
        ftype = self.module.types[func.type_index]
        self.call_depth += 1
        if self.call_depth > self.max_call_depth:
            self.call_depth -= 1
            raise TrapError("call stack exhausted")
        try:
            locals_ = list(args)
            for valtype in func.locals:
                locals_.append(0.0 if valtype in ("f32", "f64") else 0)
            result = self._exec_body(func, ftype, locals_)
            return result
        except RecursionError:
            raise TrapError("call stack exhausted") from None
        finally:
            self.call_depth -= 1

    def _ops_for(self, func):
        """Opcode names parallel to the decoded stream (profiling only)."""
        key = id(func)
        ops = self._ops_cache.get(key)
        if ops is None:
            ops = [instr.op for instr in func.body]
            self._ops_cache[key] = ops
        return ops

    def _func_name(self, func) -> str:
        name = func.name
        if name:
            return name
        key = id(func)
        cached = self._name_cache.get(key)
        if cached is None:
            index = self.module.functions.index(func)
            cached = f"f{index + len(self._imports)}"
            self._name_cache[key] = cached
        return cached

    def _has_loop(self, func) -> bool:
        key = id(func)
        cached = self._loop_cache.get(key)
        if cached is None:
            cached = any(instr.op == "loop" for instr in func.body)
            self._loop_cache[key] = cached
        return cached

    def _range_violation(self, func, local, value, fact):
        """Raise the --check-ranges oracle failure for one local."""
        from ..ir.verify import RangeOracleError
        name = self._func_name(func)
        raise RangeOracleError(
            f"wasm local {local} in {name} took value {value!r} outside "
            f"the proved interval {fact!r}", function=name)

    def _exec_body(self, func, ftype, locals_):
        key = id(func)
        # Decode-cache record: [code, promoted level, entry count].
        rec = self._decode_cache.get(key)
        if rec is None:
            rec = [self._decode_body(func.body), 0, 0]
            self._decode_cache[key] = rec
        facts = self._range_facts.get(key) if self._range_facts else None
        tier = self._tier
        # Fused superinstructions may consume a local.set slot, which
        # would silently skip its oracle check — fact-bearing functions
        # stay at plain dispatch.
        if tier > rec[1] and facts is None:
            # Hotness: promote after HOT_CALLS entries, or immediately
            # when the body contains a loop (main called once still gets
            # its kernel fused); cold code keeps the plain-decode entries.
            rec[2] += 1
            if rec[2] >= HOT_CALLS or self._has_loop(func):
                rec[0] = self._promote_code(func, rec[0], tier)
                rec[1] = tier
        code = rec[0]

        # Profiling (prof=None, the default, leaves the loop untouched
        # but for one local test per step).
        prof = self.profile
        ops = pf = po = pb = fname = None
        if prof is not None:
            ops = self._ops_for(func)
            fname = self._func_name(func)
            pf = prof.functions
            po = prof.opcode_bucket(fname)
            pb = prof.block_bucket(fname)

        # Branch-predictor model (hwc=None, the default, costs one local
        # test per branch).  Sites are keyed by crc32(function name) and
        # the *body* instruction index, so fused and unfused dispatch of
        # the same br_if train the same PHT entry.
        hwc = self.hwc
        hwc_cond = hwc_ind = None
        if hwc is not None:
            from ..obs.hwc import hwc_site
            if fname is None:
                fname = self._func_name(func)
            hwc_cond = hwc.cond
            hwc_ind = hwc.indirect

        stack = []
        n = len(code)
        # Control stack entries: (op, start, end, else, height, arity)
        ctrl = [("func", -1, n, None, 0, len(ftype.results))]
        pc = 0
        do_branch = self._do_branch
        max_fuel = self.max_fuel

        while pc < n:
            kind, a = code[pc]
            if prof is not None:
                if kind >= 0:
                    pf[fname] = pf.get(fname, 0) + 1
                    op = ops[pc]
                    po[op] = po.get(op, 0) + 1
                    if kind == 6:             # block/loop entry
                        start = a[1]
                        pb[start] = pb.get(start, 0) + 1
                    elif kind == 7:           # if entry
                        start = a[0]
                        pb[start] = pb.get(start, 0) + 1
                else:
                    # Fused handler: charge every constituent opcode so
                    # attribution is identical to unfused dispatch
                    # (constituents are never block/loop/if, so block
                    # buckets need no update here).
                    cops = a[2]
                    pf[fname] = pf.get(fname, 0) + len(cops)
                    for op in cops:
                        po[op] = po.get(op, 0) + 1
            pc += 1

            if kind < 0:                      # superinstructions
                if kind == -1:                # K_FUSED
                    a[0](stack, locals_)
                    pc += a[1]
                else:                         # K_FUSED_BRIF
                    if a[0](stack, locals_):
                        if hwc_cond is not None:
                            # The br_if constituent sits at the end of
                            # the fused window: start (pc-1) + skip.
                            hwc_cond(hwc_site(fname, pc - 1 + a[1]), True)
                        self.fuel_used = fuel = self.fuel_used + 1
                        if fuel > max_fuel:
                            raise FuelExhausted(
                                "fuel exhausted: wasm branch budget "
                                "exceeded")
                        pc = do_branch(a[3], ctrl, stack)
                    else:
                        if hwc_cond is not None:
                            hwc_cond(hwc_site(fname, pc - 1 + a[1]),
                                     False)
                        pc += a[1]
            elif kind == 0:                   # K_RAW
                a(stack)
            elif kind == 1:                   # K_NUM
                try:
                    a(stack)
                except ZeroDivisionError:
                    raise TrapError("integer divide by zero") from None
                except ArithmeticError as exc:
                    raise TrapError(str(exc)) from None
            elif kind == 2:                   # K_LOCAL_GET
                stack.append(locals_[a])
            elif kind == 3:                   # K_LOCAL_SET
                value = stack.pop()
                locals_[a] = value
                if facts is not None:
                    fact = facts.get(a)
                    if fact is not None and not fact.contains(
                            value & ((1 << fact.bits) - 1)):
                        self._range_violation(func, a, value, fact)
            elif kind == 4:                   # K_LOCAL_TEE
                value = stack[-1]
                locals_[a] = value
                if facts is not None:
                    fact = facts.get(a)
                    if fact is not None and not fact.contains(
                            value & ((1 << fact.bits) - 1)):
                        self._range_violation(func, a, value, fact)
            elif kind == 5:                   # K_END
                ctrl.pop()
            elif kind == 6:                   # K_BLOCK / loop
                op, start, end, arity = a
                ctrl.append((op, start, end, None, len(stack), arity))
            elif kind == 7:                   # K_IF
                start, end, else_idx, arity = a
                cond = stack.pop()
                if hwc_cond is not None:
                    hwc_cond(hwc_site(fname, start), bool(cond))
                ctrl.append(("if", start, end, else_idx,
                             len(stack), arity))
                if not cond:
                    pc = (else_idx + 1) if else_idx is not None else end
            elif kind == 8:                   # K_ELSE
                pc = a
            elif kind == 9:                   # K_BR
                self.fuel_used = fuel = self.fuel_used + 1
                if fuel > max_fuel:
                    raise FuelExhausted(
                        "fuel exhausted: wasm branch budget exceeded")
                pc = do_branch(a, ctrl, stack)
            elif kind == 10:                  # K_BR_IF
                taken = stack.pop()
                if hwc_cond is not None:
                    hwc_cond(hwc_site(fname, pc - 1), bool(taken))
                if taken:
                    self.fuel_used = fuel = self.fuel_used + 1
                    if fuel > max_fuel:
                        raise FuelExhausted(
                            "fuel exhausted: wasm branch budget exceeded")
                    pc = do_branch(a, ctrl, stack)
            elif kind == 11:                  # K_BR_TABLE
                targets, default = a
                index = stack.pop()
                depth = targets[index] if index < len(targets) else default
                if hwc_ind is not None:
                    hwc_ind(hwc_site(fname, pc - 1), depth)
                self.fuel_used = fuel = self.fuel_used + 1
                if fuel > max_fuel:
                    raise FuelExhausted(
                        "fuel exhausted: wasm branch budget exceeded")
                pc = do_branch(depth, ctrl, stack)
            elif kind == 12:                  # K_RETURN
                break
            elif kind == 13:                  # K_CALL
                index, nargs, result_type = a
                if nargs:
                    args = stack[len(stack) - nargs:]
                    del stack[len(stack) - nargs:]
                else:
                    args = []
                result = self._call_function(index, args)
                if result is not None:
                    if result_type == "i32":
                        stack.append(int(result) & _M32)
                    elif result_type == "i64":
                        stack.append(int(result) & _M64)
                    elif result_type is None:
                        stack.append(result)
                    else:
                        stack.append(float(result))
            elif kind == 14:                  # K_CALL_INDIRECT
                expect, _type_index = a
                index = stack.pop()
                if not 0 <= index < len(self.table):
                    raise TrapError("undefined table element")
                target = self.table[index]
                if hwc_ind is not None:
                    hwc_ind(hwc_site(fname, pc - 1), target)
                actual = self.module.func_type_of(target)
                if expect != actual:
                    raise TrapError("indirect call type mismatch")
                nargs = len(expect.params)
                args = stack[len(stack) - nargs:]
                del stack[len(stack) - nargs:]
                result = self._call_function(target, args)
                if result is not None and expect.results:
                    stack.append(result)
            else:                             # K_FALLBACK
                self._numeric(a, stack)

        if ftype.results:
            return stack[-1] if stack else 0
        return None

    @staticmethod
    def _do_branch(depth, ctrl, stack):
        """Unwind to the target frame; returns the new pc."""
        target = ctrl[len(ctrl) - 1 - depth]
        op, start, end, _else, height, arity = target
        # Preserve the branch operands, discard the rest.
        if arity and op != "loop":
            operands = stack[len(stack) - arity:]
            del stack[height:]
            stack.extend(operands)
        else:
            del stack[height:]
        if op == "loop":
            # Back edge: unwind to (but keep) the loop frame.
            if depth:
                del ctrl[len(ctrl) - depth:]
            return start + 1
        # Forward branch: the target frame is popped too (its `end` is
        # skipped), and execution resumes after it.
        del ctrl[len(ctrl) - depth - 1:]
        return end + 1 if op != "func" else 10 ** 9

    def _pop_call_args(self, stack, func_index):
        ftype = self.module.func_type_of(func_index)
        nargs = len(ftype.params)
        args = stack[len(stack) - nargs:] if nargs else []
        if nargs:
            del stack[len(stack) - nargs:]
        return args

    def _norm_result(self, func_index, result):
        ftype = self.module.func_type_of(func_index)
        if not ftype.results:
            return result
        rt = ftype.results[0]
        if rt == "i32":
            return int(result) & _M32
        if rt == "i64":
            return int(result) & _M64
        return float(result)

    # -- chain-dispatch numeric operations ----------------------------------------
    #
    # Fallback for opcodes outside the precomputed tables (K_FALLBACK),
    # and the implementation behind
    # :class:`repro.wasm.interp_baseline.BaselineWasmInstance`.

    def _numeric(self, op, stack) -> None:
        prefix, _, suffix = op.partition(".")
        try:
            if prefix in ("i32", "i64"):
                bits = 32 if prefix == "i32" else 64
                self._int_op(suffix, bits, stack)
            elif prefix in ("f32", "f64"):
                self._float_op(op, prefix, suffix, stack)
            else:
                raise TrapError(f"unhandled opcode {op}")
        except ZeroDivisionError:
            raise TrapError("integer divide by zero") from None
        except ArithmeticError as exc:
            raise TrapError(str(exc)) from None

    def _int_op(self, suffix, bits, stack) -> None:
        mask = (1 << bits) - 1
        if suffix == "eqz":
            stack.append(1 if stack.pop() == 0 else 0)
            return
        if suffix == "clz":
            stack.append(intops.clz(stack.pop(), bits))
            return
        if suffix == "ctz":
            stack.append(intops.ctz(stack.pop(), bits))
            return
        if suffix == "popcnt":
            stack.append(intops.popcnt(stack.pop(), bits))
            return
        if suffix == "wrap_i64":
            stack.append(stack.pop() & _M32)
            return
        if suffix in ("extend_i32_s", "extend_i32_u"):
            value = stack.pop()
            if suffix.endswith("_s"):
                stack.append(intops.signed32(value) & _M64)
            else:
                stack.append(value & _M32)
            return
        if suffix.startswith("trunc_"):
            value = stack.pop()
            stack.append(intops.trunc_f64(value, bits,
                                          suffix.endswith("_s")))
            return
        if suffix.startswith("reinterpret"):
            value = stack.pop()
            if bits == 64:
                stack.append(intops.f64_bits(value))
            else:
                stack.append(struct.unpack("<I", struct.pack("<f", value))[0])
            return

        b = stack.pop()
        a = stack.pop()
        sa, sb = intops.signed(a, bits), intops.signed(b, bits)
        if suffix == "add":
            stack.append((a + b) & mask)
        elif suffix == "sub":
            stack.append((a - b) & mask)
        elif suffix == "mul":
            stack.append((a * b) & mask)
        elif suffix == "div_s":
            if sa == -(1 << (bits - 1)) and sb == -1:
                raise TrapError("integer overflow")
            stack.append(intops.div_s(a, b, bits))
        elif suffix == "div_u":
            stack.append(intops.div_u(a, b, bits))
        elif suffix == "rem_s":
            stack.append(intops.rem_s(a, b, bits))
        elif suffix == "rem_u":
            stack.append(intops.rem_u(a, b, bits))
        elif suffix == "and":
            stack.append(a & b)
        elif suffix == "or":
            stack.append(a | b)
        elif suffix == "xor":
            stack.append(a ^ b)
        elif suffix == "shl":
            stack.append(intops.shl(a, b, bits))
        elif suffix == "shr_s":
            stack.append(intops.shr_s(a, b, bits))
        elif suffix == "shr_u":
            stack.append(intops.shr_u(a, b, bits))
        elif suffix == "rotl":
            stack.append(intops.rotl(a, b, bits))
        elif suffix == "rotr":
            stack.append(intops.rotr(a, b, bits))
        elif suffix == "eq":
            stack.append(1 if a == b else 0)
        elif suffix == "ne":
            stack.append(1 if a != b else 0)
        elif suffix == "lt_s":
            stack.append(1 if sa < sb else 0)
        elif suffix == "lt_u":
            stack.append(1 if a < b else 0)
        elif suffix == "gt_s":
            stack.append(1 if sa > sb else 0)
        elif suffix == "gt_u":
            stack.append(1 if a > b else 0)
        elif suffix == "le_s":
            stack.append(1 if sa <= sb else 0)
        elif suffix == "le_u":
            stack.append(1 if a <= b else 0)
        elif suffix == "ge_s":
            stack.append(1 if sa >= sb else 0)
        elif suffix == "ge_u":
            stack.append(1 if a >= b else 0)
        else:
            raise TrapError(f"unhandled integer op {suffix}")

    def _float_op(self, op, prefix, suffix, stack) -> None:
        def narrow(x: float) -> float:
            if prefix == "f32":
                return struct.unpack("<f", struct.pack("<f", x))[0]
            return x

        if suffix.startswith("convert_"):
            value = stack.pop()
            bits = 64 if "i64" in suffix else 32
            if suffix.endswith("_s"):
                stack.append(narrow(float(intops.signed(value, bits))))
            else:
                stack.append(narrow(float(value & ((1 << bits) - 1))))
            return
        if suffix == "demote_f64" or suffix == "promote_f32":
            stack.append(narrow(stack.pop()))
            return
        if suffix.startswith("reinterpret"):
            value = stack.pop()
            if prefix == "f64":
                stack.append(intops.bits_f64(value))
            else:
                stack.append(struct.unpack("<f", struct.pack("<I",
                                                             value))[0])
            return
        if suffix in ("abs", "neg", "ceil", "floor", "trunc", "nearest",
                      "sqrt"):
            value = stack.pop()
            if suffix == "abs":
                result = abs(value)
            elif suffix == "neg":
                result = -value
            elif suffix == "ceil":
                result = float(math.ceil(value))
            elif suffix == "floor":
                result = float(math.floor(value))
            elif suffix == "trunc":
                result = float(math.trunc(value))
            elif suffix == "nearest":
                result = float(round(value))
            else:
                result = math.sqrt(value) if value >= 0 else float("nan")
            stack.append(narrow(result))
            return

        b = stack.pop()
        a = stack.pop()
        if suffix == "add":
            stack.append(narrow(a + b))
        elif suffix == "sub":
            stack.append(narrow(a - b))
        elif suffix == "mul":
            stack.append(narrow(a * b))
        elif suffix == "div":
            if b == 0.0:
                stack.append(float("inf") if a > 0
                             else float("-inf") if a < 0 else float("nan"))
            else:
                stack.append(narrow(a / b))
        elif suffix == "min":
            stack.append(min(a, b))
        elif suffix == "max":
            stack.append(max(a, b))
        elif suffix == "copysign":
            stack.append(math.copysign(a, b))
        elif suffix == "eq":
            stack.append(1 if a == b else 0)
        elif suffix == "ne":
            stack.append(1 if a != b else 0)
        elif suffix == "lt":
            stack.append(1 if a < b else 0)
        elif suffix == "gt":
            stack.append(1 if a > b else 0)
        elif suffix == "le":
            stack.append(1 if a <= b else 0)
        elif suffix == "ge":
            stack.append(1 if a >= b else 0)
        else:
            raise TrapError(f"unhandled float op {op}")
