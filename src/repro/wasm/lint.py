"""Post-validation lint for WebAssembly modules.

Validation proves a module is *safe*; this pass flags code that is safe
but suspicious — the kinds of artifacts a buggy producer leaves behind:

* dead code after ``unreachable`` (instructions before the enclosing
  ``end``/``else`` can never execute);
* declared locals that are written (or never touched) but never read
  via ``local.get`` — wasted local slots the register allocator still
  has to carry.

Findings are plain dicts (``func``/``check``/``message``) so they
serialize directly; nothing here raises.
"""

from __future__ import annotations

from .module import WasmModule


def lint_module(module: WasmModule) -> list:
    """Lint every defined function; returns the list of findings."""
    from ..obs import get_registry
    findings = []
    for wfunc in module.functions:
        ftype = module.types[wfunc.type_index]
        findings.extend(_lint_function(wfunc, len(ftype.params)))
    get_registry().counter("analysis.lints_emitted").inc(len(findings))
    return findings


def _lint_function(wfunc, num_params: int) -> list:
    findings = []
    name = wfunc.name or "func"

    def report(check, message):
        findings.append({"func": name, "check": check, "message": message})

    # Dead code after `unreachable`: everything up to the `end`/`else`
    # that closes the current structured frame is unreachable.
    body = wfunc.body
    i, n = 0, len(body)
    while i < n:
        if body[i].op != "unreachable":
            i += 1
            continue
        j, depth, dead = i + 1, 0, 0
        while j < n:
            op = body[j].op
            if op in ("block", "loop", "if"):
                depth += 1
            elif op == "end":
                if depth == 0:
                    break
                depth -= 1
            elif op == "else" and depth == 0:
                break
            dead += 1
            j += 1
        if dead:
            report("dead-code",
                   f"{name}: {dead} unreachable instruction(s) after "
                   f"`unreachable` at body offset {i}")
        i = j

    # Never-read locals (declared locals only; parameters are part of
    # the signature and not this lint's business).
    read = set()
    for instr in body:
        if instr.op == "local.get":
            read.add(instr.args[0])
    for offset, valtype in enumerate(wfunc.locals):
        index = num_params + offset
        if index not in read:
            report("never-read-local",
                   f"{name}: local {index} ({valtype}) is never read")
    return findings
