"""WebAssembly module structure (MVP sections)."""

from __future__ import annotations

from ..ir.types import FuncType, Type
from .opcodes import WasmInstr

#: Value types as in the binary format.
VALTYPE_CODES = {0x7F: "i32", 0x7E: "i64", 0x7D: "f32", 0x7C: "f64"}
VALTYPE_BYTES = {v: k for k, v in VALTYPE_CODES.items()}

PAGE_SIZE = 65536


def valtype_of(ty: Type) -> str:
    return ty.value


def to_ir_type(valtype: str) -> Type:
    if valtype == "f32":
        raise ValueError("f32 has no IR counterpart in this toolchain")
    return Type(valtype)


class WasmFuncType:
    """A function type as stored in the type section."""

    __slots__ = ("params", "results")

    def __init__(self, params, results):
        self.params = tuple(params)    # valtype strings
        self.results = tuple(results)

    @classmethod
    def from_ir(cls, ftype: FuncType) -> "WasmFuncType":
        return cls([t.value for t in ftype.params],
                   [t.value for t in ftype.results])

    def to_ir(self) -> FuncType:
        return FuncType([to_ir_type(p) for p in self.params],
                        [to_ir_type(r) for r in self.results])

    def __eq__(self, other):
        return (isinstance(other, WasmFuncType)
                and self.params == other.params
                and self.results == other.results)

    def __hash__(self):
        return hash((self.params, self.results))

    def __repr__(self):
        return (f"(func ({' '.join(self.params)}) "
                f"-> ({' '.join(self.results)}))")


class WasmImport:
    __slots__ = ("module", "name", "kind", "type_index")

    def __init__(self, module: str, name: str, kind: str, type_index: int):
        self.module = module
        self.name = name
        self.kind = kind            # only 'func' imports are used here
        self.type_index = type_index

    def __repr__(self):
        return f'(import "{self.module}" "{self.name}" type={self.type_index})'


class WasmFunction:
    """A defined function: type index, extra locals, body instructions."""

    __slots__ = ("type_index", "locals", "body", "name")

    def __init__(self, type_index: int, locals_=(), body=(), name: str = ""):
        self.type_index = type_index
        self.locals = list(locals_)   # valtype strings (excluding params)
        self.body = list(body)        # WasmInstr sequence (without final end)
        self.name = name

    def __repr__(self):
        return f"<wasm func {self.name or '?'} ({len(self.body)} instrs)>"


class WasmGlobal:
    __slots__ = ("valtype", "mutable", "init")

    def __init__(self, valtype: str, mutable: bool, init):
        self.valtype = valtype
        self.mutable = mutable
        self.init = init              # a single const WasmInstr

    def __repr__(self):
        mut = "mut " if self.mutable else ""
        return f"(global {mut}{self.valtype} {self.init!r})"


class WasmExport:
    __slots__ = ("name", "kind", "index")

    def __init__(self, name: str, kind: str, index: int):
        self.name = name
        self.kind = kind              # 'func' | 'memory' | 'global' | 'table'
        self.index = index

    def __repr__(self):
        return f'(export "{self.name}" {self.kind} {self.index})'


class WasmData:
    __slots__ = ("offset", "data")

    def __init__(self, offset: int, data: bytes):
        self.offset = offset
        self.data = bytes(data)

    def __repr__(self):
        return f"(data offset={self.offset} len={len(self.data)})"


class WasmModule:
    """A complete module: mirrors the MVP binary sections."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.types: list[WasmFuncType] = []
        self.imports: list[WasmImport] = []
        self.functions: list[WasmFunction] = []
        self.table: list[int] = []          # function indices (None -> -1)
        self.memory_pages = (1, None)       # (initial, max or None)
        self.globals: list[WasmGlobal] = []
        self.exports: list[WasmExport] = []
        self.start = None
        self.data: list[WasmData] = []
        #: ``--check-ranges`` oracle facts carried in the "repro-ranges"
        #: custom section: {defined-function position: {local index:
        #: (bits, lo, hi, maybe)}}.  Each tuple is the interval proved
        #: for *every* assignment of that local; the wasm interpreter
        #: asserts observed values against it.  Empty unless the
        #: producer ran under ``--check-ranges``.
        self.ranges: dict = {}

    # -- indices -------------------------------------------------------------

    def type_index(self, ftype: WasmFuncType) -> int:
        try:
            return self.types.index(ftype)
        except ValueError:
            self.types.append(ftype)
            return len(self.types) - 1

    @property
    def num_imported_funcs(self) -> int:
        return sum(1 for imp in self.imports if imp.kind == "func")

    def func_type_of(self, func_index: int) -> WasmFuncType:
        imports = [imp for imp in self.imports if imp.kind == "func"]
        if func_index < len(imports):
            return self.types[imports[func_index].type_index]
        return self.types[
            self.functions[func_index - len(imports)].type_index]

    def export_index(self, name: str):
        for exp in self.exports:
            if exp.name == name and exp.kind == "func":
                return exp.index
        return None

    def function_count(self) -> int:
        return self.num_imported_funcs + len(self.functions)

    def instruction_count(self) -> int:
        return sum(len(f.body) for f in self.functions)

    def __repr__(self):
        return (f"<wasm module {self.name}: {len(self.functions)} funcs, "
                f"{len(self.imports)} imports, "
                f"{self.instruction_count()} instrs>")
