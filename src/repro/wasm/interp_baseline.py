"""Chain-dispatch WebAssembly interpreter (pre-optimization baseline).

:class:`BaselineWasmInstance` keeps the original ``_exec_body`` — an
if/elif chain over opcode strings with numeric operations routed through
:meth:`WasmInstance._numeric` — exactly as it was before the
table-dispatch rewrite in :mod:`repro.wasm.interp`.  It serves two
purposes:

* ``bench/`` measures the table-dispatch interpreter's speedup against
  this implementation on the same modules;
* the differential tests can cross-check the two interpreters, which
  share no dispatch code, as independent semantic references.
"""

from __future__ import annotations

import struct

from ..errors import FuelExhausted, TrapError
from .interp import _LOAD_FMT, _M32, _M64, _STORE_FMT, WasmInstance
from .interp import _match_control
from .module import PAGE_SIZE


class BaselineWasmInstance(WasmInstance):
    """A :class:`WasmInstance` executing via the original opcode chain."""

    def _burn_fuel(self) -> None:
        """Same taken-branch fuel watchdog as the table interpreter."""
        self.fuel_used += 1
        if self.fuel_used > self.max_fuel:
            raise FuelExhausted(
                "fuel exhausted: wasm branch budget exceeded")

    def _exec_body(self, func, ftype, locals_):
        body = func.body
        key = id(func)
        # Separate cache from the table-dispatch decode cache: this one
        # holds control-matching maps, not decoded instruction streams.
        cache = self.__dict__.setdefault("_baseline_match_cache", {})
        matches = cache.get(key)
        if matches is None:
            matches = _match_control(body)
            cache[key] = matches

        stack = []
        # Control stack entries: (op, start, end, else, height, arity)
        ctrl = [("func", -1, len(body), None, 0, len(ftype.results))]
        pc = 0
        n = len(body)
        memory = self.memory

        while pc < n or ctrl:
            if pc >= n:
                break
            instr = body[pc]
            op = instr.op
            pc += 1

            if op == "local.get":
                stack.append(locals_[instr.args[0]])
            elif op == "local.set":
                locals_[instr.args[0]] = stack.pop()
            elif op == "local.tee":
                locals_[instr.args[0]] = stack[-1]
            elif op == "i32.const":
                stack.append(instr.args[0] & _M32)
            elif op == "i64.const":
                stack.append(instr.args[0] & _M64)
            elif op in ("f32.const", "f64.const"):
                stack.append(float(instr.args[0]))
            elif op == "block" or op == "loop":
                end, _else = matches[pc - 1]
                arity = 1 if instr.args[0] else 0
                ctrl.append((op, pc - 1, end, None, len(stack), arity))
            elif op == "if":
                end, else_idx = matches[pc - 1]
                cond = stack.pop()
                arity = 1 if instr.args[0] else 0
                ctrl.append(("if", pc - 1, end, else_idx,
                             len(stack), arity))
                if not cond:
                    pc = (else_idx + 1) if else_idx is not None else end
            elif op == "else":
                # Falling into else after the then-arm: jump to end.
                frame = ctrl[-1]
                pc = frame[2]
            elif op == "end":
                ctrl.pop()
            elif op == "br" or op == "br_if":
                if op == "br_if":
                    if not stack.pop():
                        continue
                self._burn_fuel()
                pc = self._do_branch(instr.args[0], ctrl, stack)
            elif op == "br_table":
                targets, default = instr.args
                index = stack.pop()
                depth = targets[index] if index < len(targets) else default
                self._burn_fuel()
                pc = self._do_branch(depth, ctrl, stack)
            elif op == "return":
                break
            elif op == "call":
                pc_args = self._pop_call_args(stack, instr.args[0])
                result = self._call_function(instr.args[0], pc_args)
                if result is not None:
                    stack.append(self._norm_result(instr.args[0], result))
            elif op == "call_indirect":
                index = stack.pop()
                if not 0 <= index < len(self.table):
                    raise TrapError("undefined table element")
                target = self.table[index]
                expect = self.module.types[instr.args[0]]
                actual = self.module.func_type_of(target)
                if expect != actual:
                    raise TrapError("indirect call type mismatch")
                nargs = len(expect.params)
                args = stack[len(stack) - nargs:]
                del stack[len(stack) - nargs:]
                result = self._call_function(target, args)
                if result is not None and expect.results:
                    stack.append(result)
            elif op == "drop":
                stack.pop()
            elif op == "select":
                cond = stack.pop()
                b = stack.pop()
                a = stack.pop()
                stack.append(a if cond else b)
            elif op == "global.get":
                stack.append(self.globals[instr.args[0]])
            elif op == "global.set":
                self.globals[instr.args[0]] = stack.pop()
            elif op == "unreachable":
                raise TrapError("unreachable executed")
            elif op == "nop":
                pass
            elif op == "memory.size":
                stack.append(len(memory) // PAGE_SIZE)
            elif op == "memory.grow":
                delta = stack.pop()
                old = len(memory) // PAGE_SIZE
                new = old + delta
                if self.max_pages is not None and new > self.max_pages:
                    stack.append(_M32)  # -1
                else:
                    self.memory.extend(bytes(delta * PAGE_SIZE))
                    memory = self.memory
                    stack.append(old)
            elif op == "f64.load" or op == "f32.load":
                addr = stack.pop() + instr.args[1]
                width = 8 if op == "f64.load" else 4
                if addr < 0 or addr + width > len(memory):
                    raise TrapError("out-of-bounds memory access")
                fmt = "<d" if op == "f64.load" else "<f"
                stack.append(struct.unpack_from(fmt, memory, addr)[0])
            elif op in _LOAD_FMT:
                fmt, width, signed_load, bits = _LOAD_FMT[op]
                addr = stack.pop() + instr.args[1]
                if addr < 0 or addr + width > len(memory):
                    raise TrapError("out-of-bounds memory access")
                value = struct.unpack_from(fmt, memory, addr)[0]
                stack.append(value & ((1 << bits) - 1))
            elif op == "f64.store" or op == "f32.store":
                value = stack.pop()
                addr = stack.pop() + instr.args[1]
                width = 8 if op == "f64.store" else 4
                if addr < 0 or addr + width > len(memory):
                    raise TrapError("out-of-bounds memory access")
                fmt = "<d" if op == "f64.store" else "<f"
                struct.pack_into(fmt, memory, addr, value)
            elif op in _STORE_FMT:
                fmt, width, bits = _STORE_FMT[op]
                value = stack.pop()
                addr = stack.pop() + instr.args[1]
                if addr < 0 or addr + width > len(memory):
                    raise TrapError("out-of-bounds memory access")
                struct.pack_into(fmt, memory, addr,
                                 value & ((1 << bits) - 1))
            else:
                self._numeric(op, stack)

        if ftype.results:
            return stack[-1] if stack else 0
        return None
