"""WebAssembly validation (type checking).

Implements the spec's algorithmic validation: an operand type stack plus a
control-frame stack, with the bottom of the operand stack made polymorphic
after unreachable code.  This is the same algorithm V8 and SpiderMonkey run
before compiling a module, and it guarantees the JIT translator only ever
sees well-typed code.
"""

from __future__ import annotations

from ..errors import ValidationError
from .module import WasmModule
from .opcodes import WasmInstr

_BIN_NUM = {"add", "sub", "mul", "div_s", "div_u", "rem_s", "rem_u",
            "and", "or", "xor", "shl", "shr_s", "shr_u", "rotl", "rotr",
            "div", "min", "max", "copysign"}
_CMP = {"eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s", "le_u",
        "ge_s", "ge_u", "lt", "gt", "le", "ge"}
_UN_NUM = {"clz", "ctz", "popcnt", "abs", "neg", "ceil", "floor", "trunc",
           "nearest", "sqrt"}

_CONVERSIONS = {
    "i32.wrap_i64": ("i64", "i32"),
    "i32.trunc_f32_s": ("f32", "i32"), "i32.trunc_f32_u": ("f32", "i32"),
    "i32.trunc_f64_s": ("f64", "i32"), "i32.trunc_f64_u": ("f64", "i32"),
    "i64.extend_i32_s": ("i32", "i64"), "i64.extend_i32_u": ("i32", "i64"),
    "i64.trunc_f32_s": ("f32", "i64"), "i64.trunc_f32_u": ("f32", "i64"),
    "i64.trunc_f64_s": ("f64", "i64"), "i64.trunc_f64_u": ("f64", "i64"),
    "f32.convert_i32_s": ("i32", "f32"), "f32.convert_i32_u": ("i32", "f32"),
    "f32.convert_i64_s": ("i64", "f32"), "f32.convert_i64_u": ("i64", "f32"),
    "f32.demote_f64": ("f64", "f32"),
    "f64.convert_i32_s": ("i32", "f64"), "f64.convert_i32_u": ("i32", "f64"),
    "f64.convert_i64_s": ("i64", "f64"), "f64.convert_i64_u": ("i64", "f64"),
    "f64.promote_f32": ("f32", "f64"),
    "i32.reinterpret_f32": ("f32", "i32"),
    "i64.reinterpret_f64": ("f64", "i64"),
    "f32.reinterpret_i32": ("i32", "f32"),
    "f64.reinterpret_i64": ("i64", "f64"),
}

_LOAD_TYPES = {
    "i32.load": ("i32", 4), "i64.load": ("i64", 8),
    "f32.load": ("f32", 4), "f64.load": ("f64", 8),
    "i32.load8_s": ("i32", 1), "i32.load8_u": ("i32", 1),
    "i32.load16_s": ("i32", 2), "i32.load16_u": ("i32", 2),
    "i64.load8_s": ("i64", 1), "i64.load8_u": ("i64", 1),
    "i64.load16_s": ("i64", 2), "i64.load16_u": ("i64", 2),
    "i64.load32_s": ("i64", 4), "i64.load32_u": ("i64", 4),
}
_STORE_TYPES = {
    "i32.store": ("i32", 4), "i64.store": ("i64", 8),
    "f32.store": ("f32", 4), "f64.store": ("f64", 8),
    "i32.store8": ("i32", 1), "i32.store16": ("i32", 2),
    "i64.store8": ("i64", 1), "i64.store16": ("i64", 2),
    "i64.store32": ("i64", 4),
}


class _Frame:
    __slots__ = ("opcode", "start_types", "end_types", "height",
                 "unreachable")

    def __init__(self, opcode, start_types, end_types, height):
        self.opcode = opcode
        self.start_types = list(start_types)
        self.end_types = list(end_types)
        self.height = height
        self.unreachable = False

    def label_types(self):
        """Types a branch to this frame expects on the stack."""
        return self.start_types if self.opcode == "loop" else self.end_types


class FunctionValidator:
    def __init__(self, module: WasmModule, func, ftype):
        self.module = module
        self.func = func
        self.ftype = ftype
        self.locals = list(ftype.params) + list(func.locals)
        self.stack: list[str] = []
        self.frames: list[_Frame] = []

    def error(self, message: str):
        raise ValidationError(f"{self.func.name or 'func'}: {message}")

    # -- stack helpers ---------------------------------------------------------

    def push(self, valtype: str) -> None:
        self.stack.append(valtype)

    def pop(self, expect: str = None) -> str:
        frame = self.frames[-1]
        if len(self.stack) == frame.height:
            if frame.unreachable:
                return expect or "unknown"
            self.error(f"stack underflow (expected {expect})")
        got = self.stack.pop()
        if expect is not None and got != expect and got != "unknown" \
                and expect != "unknown":
            self.error(f"type mismatch: expected {expect}, got {got}")
        return got

    def push_frame(self, opcode, start_types, end_types) -> None:
        self.frames.append(_Frame(opcode, start_types, end_types,
                                  len(self.stack)))
        self.stack.extend(start_types)

    def pop_frame(self) -> _Frame:
        frame = self.frames[-1]
        for expect in reversed(frame.end_types):
            self.pop(expect)
        if len(self.stack) != frame.height:
            self.error("stack height mismatch at end of block")
        self.frames.pop()
        return frame

    def set_unreachable(self) -> None:
        frame = self.frames[-1]
        del self.stack[frame.height:]
        frame.unreachable = True

    def frame_at(self, depth: int) -> _Frame:
        if depth >= len(self.frames):
            self.error(f"branch depth {depth} out of range")
        return self.frames[-1 - depth]

    # -- validation --------------------------------------------------------------

    def run(self) -> None:
        results = list(self.ftype.results)
        self.push_frame("func", [], results)
        for instr in self.func.body:
            self.check(instr)
        # Implicit end of the function body.
        frame = self.pop_frame()
        for r in frame.end_types:
            self.push(r)

    def check(self, instr: WasmInstr) -> None:
        op = instr.op
        if op == "nop":
            return
        if op == "unreachable":
            self.set_unreachable()
            return
        if op in ("block", "loop"):
            bt = instr.args[0]
            self.push_frame(op, [], [bt] if bt else [])
            return
        if op == "if":
            self.pop("i32")
            bt = instr.args[0]
            self.push_frame("if", [], [bt] if bt else [])
            return
        if op == "else":
            frame = self.pop_frame()
            if frame.opcode != "if":
                self.error("else without if")
            self.push_frame("else", frame.start_types, frame.end_types)
            return
        if op == "end":
            frame = self.pop_frame()
            for r in frame.end_types:
                self.push(r)
            return
        if op == "br":
            frame = self.frame_at(instr.args[0])
            for expect in reversed(frame.label_types()):
                self.pop(expect)
            self.set_unreachable()
            return
        if op == "br_if":
            self.pop("i32")
            frame = self.frame_at(instr.args[0])
            types = frame.label_types()
            for expect in reversed(types):
                self.pop(expect)
            for t in types:
                self.push(t)
            return
        if op == "br_table":
            self.pop("i32")
            targets, default = instr.args
            default_types = self.frame_at(default).label_types()
            for t in targets:
                if self.frame_at(t).label_types() != default_types:
                    self.error("br_table label type mismatch")
            for expect in reversed(default_types):
                self.pop(expect)
            self.set_unreachable()
            return
        if op == "return":
            for expect in reversed(self.ftype.results):
                self.pop(expect)
            self.set_unreachable()
            return
        if op == "call":
            if instr.args[0] >= self.module.function_count():
                self.error(f"call to function index {instr.args[0]} "
                           f"out of range")
            ftype = self.module.func_type_of(instr.args[0])
            for expect in reversed(ftype.params):
                self.pop(expect)
            for r in ftype.results:
                self.push(r)
            return
        if op == "call_indirect":
            if not self.module.table and not self.module.imports:
                self.error("call_indirect without a table")
            self.pop("i32")
            if instr.args[0] >= len(self.module.types):
                self.error(f"call_indirect type index {instr.args[0]} "
                           f"out of range")
            ftype = self.module.types[instr.args[0]]
            for expect in reversed(ftype.params):
                self.pop(expect)
            for r in ftype.results:
                self.push(r)
            return
        if op == "drop":
            self.pop()
            return
        if op == "select":
            self.pop("i32")
            a = self.pop()
            b = self.pop(a if a != "unknown" else None)
            self.push(b if a == "unknown" else a)
            return
        if op in ("local.get", "local.set", "local.tee"):
            index = instr.args[0]
            if index >= len(self.locals):
                self.error(f"local index {index} out of range")
            valtype = self.locals[index]
            if op == "local.get":
                self.push(valtype)
            elif op == "local.set":
                self.pop(valtype)
            else:
                self.pop(valtype)
                self.push(valtype)
            return
        if op in ("global.get", "global.set"):
            index = instr.args[0]
            if index >= len(self.module.globals):
                self.error(f"global index {index} out of range")
            glob = self.module.globals[index]
            if op == "global.get":
                self.push(glob.valtype)
            else:
                if not glob.mutable:
                    self.error("assignment to immutable global")
                self.pop(glob.valtype)
            return
        if op in _LOAD_TYPES:
            valtype, width = _LOAD_TYPES[op]
            self._check_align(instr, width)
            self.pop("i32")
            self.push(valtype)
            return
        if op in _STORE_TYPES:
            valtype, width = _STORE_TYPES[op]
            self._check_align(instr, width)
            self.pop(valtype)
            self.pop("i32")
            return
        if op == "memory.size":
            self.push("i32")
            return
        if op == "memory.grow":
            self.pop("i32")
            self.push("i32")
            return
        if "." in op:
            prefix, _, suffix = op.partition(".")
            if suffix == "const":
                self.push(prefix)
                return
            if op in _CONVERSIONS:
                src, dst = _CONVERSIONS[op]
                self.pop(src)
                self.push(dst)
                return
            if suffix == "eqz":
                self.pop(prefix)
                self.push("i32")
                return
            if suffix in _CMP:
                self.pop(prefix)
                self.pop(prefix)
                self.push("i32")
                return
            if suffix in _BIN_NUM:
                self.pop(prefix)
                self.pop(prefix)
                self.push(prefix)
                return
            if suffix in _UN_NUM:
                self.pop(prefix)
                self.push(prefix)
                return
        self.error(f"unhandled opcode {op}")

    def _check_align(self, instr: WasmInstr, width: int) -> None:
        align = instr.args[0]
        if (1 << align) > width:
            self.error(f"{instr.op}: alignment 2**{align} exceeds width")


def validate_module(module: WasmModule) -> None:
    """Validate every function body; raises ValidationError on failure."""
    from ..obs import span
    with span("wasm.validate", module=module.name):
        _validate_module(module)


def _validate_module(module: WasmModule) -> None:
    imports = module.num_imported_funcs
    for imp in module.imports:
        if imp.type_index >= len(module.types):
            raise ValidationError(f"import {imp.name}: bad type index")
    for i, func in enumerate(module.functions):
        if func.type_index >= len(module.types):
            raise ValidationError(f"function {i}: bad type index")
        ftype = module.types[func.type_index]
        FunctionValidator(module, func, ftype).run()
    for idx in module.table:
        if idx >= module.function_count():
            raise ValidationError("table entry out of range")
    for exp in module.exports:
        if exp.kind == "func" and exp.index >= module.function_count():
            raise ValidationError(f"export {exp.name}: bad function index")
