"""WebAssembly MVP opcode table.

Covers the full numeric, parametric, variable, memory, and control opcode
set of the initial (MVP) WebAssembly specification — the version the paper
targets ("This paper focuses on the initial and stable version of
WebAssembly").  Each opcode records its binary encoding and immediate
format, shared by the encoder, decoder, validator, and interpreter.
"""

from __future__ import annotations

# Immediate kinds.
IMM_NONE = ""
IMM_BLOCKTYPE = "blocktype"
IMM_LABEL = "label"
IMM_LABEL_TABLE = "labeltable"   # br_table
IMM_FUNC = "func"
IMM_TYPE_TABLE = "calltype"      # call_indirect: type index + reserved
IMM_LOCAL = "local"
IMM_GLOBAL = "global"
IMM_MEMARG = "memarg"            # align + offset
IMM_MEMORY = "memory"            # reserved byte (memory.size/grow)
IMM_I32 = "i32"
IMM_I64 = "i64"
IMM_F32 = "f32"
IMM_F64 = "f64"


class Op:
    __slots__ = ("code", "name", "imm")

    def __init__(self, code: int, name: str, imm: str = IMM_NONE):
        self.code = code
        self.name = name
        self.imm = imm

    def __repr__(self):
        return f"<op {self.name} ({self.code:#x})>"


_OPS = [
    # Control.
    (0x00, "unreachable", IMM_NONE),
    (0x01, "nop", IMM_NONE),
    (0x02, "block", IMM_BLOCKTYPE),
    (0x03, "loop", IMM_BLOCKTYPE),
    (0x04, "if", IMM_BLOCKTYPE),
    (0x05, "else", IMM_NONE),
    (0x0B, "end", IMM_NONE),
    (0x0C, "br", IMM_LABEL),
    (0x0D, "br_if", IMM_LABEL),
    (0x0E, "br_table", IMM_LABEL_TABLE),
    (0x0F, "return", IMM_NONE),
    (0x10, "call", IMM_FUNC),
    (0x11, "call_indirect", IMM_TYPE_TABLE),
    # Parametric.
    (0x1A, "drop", IMM_NONE),
    (0x1B, "select", IMM_NONE),
    # Variable.
    (0x20, "local.get", IMM_LOCAL),
    (0x21, "local.set", IMM_LOCAL),
    (0x22, "local.tee", IMM_LOCAL),
    (0x23, "global.get", IMM_GLOBAL),
    (0x24, "global.set", IMM_GLOBAL),
    # Memory.
    (0x28, "i32.load", IMM_MEMARG),
    (0x29, "i64.load", IMM_MEMARG),
    (0x2A, "f32.load", IMM_MEMARG),
    (0x2B, "f64.load", IMM_MEMARG),
    (0x2C, "i32.load8_s", IMM_MEMARG),
    (0x2D, "i32.load8_u", IMM_MEMARG),
    (0x2E, "i32.load16_s", IMM_MEMARG),
    (0x2F, "i32.load16_u", IMM_MEMARG),
    (0x30, "i64.load8_s", IMM_MEMARG),
    (0x31, "i64.load8_u", IMM_MEMARG),
    (0x32, "i64.load16_s", IMM_MEMARG),
    (0x33, "i64.load16_u", IMM_MEMARG),
    (0x34, "i64.load32_s", IMM_MEMARG),
    (0x35, "i64.load32_u", IMM_MEMARG),
    (0x36, "i32.store", IMM_MEMARG),
    (0x37, "i64.store", IMM_MEMARG),
    (0x38, "f32.store", IMM_MEMARG),
    (0x39, "f64.store", IMM_MEMARG),
    (0x3A, "i32.store8", IMM_MEMARG),
    (0x3B, "i32.store16", IMM_MEMARG),
    (0x3C, "i64.store8", IMM_MEMARG),
    (0x3D, "i64.store16", IMM_MEMARG),
    (0x3E, "i64.store32", IMM_MEMARG),
    (0x3F, "memory.size", IMM_MEMORY),
    (0x40, "memory.grow", IMM_MEMORY),
    # Constants.
    (0x41, "i32.const", IMM_I32),
    (0x42, "i64.const", IMM_I64),
    (0x43, "f32.const", IMM_F32),
    (0x44, "f64.const", IMM_F64),
    # i32 comparisons.
    (0x45, "i32.eqz", IMM_NONE),
    (0x46, "i32.eq", IMM_NONE),
    (0x47, "i32.ne", IMM_NONE),
    (0x48, "i32.lt_s", IMM_NONE),
    (0x49, "i32.lt_u", IMM_NONE),
    (0x4A, "i32.gt_s", IMM_NONE),
    (0x4B, "i32.gt_u", IMM_NONE),
    (0x4C, "i32.le_s", IMM_NONE),
    (0x4D, "i32.le_u", IMM_NONE),
    (0x4E, "i32.ge_s", IMM_NONE),
    (0x4F, "i32.ge_u", IMM_NONE),
    # i64 comparisons.
    (0x50, "i64.eqz", IMM_NONE),
    (0x51, "i64.eq", IMM_NONE),
    (0x52, "i64.ne", IMM_NONE),
    (0x53, "i64.lt_s", IMM_NONE),
    (0x54, "i64.lt_u", IMM_NONE),
    (0x55, "i64.gt_s", IMM_NONE),
    (0x56, "i64.gt_u", IMM_NONE),
    (0x57, "i64.le_s", IMM_NONE),
    (0x58, "i64.le_u", IMM_NONE),
    (0x59, "i64.ge_s", IMM_NONE),
    (0x5A, "i64.ge_u", IMM_NONE),
    # f32 comparisons.
    (0x5B, "f32.eq", IMM_NONE),
    (0x5C, "f32.ne", IMM_NONE),
    (0x5D, "f32.lt", IMM_NONE),
    (0x5E, "f32.gt", IMM_NONE),
    (0x5F, "f32.le", IMM_NONE),
    (0x60, "f32.ge", IMM_NONE),
    # f64 comparisons.
    (0x61, "f64.eq", IMM_NONE),
    (0x62, "f64.ne", IMM_NONE),
    (0x63, "f64.lt", IMM_NONE),
    (0x64, "f64.gt", IMM_NONE),
    (0x65, "f64.le", IMM_NONE),
    (0x66, "f64.ge", IMM_NONE),
    # i32 arithmetic.
    (0x67, "i32.clz", IMM_NONE),
    (0x68, "i32.ctz", IMM_NONE),
    (0x69, "i32.popcnt", IMM_NONE),
    (0x6A, "i32.add", IMM_NONE),
    (0x6B, "i32.sub", IMM_NONE),
    (0x6C, "i32.mul", IMM_NONE),
    (0x6D, "i32.div_s", IMM_NONE),
    (0x6E, "i32.div_u", IMM_NONE),
    (0x6F, "i32.rem_s", IMM_NONE),
    (0x70, "i32.rem_u", IMM_NONE),
    (0x71, "i32.and", IMM_NONE),
    (0x72, "i32.or", IMM_NONE),
    (0x73, "i32.xor", IMM_NONE),
    (0x74, "i32.shl", IMM_NONE),
    (0x75, "i32.shr_s", IMM_NONE),
    (0x76, "i32.shr_u", IMM_NONE),
    (0x77, "i32.rotl", IMM_NONE),
    (0x78, "i32.rotr", IMM_NONE),
    # i64 arithmetic.
    (0x79, "i64.clz", IMM_NONE),
    (0x7A, "i64.ctz", IMM_NONE),
    (0x7B, "i64.popcnt", IMM_NONE),
    (0x7C, "i64.add", IMM_NONE),
    (0x7D, "i64.sub", IMM_NONE),
    (0x7E, "i64.mul", IMM_NONE),
    (0x7F, "i64.div_s", IMM_NONE),
    (0x80, "i64.div_u", IMM_NONE),
    (0x81, "i64.rem_s", IMM_NONE),
    (0x82, "i64.rem_u", IMM_NONE),
    (0x83, "i64.and", IMM_NONE),
    (0x84, "i64.or", IMM_NONE),
    (0x85, "i64.xor", IMM_NONE),
    (0x86, "i64.shl", IMM_NONE),
    (0x87, "i64.shr_s", IMM_NONE),
    (0x88, "i64.shr_u", IMM_NONE),
    (0x89, "i64.rotl", IMM_NONE),
    (0x8A, "i64.rotr", IMM_NONE),
    # f32 arithmetic.
    (0x8B, "f32.abs", IMM_NONE),
    (0x8C, "f32.neg", IMM_NONE),
    (0x8D, "f32.ceil", IMM_NONE),
    (0x8E, "f32.floor", IMM_NONE),
    (0x8F, "f32.trunc", IMM_NONE),
    (0x90, "f32.nearest", IMM_NONE),
    (0x91, "f32.sqrt", IMM_NONE),
    (0x92, "f32.add", IMM_NONE),
    (0x93, "f32.sub", IMM_NONE),
    (0x94, "f32.mul", IMM_NONE),
    (0x95, "f32.div", IMM_NONE),
    (0x96, "f32.min", IMM_NONE),
    (0x97, "f32.max", IMM_NONE),
    (0x98, "f32.copysign", IMM_NONE),
    # f64 arithmetic.
    (0x99, "f64.abs", IMM_NONE),
    (0x9A, "f64.neg", IMM_NONE),
    (0x9B, "f64.ceil", IMM_NONE),
    (0x9C, "f64.floor", IMM_NONE),
    (0x9D, "f64.trunc", IMM_NONE),
    (0x9E, "f64.nearest", IMM_NONE),
    (0x9F, "f64.sqrt", IMM_NONE),
    (0xA0, "f64.add", IMM_NONE),
    (0xA1, "f64.sub", IMM_NONE),
    (0xA2, "f64.mul", IMM_NONE),
    (0xA3, "f64.div", IMM_NONE),
    (0xA4, "f64.min", IMM_NONE),
    (0xA5, "f64.max", IMM_NONE),
    (0xA6, "f64.copysign", IMM_NONE),
    # Conversions.
    (0xA7, "i32.wrap_i64", IMM_NONE),
    (0xA8, "i32.trunc_f32_s", IMM_NONE),
    (0xA9, "i32.trunc_f32_u", IMM_NONE),
    (0xAA, "i32.trunc_f64_s", IMM_NONE),
    (0xAB, "i32.trunc_f64_u", IMM_NONE),
    (0xAC, "i64.extend_i32_s", IMM_NONE),
    (0xAD, "i64.extend_i32_u", IMM_NONE),
    (0xAE, "i64.trunc_f32_s", IMM_NONE),
    (0xAF, "i64.trunc_f32_u", IMM_NONE),
    (0xB0, "i64.trunc_f64_s", IMM_NONE),
    (0xB1, "i64.trunc_f64_u", IMM_NONE),
    (0xB2, "f32.convert_i32_s", IMM_NONE),
    (0xB3, "f32.convert_i32_u", IMM_NONE),
    (0xB4, "f32.convert_i64_s", IMM_NONE),
    (0xB5, "f32.convert_i64_u", IMM_NONE),
    (0xB6, "f32.demote_f64", IMM_NONE),
    (0xB7, "f64.convert_i32_s", IMM_NONE),
    (0xB8, "f64.convert_i32_u", IMM_NONE),
    (0xB9, "f64.convert_i64_s", IMM_NONE),
    (0xBA, "f64.convert_i64_u", IMM_NONE),
    (0xBB, "f64.promote_f32", IMM_NONE),
    (0xBC, "i32.reinterpret_f32", IMM_NONE),
    (0xBD, "i64.reinterpret_f64", IMM_NONE),
    (0xBE, "f32.reinterpret_i32", IMM_NONE),
    (0xBF, "f64.reinterpret_i64", IMM_NONE),
]

#: name -> Op
BY_NAME = {name: Op(code, name, imm) for code, name, imm in _OPS}

#: code -> Op
BY_CODE = {op.code: op for op in BY_NAME.values()}


class WasmInstr:
    """A decoded/constructed instruction: opcode name + immediate args."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, *args):
        if op not in BY_NAME:
            raise ValueError(f"unknown opcode {op}")
        self.op = op
        self.args = args

    @property
    def opcode(self) -> Op:
        return BY_NAME[self.op]

    def __repr__(self):
        if not self.args:
            return self.op
        return f"{self.op} {' '.join(map(str, self.args))}"
