"""WebAssembly text format (WAT): printing and parsing.

``format_module`` produces a readable flat-form WAT rendering (folded
expressions are not used; this matches the output of tools like
``wasm-dis``), and ``parse_wat`` reads the same dialect back, so modules
round-trip through text.  Used for debugging, documentation dumps, and
hand-written test modules.
"""

from __future__ import annotations

from ..errors import ValidationError
from .module import (
    WasmData, WasmExport, WasmFuncType, WasmFunction, WasmGlobal,
    WasmImport, WasmModule,
)
from .opcodes import BY_NAME, WasmInstr


def format_function(module: WasmModule, index: int) -> str:
    """WAT text for defined function ``index`` (module-wide numbering)."""
    func = module.functions[index - module.num_imported_funcs]
    ftype = module.types[func.type_index]
    header = f"(func ${func.name or index}"
    if ftype.params:
        header += " (param " + " ".join(ftype.params) + ")"
    if ftype.results:
        header += " (result " + " ".join(ftype.results) + ")"
    lines = [header]
    if func.locals:
        lines.append("  (local " + " ".join(func.locals) + ")")
    indent = 1
    for instr in func.body:
        if instr.op in ("end", "else"):
            indent = max(indent - 1, 1)
        lines.append("  " * indent + _format_instr(instr))
        if instr.op in ("block", "loop", "if", "else"):
            indent += 1
    lines.append(")")
    return "\n".join(lines)


def _format_instr(instr) -> str:
    op = instr.op
    if op in ("block", "loop", "if"):
        bt = instr.args[0]
        return f"{op} (result {bt})" if bt else op
    if op == "br_table":
        targets, default = instr.args
        return "br_table " + " ".join(map(str, targets + [default]))
    if instr.args:
        return f"{op} " + " ".join(map(str, instr.args))
    return op


def _escape_data(data: bytes) -> str:
    out = []
    for byte in data:
        if byte in (0x22, 0x5C):          # '"' and '\'
            out.append("\\" + chr(byte))
        elif 0x20 <= byte < 0x7F:
            out.append(chr(byte))
        else:
            out.append(f"\\{byte:02x}")
    return "".join(out)


def format_module(module: WasmModule) -> str:
    """Render a module as flat-form WAT; ``parse_wat`` reads it back."""
    lines = [f"(module ;; {module.name}"]
    for i, ftype in enumerate(module.types):
        params = " ".join(ftype.params)
        results = " ".join(ftype.results)
        lines.append(f"  (type {i} (func (param {params}) "
                     f"(result {results})))")
    for imp in module.imports:
        lines.append(f'  (import "{imp.module}" "{imp.name}" '
                     f"(func (type {imp.type_index})))")
    initial, maximum = module.memory_pages
    mem = f"  (memory {initial}" + (f" {maximum})" if maximum else ")")
    lines.append(mem)
    if module.table:
        lines.append(f"  (table {len(module.table)} funcref)")
        entries = " ".join(str(i) for i in module.table)
        lines.append(f"  (elem (i32.const 0) {entries})")
    for i, glob in enumerate(module.globals):
        mut = f"(mut {glob.valtype})" if glob.mutable else glob.valtype
        lines.append(f"  (global {i} {mut} ({glob.init!r}))")
    for exp in module.exports:
        lines.append(f'  (export "{exp.name}" ({exp.kind} {exp.index}))')
    num_imports = module.num_imported_funcs
    for i in range(len(module.functions)):
        body = format_function(module, num_imports + i)
        lines.append("  " + body.replace("\n", "\n  "))
    for seg in module.data:
        lines.append(f'  (data (i32.const {seg.offset}) '
                     f'"{_escape_data(seg.data)}")')
    lines.append(")")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_VALTYPES = ("i32", "i64", "f32", "f64")


def _tokenize_wat(text: str):
    """Split WAT text into '(', ')', strings, and atoms; strips ;; and
    (; ;) comments."""
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
        elif text.startswith(";;", i):
            while i < n and text[i] != "\n":
                i += 1
        elif text.startswith("(;", i):
            end = text.find(";)", i)
            if end == -1:
                raise ValidationError("unterminated block comment")
            i = end + 2
        elif ch == "(":
            tokens.append("(")
            i += 1
        elif ch == ")":
            tokens.append(")")
            i += 1
        elif ch == '"':
            i += 1
            out = bytearray()
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    nxt = text[i + 1]
                    if nxt in ('"', "\\"):
                        out.append(ord(nxt))
                        i += 2
                    elif nxt == "n":
                        out.append(10)
                        i += 2
                    elif nxt == "t":
                        out.append(9)
                        i += 2
                    else:
                        out.append(int(text[i + 1:i + 3], 16))
                        i += 3
                else:
                    out.append(ord(text[i]))
                    i += 1
            if i >= n:
                raise ValidationError("unterminated string")
            i += 1
            tokens.append(("str", bytes(out)))
        else:
            start = i
            while i < n and text[i] not in ' \t\r\n();"':
                i += 1
            tokens.append(text[start:i])
    return tokens


def _parse_sexprs(tokens):
    """Token list -> nested lists (atoms stay as strings/tuples)."""
    stack = [[]]
    for tok in tokens:
        if tok == "(":
            stack.append([])
        elif tok == ")":
            done = stack.pop()
            if not stack:
                raise ValidationError("unbalanced parentheses")
            stack[-1].append(done)
        else:
            stack[-1].append(tok)
    if len(stack) != 1:
        raise ValidationError("unbalanced parentheses")
    return stack[0]


def _atom_int(atom) -> int:
    if isinstance(atom, str):
        return int(atom, 0)
    raise ValidationError(f"expected integer, found {atom!r}")


def _atom_num(atom):
    text = atom
    try:
        return int(text, 0)
    except ValueError:
        return float(text)


class _WatParser:
    def __init__(self, fields):
        self.module = WasmModule("wat")
        self.fields = fields
        self.func_names: dict[str, int] = {}
        self._memory_seen = False

    def run(self) -> WasmModule:
        # Pre-pass: assign function indices (imports first, then funcs)
        # so $name references resolve regardless of order.
        index = 0
        for field in self.fields:
            if field and field[0] == "import" and \
                    any(isinstance(x, list) and x and x[0] == "func"
                        for x in field):
                index += 1
        for field in self.fields:
            if field and field[0] == "func":
                name = None
                if len(field) > 1 and isinstance(field[1], str) \
                        and field[1].startswith("$"):
                    name = field[1][1:]
                if name:
                    self.func_names[name] = index
                index += 1

        for field in self.fields:
            handler = getattr(self, "_field_" + field[0], None)
            if handler is None:
                raise ValidationError(f"unknown module field {field[0]}")
            handler(field)
        if not self._memory_seen:
            self.module.memory_pages = (1, None)
        return self.module

    # -- fields --------------------------------------------------------------

    def _field_type(self, field) -> None:
        # (type N (func (param ...) (result ...)))
        func = next(x for x in field if isinstance(x, list)
                    and x[0] == "func")
        params, results = [], []
        for part in func[1:]:
            if part[0] == "param":
                params.extend(p for p in part[1:] if p in _VALTYPES)
            elif part[0] == "result":
                results.extend(r for r in part[1:] if r in _VALTYPES)
        self.module.types.append(WasmFuncType(params, results))

    def _field_import(self, field) -> None:
        module_name = field[1][1].decode()
        item_name = field[2][1].decode()
        desc = field[3]
        if desc[0] != "func":
            raise ValidationError("only function imports are supported")
        type_index = 0
        for part in desc[1:]:
            if isinstance(part, list) and part[0] == "type":
                type_index = _atom_int(part[1])
        self.module.imports.append(
            WasmImport(module_name, item_name, "func", type_index))

    def _field_memory(self, field) -> None:
        self._memory_seen = True
        numbers = [_atom_int(a) for a in field[1:]
                   if isinstance(a, str) and not a.startswith("$")]
        initial = numbers[0] if numbers else 1
        maximum = numbers[1] if len(numbers) > 1 else None
        self.module.memory_pages = (initial, maximum)

    def _field_table(self, field) -> None:
        size = _atom_int(field[1])
        self.module.table = [0] * size

    def _field_elem(self, field) -> None:
        offset_expr = field[1]
        offset = _atom_int(offset_expr[1])
        for i, atom in enumerate(field[2:]):
            index = self._func_index(atom)
            while len(self.module.table) <= offset + i:
                self.module.table.append(0)
            self.module.table[offset + i] = index

    def _field_global(self, field) -> None:
        # (global N (mut t) (init)) or (global N t (init))
        parts = field[1:]
        mutable = False
        valtype = None
        init = None
        for part in parts:
            if isinstance(part, list):
                if part[0] == "mut":
                    mutable = True
                    valtype = part[1]
                elif part[0].endswith(".const"):
                    init = WasmInstr(part[0], _atom_num(part[1]))
            elif part in _VALTYPES:
                valtype = part
        if valtype is None or init is None:
            raise ValidationError("malformed global")
        self.module.globals.append(WasmGlobal(valtype, mutable, init))

    def _field_export(self, field) -> None:
        name = field[1][1].decode()
        desc = field[2]
        kind = desc[0]
        index = self._func_index(desc[1]) if kind == "func" \
            else _atom_int(desc[1])
        self.module.exports.append(WasmExport(name, kind, index))

    def _field_data(self, field) -> None:
        offset = _atom_int(field[1][1])
        blob = b"".join(part[1] for part in field[2:]
                        if isinstance(part, tuple))
        self.module.data.append(WasmData(offset, blob))

    def _field_start(self, field) -> None:
        self.module.start = self._func_index(field[1])

    def _field_func(self, field) -> None:
        parts = list(field[1:])
        name = ""
        if parts and isinstance(parts[0], str) and \
                parts[0].startswith("$"):
            name = parts[0][1:]
            parts.pop(0)

        params, results, locals_ = [], [], []
        type_index = None
        body_atoms = []
        in_body = False
        for part in parts:
            # Signature parts only count before the first instruction;
            # after that, a (result t) list is a block annotation.
            if not in_body and isinstance(part, list) \
                    and part[0] in ("type", "param", "result", "local"):
                if part[0] == "type":
                    type_index = _atom_int(part[1])
                elif part[0] == "param":
                    params.extend(p for p in part[1:] if p in _VALTYPES)
                elif part[0] == "result":
                    results.extend(r for r in part[1:] if r in _VALTYPES)
                else:
                    locals_.extend(l for l in part[1:] if l in _VALTYPES)
            else:
                in_body = True
                body_atoms.append(part)

        if type_index is None:
            type_index = self.module.type_index(
                WasmFuncType(params, results))
        body = self._parse_instrs(body_atoms)
        self.module.functions.append(
            WasmFunction(type_index, locals_, body, name))

    # -- instruction stream ------------------------------------------------------

    def _func_index(self, atom):
        if isinstance(atom, str) and atom.startswith("$"):
            if atom[1:] not in self.func_names:
                raise ValidationError(f"unknown function {atom}")
            return self.func_names[atom[1:]]
        return _atom_int(atom)

    def _parse_instrs(self, atoms):
        instrs = []
        i = 0
        n = len(atoms)
        while i < n:
            atom = atoms[i]
            i += 1
            if isinstance(atom, list):
                # A folded (result t) annotation directly after
                # block/loop/if.
                if atom and atom[0] == "result" and instrs and \
                        instrs[-1].op in ("block", "loop", "if"):
                    prev = instrs.pop()
                    instrs.append(WasmInstr(prev.op, atom[1]))
                    continue
                raise ValidationError(f"unexpected list {atom!r} in body")
            op = atom
            if op not in BY_NAME:
                raise ValidationError(f"unknown instruction {op}")
            imm = BY_NAME[op].imm
            if imm == "":
                instrs.append(WasmInstr(op))
            elif imm == "blocktype":
                instrs.append(WasmInstr(op, None))
            elif imm in ("label", "local", "global"):
                instrs.append(WasmInstr(op, _atom_int(atoms[i])))
                i += 1
            elif imm == "func":
                instrs.append(WasmInstr(op, self._func_index(atoms[i])))
                i += 1
            elif imm == "calltype":
                instrs.append(WasmInstr(op, _atom_int(atoms[i])))
                i += 1
            elif imm == "labeltable":
                targets = []
                while i < n and isinstance(atoms[i], str) and \
                        atoms[i].lstrip("-").isdigit():
                    targets.append(int(atoms[i]))
                    i += 1
                if not targets:
                    raise ValidationError("br_table without targets")
                instrs.append(WasmInstr(op, targets[:-1], targets[-1]))
            elif imm == "memarg":
                align = _atom_int(atoms[i])
                offset = _atom_int(atoms[i + 1])
                instrs.append(WasmInstr(op, align, offset))
                i += 2
            elif imm == "memory":
                instrs.append(WasmInstr(op))
            elif imm in ("i32", "i64"):
                instrs.append(WasmInstr(op, int(str(atoms[i]), 0)))
                i += 1
            elif imm in ("f32", "f64"):
                instrs.append(WasmInstr(op, float(atoms[i])))
                i += 1
            else:  # pragma: no cover
                raise ValidationError(f"unhandled immediate kind {imm}")
        return instrs


def parse_wat(text: str) -> WasmModule:
    """Parse flat-form WAT text (the dialect ``format_module`` emits)."""
    sexprs = _parse_sexprs(_tokenize_wat(text))
    if not sexprs or not isinstance(sexprs[0], list) \
            or sexprs[0][0] != "module":
        raise ValidationError("expected a (module ...) form")
    fields = [f for f in sexprs[0][1:] if isinstance(f, list)]
    module = _WatParser(fields).run()
    # Recover export names onto functions for diagnostics.
    imports = module.num_imported_funcs
    for exp in module.exports:
        if exp.kind == "func" and exp.index >= imports:
            func = module.functions[exp.index - imports]
            func.name = func.name or exp.name
    return module
