"""WebAssembly (MVP): module model, binary codec, validator, interpreter."""

from .binary import decode_module, encode_module
from .interp import WasmInstance
from .module import (
    PAGE_SIZE, WasmData, WasmExport, WasmFuncType, WasmFunction,
    WasmGlobal, WasmImport, WasmModule,
)
from .opcodes import BY_CODE, BY_NAME, WasmInstr
from .text import format_function, format_module, parse_wat
from .validate import validate_module

__all__ = [
    "WasmModule", "WasmFunction", "WasmFuncType", "WasmImport",
    "WasmExport", "WasmGlobal", "WasmData", "WasmInstr", "PAGE_SIZE",
    "BY_NAME", "BY_CODE",
    "encode_module", "decode_module", "validate_module", "WasmInstance",
    "format_module", "format_function", "parse_wat",
]
