"""WebAssembly binary format: encoder and decoder (MVP).

Round-trips modules through the real ``\\0asm`` container with LEB128
integers, so the JIT consumes genuine WebAssembly bytes rather than an
in-memory shortcut.  Section ids and layouts follow the MVP spec.
"""

from __future__ import annotations

import struct

from ..errors import ValidationError
from .module import (
    VALTYPE_BYTES, VALTYPE_CODES, WasmData, WasmExport, WasmFuncType,
    WasmFunction, WasmGlobal, WasmImport, WasmModule,
)
from .opcodes import (
    BY_CODE, IMM_BLOCKTYPE, IMM_F32, IMM_F64, IMM_FUNC, IMM_GLOBAL, IMM_I32,
    IMM_I64, IMM_LABEL, IMM_LABEL_TABLE, IMM_LOCAL, IMM_MEMARG, IMM_MEMORY,
    IMM_TYPE_TABLE, WasmInstr,
)

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

SEC_TYPE = 1
SEC_IMPORT = 2
SEC_FUNCTION = 3
SEC_TABLE = 4
SEC_MEMORY = 5
SEC_GLOBAL = 6
SEC_EXPORT = 7
SEC_START = 8
SEC_ELEMENT = 9
SEC_CODE = 10
SEC_DATA = 11


# -- LEB128 --------------------------------------------------------------------

def encode_u32(value: int) -> bytes:
    if value < 0:
        raise ValueError("u32 cannot be negative")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_s64(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if (value == 0 and not (byte & 0x40)) or \
                (value == -1 and (byte & 0x40)):
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


encode_s32 = encode_s64


class Reader:
    """A cursor over binary module bytes."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.data)

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise ValidationError("unexpected end of binary")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ValidationError("unexpected end of binary")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def u32(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 35:
                raise ValidationError("u32 LEB128 too long")

    def s_leb(self, bits: int) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            shift += 7
            if not byte & 0x80:
                if shift < bits and (byte & 0x40):
                    result |= -(1 << shift)
                elif shift >= bits:
                    # Wrap to the signed `bits`-wide range (the encoding
                    # of e.g. a 64-bit negative uses 10 groups).
                    result &= (1 << bits) - 1
                    if result >= 1 << (bits - 1):
                        result -= 1 << bits
                return result
            if shift > bits + 7:
                raise ValidationError("sLEB128 too long")

    def s32(self) -> int:
        return self.s_leb(32)

    def s64(self) -> int:
        return self.s_leb(64)

    def f32(self) -> float:
        return struct.unpack("<f", self.take(4))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def name(self) -> str:
        length = self.u32()
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ValidationError(f"malformed name: {exc}") from None


# -- encoding ---------------------------------------------------------------------

def _enc_valtype(valtype: str) -> bytes:
    return bytes([VALTYPE_BYTES[valtype]])


def _enc_functype(ftype: WasmFuncType) -> bytes:
    out = bytearray(b"\x60")
    out += encode_u32(len(ftype.params))
    for p in ftype.params:
        out += _enc_valtype(p)
    out += encode_u32(len(ftype.results))
    for r in ftype.results:
        out += _enc_valtype(r)
    return bytes(out)


def _enc_name(name: str) -> bytes:
    raw = name.encode("utf-8")
    return encode_u32(len(raw)) + raw


def encode_instr(instr: WasmInstr) -> bytes:
    op = instr.opcode
    out = bytearray([op.code])
    imm = op.imm
    args = instr.args
    if imm == IMM_BLOCKTYPE:
        bt = args[0]
        if bt is None:
            out.append(0x40)
        else:
            out += _enc_valtype(bt)
    elif imm in (IMM_LABEL, IMM_FUNC, IMM_LOCAL, IMM_GLOBAL):
        out += encode_u32(args[0])
    elif imm == IMM_LABEL_TABLE:
        targets, default = args
        out += encode_u32(len(targets))
        for t in targets:
            out += encode_u32(t)
        out += encode_u32(default)
    elif imm == IMM_TYPE_TABLE:
        out += encode_u32(args[0])
        out.append(0x00)  # reserved table index
    elif imm == IMM_MEMARG:
        align, offset = args
        out += encode_u32(align)
        out += encode_u32(offset)
    elif imm == IMM_MEMORY:
        out.append(0x00)
    elif imm == IMM_I32:
        out += encode_s32(args[0])
    elif imm == IMM_I64:
        out += encode_s64(args[0])
    elif imm == IMM_F32:
        out += struct.pack("<f", args[0])
    elif imm == IMM_F64:
        out += struct.pack("<d", args[0])
    return bytes(out)


def _enc_expr(instrs) -> bytes:
    out = bytearray()
    for instr in instrs:
        out += encode_instr(instr)
    out.append(0x0B)  # end
    return bytes(out)


def _section(section_id: int, payload: bytes) -> bytes:
    return bytes([section_id]) + encode_u32(len(payload)) + payload


def encode_module(module: WasmModule) -> bytes:
    """Serialize a module to MVP binary bytes."""
    from ..obs import span
    with span("wasm.encode", module=module.name):
        return _encode_module(module)


def _encode_module(module: WasmModule) -> bytes:
    out = bytearray(MAGIC + VERSION)

    if module.types:
        payload = encode_u32(len(module.types))
        for ftype in module.types:
            payload += _enc_functype(ftype)
        out += _section(SEC_TYPE, payload)

    if module.imports:
        payload = encode_u32(len(module.imports))
        for imp in module.imports:
            payload += _enc_name(imp.module) + _enc_name(imp.name)
            payload += b"\x00" + encode_u32(imp.type_index)
        out += _section(SEC_IMPORT, payload)

    if module.functions:
        payload = encode_u32(len(module.functions))
        for func in module.functions:
            payload += encode_u32(func.type_index)
        out += _section(SEC_FUNCTION, payload)

    if module.table:
        payload = encode_u32(1)            # one table
        payload += b"\x70"                 # funcref
        payload += b"\x00" + encode_u32(len(module.table))  # min only
        out += _section(SEC_TABLE, payload)

    initial, maximum = module.memory_pages
    payload = encode_u32(1)
    if maximum is None:
        payload += b"\x00" + encode_u32(initial)
    else:
        payload += b"\x01" + encode_u32(initial) + encode_u32(maximum)
    out += _section(SEC_MEMORY, payload)

    if module.globals:
        payload = encode_u32(len(module.globals))
        for glob in module.globals:
            payload += _enc_valtype(glob.valtype)
            payload += b"\x01" if glob.mutable else b"\x00"
            payload += _enc_expr([glob.init])
        out += _section(SEC_GLOBAL, payload)

    if module.exports:
        payload = encode_u32(len(module.exports))
        kinds = {"func": 0, "table": 1, "memory": 2, "global": 3}
        for exp in module.exports:
            payload += _enc_name(exp.name)
            payload += bytes([kinds[exp.kind]]) + encode_u32(exp.index)
        out += _section(SEC_EXPORT, payload)

    if module.start is not None:
        out += _section(SEC_START, encode_u32(module.start))

    if module.table:
        # One active element segment covering the whole table.
        payload = encode_u32(1)
        payload += encode_u32(0)  # table index
        payload += _enc_expr([WasmInstr("i32.const", 0)])
        payload += encode_u32(len(module.table))
        for func_index in module.table:
            payload += encode_u32(max(func_index, 0))
        out += _section(SEC_ELEMENT, payload)

    if module.functions:
        payload = encode_u32(len(module.functions))
        for func in module.functions:
            body = bytearray()
            groups = _group_locals(func.locals)
            body += encode_u32(len(groups))
            for count, valtype in groups:
                body += encode_u32(count) + _enc_valtype(valtype)
            body += _enc_expr(func.body)
            payload += encode_u32(len(body)) + body
        out += _section(SEC_CODE, payload)

    if module.data:
        payload = encode_u32(len(module.data))
        for seg in module.data:
            payload += encode_u32(0)  # memory index
            payload += _enc_expr([WasmInstr("i32.const", seg.offset)])
            payload += encode_u32(len(seg.data)) + seg.data
        out += _section(SEC_DATA, payload)

    if getattr(module, "ranges", None):
        # "repro-ranges" custom section: the --check-ranges oracle
        # facts (see WasmModule.ranges).  A custom section, so any
        # MVP-conformant consumer skips it.
        payload = bytearray(_enc_name("repro-ranges"))
        payload += encode_u32(len(module.ranges))
        for func_pos in sorted(module.ranges):
            locs = module.ranges[func_pos]
            payload += encode_u32(func_pos) + encode_u32(len(locs))
            for local in sorted(locs):
                bits, lo, hi, maybe = locs[local]
                payload += encode_u32(local) + bytes([bits])
                payload += struct.pack("<qqQ", lo, hi, maybe)
        out += _section(0, bytes(payload))

    return bytes(out)


def _group_locals(locals_):
    groups = []
    for valtype in locals_:
        if groups and groups[-1][1] == valtype:
            groups[-1][0] += 1
        else:
            groups.append([1, valtype])
    return [(count, vt) for count, vt in groups]


# -- decoding -----------------------------------------------------------------------

def decode_instr(reader: Reader) -> WasmInstr:
    code = reader.byte()
    op = BY_CODE.get(code)
    if op is None:
        raise ValidationError(f"unknown opcode {code:#x}")
    imm = op.imm
    if imm == IMM_BLOCKTYPE:
        bt = reader.byte()
        args = (None,) if bt == 0x40 else (VALTYPE_CODES[bt],)
    elif imm in (IMM_LABEL, IMM_FUNC, IMM_LOCAL, IMM_GLOBAL):
        args = (reader.u32(),)
    elif imm == IMM_LABEL_TABLE:
        count = reader.u32()
        targets = [reader.u32() for _ in range(count)]
        args = (targets, reader.u32())
    elif imm == IMM_TYPE_TABLE:
        type_index = reader.u32()
        reader.byte()  # reserved
        args = (type_index,)
    elif imm == IMM_MEMARG:
        args = (reader.u32(), reader.u32())
    elif imm == IMM_MEMORY:
        reader.byte()
        args = ()
    elif imm == IMM_I32:
        args = (reader.s32(),)
    elif imm == IMM_I64:
        args = (reader.s64(),)
    elif imm == IMM_F32:
        args = (reader.f32(),)
    elif imm == IMM_F64:
        args = (reader.f64(),)
    else:
        args = ()
    return WasmInstr(op.name, *args)


def _dec_expr(reader: Reader):
    """Decode instructions until the matching top-level ``end``."""
    instrs = []
    depth = 0
    while True:
        if reader.data[reader.pos] == 0x0B and depth == 0:
            reader.byte()
            return instrs
        instr = decode_instr(reader)
        if instr.op in ("block", "loop", "if"):
            depth += 1
        elif instr.op == "end":
            depth -= 1
        instrs.append(instr)


def _dec_valtype(reader: Reader) -> str:
    code = reader.byte()
    if code not in VALTYPE_CODES:
        raise ValidationError(f"bad value type {code:#x}")
    return VALTYPE_CODES[code]


def decode_module(data: bytes, name: str = "module") -> WasmModule:
    """Parse MVP binary bytes into a WasmModule.

    Malformed input of any kind is reported as :class:`ValidationError`;
    raw decoding exceptions never escape.
    """
    try:
        return _decode_module(data, name)
    except ValidationError:
        raise
    except (KeyError, IndexError, ValueError, OverflowError,
            MemoryError, struct.error) as exc:
        raise ValidationError(
            f"malformed module: {type(exc).__name__}: {exc}") from None


def _decode_module(data: bytes, name: str = "module") -> WasmModule:
    reader = Reader(data)
    if reader.take(4) != MAGIC:
        raise ValidationError("bad magic number")
    if reader.take(4) != VERSION:
        raise ValidationError("unsupported version")

    module = WasmModule(name)
    while not reader.eof():
        section_id = reader.byte()
        size = reader.u32()
        body = Reader(reader.take(size))
        if section_id == SEC_TYPE:
            for _ in range(body.u32()):
                if body.byte() != 0x60:
                    raise ValidationError("bad functype tag")
                params = [_dec_valtype(body) for _ in range(body.u32())]
                results = [_dec_valtype(body) for _ in range(body.u32())]
                module.types.append(WasmFuncType(params, results))
        elif section_id == SEC_IMPORT:
            for _ in range(body.u32()):
                mod_name = body.name()
                field = body.name()
                kind = body.byte()
                if kind != 0x00:
                    raise ValidationError("only function imports supported")
                module.imports.append(
                    WasmImport(mod_name, field, "func", body.u32()))
        elif section_id == SEC_FUNCTION:
            for _ in range(body.u32()):
                module.functions.append(WasmFunction(body.u32()))
        elif section_id == SEC_TABLE:
            for _ in range(body.u32()):
                if body.byte() != 0x70:
                    raise ValidationError("bad table element type")
                flags = body.byte()
                initial = body.u32()
                if flags:
                    body.u32()
                module.table = [0] * initial
        elif section_id == SEC_MEMORY:
            for _ in range(body.u32()):
                flags = body.byte()
                initial = body.u32()
                maximum = body.u32() if flags else None
                module.memory_pages = (initial, maximum)
        elif section_id == SEC_GLOBAL:
            for _ in range(body.u32()):
                valtype = _dec_valtype(body)
                mutable = body.byte() == 1
                init = _dec_expr(body)
                module.globals.append(
                    WasmGlobal(valtype, mutable, init[0]))
        elif section_id == SEC_EXPORT:
            kinds = {0: "func", 1: "table", 2: "memory", 3: "global"}
            for _ in range(body.u32()):
                export_name = body.name()
                kind = kinds[body.byte()]
                module.exports.append(
                    WasmExport(export_name, kind, body.u32()))
        elif section_id == SEC_START:
            module.start = body.u32()
        elif section_id == SEC_ELEMENT:
            for _ in range(body.u32()):
                if body.u32() != 0:
                    raise ValidationError("bad element table index")
                offset_expr = _dec_expr(body)
                offset = offset_expr[0].args[0]
                count = body.u32()
                for i in range(count):
                    idx = body.u32()
                    while len(module.table) <= offset + i:
                        module.table.append(0)
                    module.table[offset + i] = idx
        elif section_id == SEC_CODE:
            count = body.u32()
            for i in range(count):
                size = body.u32()
                code = Reader(body.take(size))
                locals_ = []
                for _ in range(code.u32()):
                    n = code.u32()
                    valtype = _dec_valtype(code)
                    locals_.extend([valtype] * n)
                func = module.functions[i]
                func.locals = locals_
                func.body = _dec_expr(code)
        elif section_id == SEC_DATA:
            for _ in range(body.u32()):
                if body.u32() != 0:
                    raise ValidationError("bad data memory index")
                offset_expr = _dec_expr(body)
                offset = offset_expr[0].args[0]
                length = body.u32()
                module.data.append(WasmData(offset, body.take(length)))
        elif section_id == 0:
            sec_name = body.name()
            if sec_name == "repro-ranges":
                for _ in range(body.u32()):
                    func_pos = body.u32()
                    locs = module.ranges.setdefault(func_pos, {})
                    for _ in range(body.u32()):
                        local = body.u32()
                        bits = body.byte()
                        lo, hi, maybe = struct.unpack("<qqQ", body.take(24))
                        locs[local] = (bits, lo, hi, maybe)
            # other custom sections are skipped
        else:
            pass  # unknown sections are skipped

    # Recover function names from exports for nicer diagnostics.
    imports = module.num_imported_funcs
    for exp in module.exports:
        if exp.kind == "func" and exp.index >= imports:
            module.functions[exp.index - imports].name = exp.name
    return module
