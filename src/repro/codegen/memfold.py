"""Addressing-mode and memory-operand folding (native backend only).

Rewrites IR patterns into the richer memory forms that x86 offers and the
paper's §5.1.1/§6.1.3 show Clang using while the WebAssembly JITs do not:

* read-modify-write memory destinations::

      t = load [m] ; ... ; t2 = add t, x ; store [m] = t2
      ==>  ... ; memadd [m], x

* scaled-index addressing::

      s = mul idx, 4 ; a = add base, s ; ... ; d = load [a+off]
      ==>  ... ; d = load [base + idx*4 + off]

Both transformations eliminate address-computation instructions and free
the registers that held the intermediate values, directly reducing both
instruction count and register pressure for native code.  Matching is
intra-block but not adjacency-bound: stores/calls between the load and the
store block the RMW fold (aliasing), and redefinition of any participating
register blocks both folds.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import (
    BinOp, Call, CallIndirect, Load, MemBinOp, SetGlobal, Store,
)
from ..ir.module import Module
from ..ir.values import Const, VReg

_SCALES = {1, 2, 4, 8}
_RMW_OPS = {"add", "sub", "and", "or", "xor"}
_COMMUT_RMW = {"add", "and", "or", "xor"}
_MEM_WRITES = (Store, MemBinOp, Call, CallIndirect, SetGlobal)


def _use_counts(func: Function):
    counts = {}
    for block in func.blocks.values():
        for instr in block.all_instrs():
            for reg in instr.uses():
                counts[reg.id] = counts.get(reg.id, 0) + 1
    return counts


def fold_memory_ops(func: Function) -> int:
    """Apply both folds to every block; returns number of rewrites.

    RMW folding runs first: collapsing load/op/store into one memory
    operation drops the address register's use count to one, which then
    lets the addressing fold absorb the mul/add address computation too —
    yielding Clang's full ``add [base + idx*4 + disp], reg`` form.
    """
    rewrites = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks.values():
            counts = _use_counts(func)
            if _fold_rmw_block(block, counts):
                changed = True
                rewrites += 1
        counts = _use_counts(func)
        for block in func.blocks.values():
            n = _fold_addr_block(func, block, counts)
            if n:
                changed = True
                rewrites += n
        if _sweep_dead_scale_defs(func):
            changed = True
    return rewrites


def _sweep_dead_scale_defs(func: Function) -> int:
    """Drop pure scale computations (``mul``/``shl`` by a constant)
    whose every use was absorbed into an addressing mode."""
    counts = _use_counts(func)
    removed = 0
    for block in func.blocks.values():
        keep = []
        for instr in block.instrs:
            if (isinstance(instr, BinOp) and instr.op in ("mul", "shl")
                    and isinstance(instr.rhs, Const)
                    and counts.get(instr.dst.id, 0) == 0):
                removed += 1
                continue
            keep.append(instr)
        if removed:
            block.instrs = keep
    return removed


def fold_module(module: Module) -> int:
    return sum(fold_memory_ops(f) for f in module.functions.values())


# -- read-modify-write fold ---------------------------------------------------

def _mem_key(instr):
    return (instr.base, instr.offset, instr.index, instr.scale, instr.size)


def _fold_rmw_block(block, counts) -> bool:
    """Fold one RMW pattern in ``block``; returns True if one was found."""
    instrs = block.instrs
    for i, store in enumerate(instrs):
        if not isinstance(store, Store) or not isinstance(store.src, VReg):
            continue
        if i == 0 or counts.get(store.src.id, 0) != 1:
            continue
        binop = instrs[i - 1]
        if not (isinstance(binop, BinOp) and binop.op in _RMW_OPS
                and binop.dst == store.src):
            continue
        if binop.dst.ty.is_float:
            continue
        # Identify which operand is the loaded value.
        for h in range(i - 2, -1, -1):
            load = instrs[h]
            if isinstance(load, _MEM_WRITES):
                break  # potential aliasing: stop searching
            if not isinstance(load, Load):
                continue
            if _mem_key(load) != _mem_key(store):
                continue
            if load.size != load.dst.ty.size:
                continue  # sub-word sign-extension subtleties: skip
            loaded = load.dst
            if counts.get(loaded.id, 0) != 1:
                break
            if binop.lhs == loaded:
                other = binop.rhs
            elif binop.rhs == loaded and binop.op in _COMMUT_RMW:
                other = binop.lhs
            else:
                break
            if isinstance(other, VReg) and other.ty.is_float:
                break
            # The participating registers must not be redefined between
            # the load and the store.
            participants = {r.id for r in load.uses()}
            if isinstance(other, VReg):
                if not _def_before(instrs, h, i - 1, other):
                    pass  # defined in between is fine; value is read at op
            if _redefined_between(instrs, h + 1, i - 1, participants):
                break
            block.instrs = (instrs[:h] + instrs[h + 1:i - 1] +
                            [MemBinOp(binop.op, load.base, load.offset,
                                      other, load.size, index=load.index,
                                      scale=load.scale)] +
                            instrs[i + 1:])
            return True
    return False


def _redefined_between(instrs, lo, hi, reg_ids) -> bool:
    for idx in range(lo, hi):
        for reg in instrs[idx].defs():
            if reg.id in reg_ids:
                return True
    return False


def _def_before(instrs, lo, hi, reg) -> bool:
    for idx in range(lo, hi):
        if reg in instrs[idx].defs():
            return False
    return True


# -- addressing fold ------------------------------------------------------------

def _global_def_counts(func):
    counts = {}
    for blk in func.blocks.values():
        for instr in blk.all_instrs():
            for reg in instr.defs():
                counts[reg.id] = counts.get(reg.id, 0) + 1
    return counts


def _fold_addr_block(func, block, counts) -> int:
    """Fold address computations into memory accesses within ``block``."""
    instrs = block.instrs
    global_defs = _global_def_counts(func)
    defs_at = {}
    for idx, instr in enumerate(instrs):
        for reg in instr.defs():
            defs_at.setdefault(reg.id, []).append(idx)

    def single_def(reg):
        if global_defs.get(reg.id, 0) != 1:
            return None
        positions = defs_at.get(reg.id, [])
        return positions[0] if len(positions) == 1 else None

    rewrites = 0
    remove = set()
    for m, mem in enumerate(instrs):
        if not isinstance(mem, (Load, Store, MemBinOp)):
            continue
        if mem.index is not None or not isinstance(mem.base, VReg):
            continue
        if counts.get(mem.base.id, 0) != 1:
            continue
        d = single_def(mem.base)
        if d is None or d in remove or d >= m:
            continue
        add = instrs[d]
        if not (isinstance(add, BinOp) and add.op == "add"):
            continue
        folded = _try_fold_addr(global_defs, instrs, defs_at, counts,
                                remove, mem, m, add, d)
        if folded is not None:
            instrs[m] = folded
            remove.add(d)
            rewrites += 1
    if remove:
        block.instrs = [ins for idx, ins in enumerate(instrs)
                        if idx not in remove]
    return rewrites


def _try_fold_addr(global_defs, instrs, defs_at, counts, remove, mem, m,
                   add, d):
    """Attempt to fold ``add`` (at index d) into ``mem`` (at index m)."""
    # Decompose add into (base, index_part).
    for base, part in ((add.lhs, add.rhs), (add.rhs, add.lhs)):
        if not isinstance(part, VReg):
            continue
        # Case 1: part = mul idx, scale.
        pd = _single_def_at(defs_at, part)
        if pd is not None and global_defs.get(part.id, 0) != 1:
            pd = None
        scale = 1
        index = part
        mul_idx = None
        if pd is not None and pd not in remove:
            mul = instrs[pd]
            # ``mul idx, {1,2,4,8}`` and its strength-reduced spelling
            # ``shl idx, {0,1,2,3}`` both become a hardware scale.  A
            # multi-use scale def (GVN commons the address computation
            # across several accesses) still folds — the hardware scale
            # recomputes it for free — but only a single-use def can be
            # deleted here; a def whose every use folds away goes dead
            # and is swept by the caller.
            factor = None
            if (isinstance(mul, BinOp) and isinstance(mul.rhs, Const)
                    and isinstance(mul.lhs, VReg) and pd < d):
                if mul.op == "mul" and mul.rhs.value in _SCALES:
                    factor = int(mul.rhs.value)
                elif mul.op == "shl" and mul.rhs.value in (0, 1, 2, 3):
                    factor = 1 << int(mul.rhs.value)
            if factor is not None:
                if not _redef_between(instrs, pd + 1, m, mul.lhs):
                    scale = factor
                    index = mul.lhs
                    if counts.get(part.id) == 1:
                        mul_idx = pd
        # Safety: base and index must not be redefined between d and m.
        if isinstance(base, VReg) and _redef_between(instrs, d + 1, m, base):
            continue
        if _redef_between(instrs, d + 1, m, index):
            continue
        if isinstance(mem, Store) and (mem.src == index or mem.src == base):
            pass  # reading those registers is fine
        if mul_idx is not None:
            remove.add(mul_idx)
        return _rebase(mem, base, index, scale)
    return None


def _single_def_at(defs_at, reg):
    positions = defs_at.get(reg.id, [])
    return positions[0] if len(positions) == 1 else None


def _redef_between(instrs, lo, hi, reg) -> bool:
    if not isinstance(reg, VReg):
        return False
    for idx in range(lo, hi):
        if reg in instrs[idx].defs():
            return True
    return False


def _rebase(instr, base, index, scale):
    if isinstance(instr, Load):
        return Load(instr.dst, base, instr.offset, instr.size,
                    instr.signed, index=index, scale=scale)
    if isinstance(instr, MemBinOp):
        return MemBinOp(instr.op, base, instr.offset, instr.src,
                        instr.size, index=index, scale=scale)
    return Store(base, instr.offset, instr.src, instr.size,
                 index=index, scale=scale)
