"""Code generation: IR -> simulated x86-64 under a TargetConfig."""

from .lower import ModuleLowering, lower_module
from .memfold import fold_memory_ops, fold_module
from .native import compile_ir_native, compile_native
from .target import ABI, CHROME, FIREFOX, NATIVE, SYSV_ABI, TargetConfig

__all__ = [
    "ModuleLowering", "lower_module", "fold_memory_ops", "fold_module",
    "compile_ir_native", "compile_native",
    "TargetConfig", "ABI", "SYSV_ABI", "NATIVE", "CHROME", "FIREFOX",
]
