"""The Emscripten-style backend: IR -> WebAssembly.

Plays the role of Emscripten/LLVM's wasm backend in the paper's toolchain:
the same optimized IR that feeds the native code generator is lowered to a
WebAssembly module (wasm32, shadow stack in linear memory, externs as
``env`` imports, function pointers through the table).

Control flow is restructured with the dominator-tree algorithm from
Ramsey's "Beyond Relooper" (the algorithm class used by LLVM's wasm
backend): merge nodes become ``block``s, loop headers become ``loop``s,
and every IR branch turns into a ``br``/``br_if`` or straight fall-through.
Requires a reducible CFG, which everything produced by mcc (and the shared
middle-end passes) satisfies.
"""

from __future__ import annotations

import time

from ..errors import CompileError
from ..ir.function import Function
from ..ir.instructions import (
    BinOp, Call, CallIndirect, CondBr, GetGlobal, Jump, Load, Move, Return,
    SetGlobal, Store, Trap, UnOp, CMP_OPS,
)
from ..ir.loops import dominators
from ..ir.module import Module
from ..ir.passes import optimize_module
from ..ir.types import Type
from ..ir.values import Const, VReg
from ..mcc import compile_source
from ..wasm.module import (
    PAGE_SIZE, WasmData, WasmExport, WasmFuncType, WasmFunction, WasmGlobal,
    WasmImport, WasmModule,
)
from ..wasm.opcodes import WasmInstr

_I = WasmInstr


class EmscriptenBackend:
    """Compiles an IR module to a WasmModule."""

    def __init__(self, module: Module):
        self.ir = module
        self.out = WasmModule(module.name)
        self.func_indices: dict[str, int] = {}

    def compile(self) -> WasmModule:
        out = self.out
        ir = self.ir

        # Imports come first in the function index space.
        for name, ftype in sorted(ir.externs.items()):
            type_index = out.type_index(WasmFuncType.from_ir(ftype))
            out.imports.append(WasmImport("env", name, "func", type_index))
            self.func_indices[name] = len(self.func_indices)

        # A null stub occupies table slot 0 (Emscripten's layout): calling
        # through a null function pointer must trap.
        defined = list(ir.functions.values())
        base = len(self.func_indices)
        stub_needed = bool(ir.table)
        stub_index = None
        if stub_needed:
            stub_index = base + len(defined)
        for offset, func in enumerate(defined):
            self.func_indices[func.name] = base + offset

        # Memory and globals.
        pages = (ir.memory_size + PAGE_SIZE - 1) // PAGE_SIZE
        out.memory_pages = (pages, pages)
        global_indices = {}
        for name, gvar in ir.wasm_globals.items():
            global_indices[name] = len(out.globals)
            const_op = {"i32": "i32.const", "i64": "i64.const",
                        "f64": "f64.const"}[gvar.ty.value]
            init = gvar.init if gvar.ty.is_int else float(gvar.init)
            out.globals.append(WasmGlobal(gvar.ty.value, gvar.mutable,
                                          _I(const_op, init)))

        # Table.
        if ir.table:
            out.table = [
                self.func_indices[name] if name else stub_index
                for name in ir.table
            ]

        # Function bodies.
        from ..ir.verify import check_ranges_enabled
        oracle = check_ranges_enabled()
        for offset, func in enumerate(defined):
            emitter = _FunctionEmitter(self, func, global_indices)
            out.functions.append(emitter.run())
            if oracle:
                facts = emitter.range_locals()
                if facts:
                    out.ranges[offset] = facts
        if stub_needed:
            void = out.type_index(WasmFuncType((), ()))
            out.functions.append(
                WasmFunction(void, [], [_I("unreachable")], "__null_stub"))

        # Data segments and exports.
        for seg in ir.data:
            out.data.append(WasmData(seg.addr, seg.data))
        for name in ir.functions:
            out.exports.append(
                WasmExport(name, "func", self.func_indices[name]))
        out.exports.append(WasmExport("memory", "memory", 0))
        # Export the heap start the way Emscripten does, so runtimes know
        # where malloc's arena begins (after data *and* BSS).
        heap_global = len(out.globals)
        out.globals.append(WasmGlobal("i32", False,
                                      _I("i32.const", ir.heap_base)))
        out.exports.append(WasmExport("__heap_base", "global", heap_global))
        return out


class _Ctx:
    """Relooper context entries."""

    BLOCK = "block"
    LOOP = "loop"
    IF = "if"

    __slots__ = ("kind", "label")

    def __init__(self, kind, label=None):
        self.kind = kind
        self.label = label


class _FunctionEmitter:
    def __init__(self, backend: EmscriptenBackend, func: Function,
                 global_indices):
        self.backend = backend
        self.func = func
        self.global_indices = global_indices
        self.code: list[WasmInstr] = []
        self.local_indices: dict[int, int] = {}
        self.local_types: list[str] = []

        # CFG analyses for the relooper.
        reachable = func.reachable_blocks()
        self.order = [b.label for b in func.block_order()
                      if b.label in reachable]
        self.rpo = {label: i for i, label in enumerate(self.order)}
        self.preds = {label: [p for p in ps if p in reachable]
                      for label, ps in func.predecessors().items()
                      if label in reachable}
        self.dom = dominators(func)
        self.idom = self._immediate_dominators()
        self.children = {label: [] for label in self.order}
        for label, parent in self.idom.items():
            if parent is not None:
                self.children[parent].append(label)
        for kids in self.children.values():
            kids.sort(key=lambda l: self.rpo[l])

    # -- locals -----------------------------------------------------------------

    def range_locals(self) -> dict:
        """``--check-ranges`` facts per wasm local: {local index: (bits,
        lo, hi, maybe)}.

        A local gets a fact only when *every* assignment of it carries a
        proved interval — the recorded tuple is the join over all def
        sites, so it holds for each individual ``local.set``.  Call
        after :meth:`run` (the local map must be complete).
        """
        from ..dataflow.interval import analyze_function
        info = analyze_function(self.func, self.backend.ir)
        joined = {}
        tainted = set()
        reachable = self.func.reachable_blocks()
        for label in self.order:
            if label not in reachable:
                continue
            for instr in self.func.blocks[label].instrs:
                dst = getattr(instr, "dst", None)
                if not isinstance(dst, VReg) or not dst.ty.is_int:
                    continue
                local = self.local_indices.get(dst.id)
                if local is None:
                    continue  # def was never emitted (dead)
                fact = info.facts.get(instr)
                if fact is None or fact.is_top:
                    tainted.add(local)
                elif local in joined:
                    joined[local] = joined[local].join(fact)
                else:
                    joined[local] = fact
        return {local: (fact.bits, fact.lo, fact.hi, fact.maybe)
                for local, fact in joined.items()
                if local not in tainted}

    def local_of(self, vreg: VReg) -> int:
        index = self.local_indices.get(vreg.id)
        if index is None:
            index = len(self.func.params) + len(self.local_types)
            self.local_indices[vreg.id] = index
            self.local_types.append(vreg.ty.value)
        return index

    # -- CFG properties -----------------------------------------------------------

    def _immediate_dominators(self):
        idom = {}
        for label in self.order:
            doms = self.dom[label] - {label}
            if not doms:
                idom[label] = None
                continue
            idom[label] = max(doms, key=lambda d: len(self.dom[d]))
        return idom

    def _is_merge(self, label: str) -> bool:
        forward = sum(1 for p in self.preds.get(label, [])
                      if self.rpo[p] < self.rpo[label])
        return forward >= 2

    def _is_loop_header(self, label: str) -> bool:
        return any(self.rpo[p] >= self.rpo[label]
                   for p in self.preds.get(label, []))

    # -- relooper --------------------------------------------------------------------

    def run(self) -> WasmFunction:
        ftype = self.func.ftype
        for param in self.func.params:
            self.local_indices[param.id] = len(self.local_indices)
        self.do_tree(self.func.entry, [])
        # Every IR path ends in return/trap, so the implicit function end
        # is unreachable; emit it explicitly so validation of result-typed
        # functions succeeds (LLVM's wasm backend does the same).
        self.emit("unreachable")
        type_index = self.backend.out.type_index(WasmFuncType.from_ir(ftype))
        return WasmFunction(type_index, self.local_types, self.code,
                            self.func.name)

    def emit(self, op, *args) -> None:
        self.code.append(_I(op, *args))

    def do_tree(self, label: str, context) -> None:
        merge_children = [c for c in self.children[label]
                          if self._is_merge(c)]
        merge_children.sort(key=lambda l: self.rpo[l])
        if self._is_loop_header(label):
            self.emit("loop", None)
            self.node_within(label, merge_children,
                             [_Ctx(_Ctx.LOOP, label)] + context)
            self.emit("end")
        else:
            self.node_within(label, merge_children, context)

    def node_within(self, label: str, merge_children, context) -> None:
        if merge_children:
            inner = merge_children[:-1]
            last = merge_children[-1]
            self.emit("block", None)
            self.node_within(label, inner,
                             [_Ctx(_Ctx.BLOCK, last)] + context)
            self.emit("end")
            self.do_tree(last, context)
            return
        block = self.func.blocks[label]
        for instr in block.instrs:
            self.emit_instr(instr)
        term = block.term
        if isinstance(term, Jump):
            self.do_branch(label, term.target, context)
        elif isinstance(term, CondBr):
            self.push(term.cond)
            true_inline = self._inline_target(label, term.if_true)
            false_inline = self._inline_target(label, term.if_false)
            if not true_inline and not false_inline:
                # Both sides are branches: use br_if + br (the compact
                # form Emscripten emits for loop back edges and exits).
                self.emit("br_if", self._depth_for(label, term.if_true,
                                                   context))
                self.do_branch(label, term.if_false, context)
            else:
                self.emit("if", None)
                if_context = [_Ctx(_Ctx.IF)] + context
                self.do_branch(label, term.if_true, if_context)
                self.emit("else")
                self.do_branch(label, term.if_false, if_context)
                self.emit("end")
        elif isinstance(term, Return):
            if term.value is not None:
                self.push(term.value)
            self.emit("return")
        elif isinstance(term, Trap):
            self.emit("unreachable")
        else:  # pragma: no cover
            raise CompileError(f"bad terminator {term!r}")

    def _inline_target(self, source: str, target: str) -> bool:
        """True when the branch will inline the target subtree."""
        if self.rpo[target] <= self.rpo[source]:
            return False  # back edge
        return not self._is_merge(target)

    def _depth_for(self, source: str, target: str, context) -> int:
        back = self.rpo[target] <= self.rpo[source]
        for depth, entry in enumerate(context):
            if back and entry.kind == _Ctx.LOOP and entry.label == target:
                return depth
            if not back and entry.kind == _Ctx.BLOCK \
                    and entry.label == target:
                return depth
        raise CompileError(
            f"{self.func.name}: no context for branch {source}->{target}")

    def do_branch(self, source: str, target: str, context) -> None:
        if self._inline_target(source, target):
            self.do_tree(target, context)
        else:
            self.emit("br", self._depth_for(source, target, context))

    # -- straight-line code -------------------------------------------------------------

    def push(self, operand) -> None:
        if isinstance(operand, Const):
            if operand.ty is Type.I32:
                self.emit("i32.const", _sign32(int(operand.value)))
            elif operand.ty is Type.I64:
                self.emit("i64.const", _sign64(int(operand.value)))
            else:
                self.emit("f64.const", float(operand.value))
        else:
            self.emit("local.get", self.local_of(operand))

    def set_local(self, vreg: VReg) -> None:
        self.emit("local.set", self.local_of(vreg))

    def emit_instr(self, instr) -> None:
        if isinstance(instr, Move):
            self.push(instr.src)
            self.set_local(instr.dst)
        elif isinstance(instr, BinOp):
            self.push(instr.lhs)
            self.push(instr.rhs)
            operand_ty = (instr.lhs.ty
                          if isinstance(instr.lhs, (VReg, Const))
                          else Type.I32)
            prefix = operand_ty.value if instr.op in CMP_OPS \
                else instr.dst.ty.value
            self.emit(f"{prefix}.{instr.op}")
            self.set_local(instr.dst)
        elif isinstance(instr, UnOp):
            self._emit_unop(instr)
        elif isinstance(instr, Load):
            if instr.index is not None:
                raise CompileError("scaled-index IR reached the wasm "
                                   "backend (native-only form)")
            self.push(instr.base)
            self.emit(_load_op(instr), _align(instr.size), instr.offset)
            self.set_local(instr.dst)
        elif isinstance(instr, Store):
            if instr.index is not None:
                raise CompileError("scaled-index IR reached the wasm "
                                   "backend (native-only form)")
            self.push(instr.base)
            self.push(instr.src)
            self.emit(_store_op(instr), _align(instr.size), instr.offset)
        elif isinstance(instr, GetGlobal):
            self.emit("global.get", self.global_indices[instr.name])
            self.set_local(instr.dst)
        elif isinstance(instr, SetGlobal):
            self.push(instr.src)
            self.emit("global.set", self.global_indices[instr.name])
        elif isinstance(instr, Call):
            for arg in instr.args:
                self.push(arg)
            self.emit("call", self.backend.func_indices[instr.callee])
            if instr.dst is not None:
                self.set_local(instr.dst)
            elif self._callee_returns(instr.callee):
                self.emit("drop")
        elif isinstance(instr, CallIndirect):
            for arg in instr.args:
                self.push(arg)
            self.push(instr.target)
            type_index = self.backend.out.type_index(
                WasmFuncType.from_ir(instr.ftype))
            self.emit("call_indirect", type_index)
            if instr.dst is not None:
                self.set_local(instr.dst)
            elif instr.ftype.result is not None:
                self.emit("drop")
        else:  # pragma: no cover
            raise CompileError(f"cannot emit {instr!r} to wasm")

    def _callee_returns(self, name: str) -> bool:
        return self.backend.ir.signature_of(name).result is not None

    def _emit_unop(self, instr: UnOp) -> None:
        op = instr.op
        src_ty = (instr.src.ty if isinstance(instr.src, (VReg, Const))
                  else Type.I32)
        self.push(instr.src)
        if op == "eqz":
            self.emit(f"{src_ty.value}.eqz")
        elif "_" in op and any(op.startswith(p)
                               for p in ("i32_", "i64_", "f64_")):
            # Conversions: i64_extend_i32_s -> i64.extend_i32_s etc.
            self.emit(op[:3] + "." + op[4:])
        else:
            # Float/integer unary math: neg, abs, sqrt, clz, ...
            self.emit(f"{instr.dst.ty.value}.{op}")
        self.set_local(instr.dst)


def _sign32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def _sign64(value: int) -> int:
    value &= 0xFFFFFFFFFFFFFFFF
    return value - (1 << 64) if value >= (1 << 63) else value


def _align(size: int) -> int:
    return {1: 0, 2: 1, 4: 2, 8: 3}[size]


def _load_op(instr: Load) -> str:
    ty = instr.dst.ty
    if ty is Type.F64:
        return "f64.load"
    prefix = ty.value
    if instr.size == ty.size:
        return f"{prefix}.load"
    sign = "s" if instr.signed else "u"
    return f"{prefix}.load{instr.size * 8}_{sign}"


def _store_op(instr: Store) -> str:
    src = instr.src
    ty = src.ty if isinstance(src, (VReg, Const)) else Type.I32
    if ty is Type.F64:
        return "f64.store"
    prefix = ty.value
    if instr.size == ty.size:
        return f"{prefix}.store"
    return f"{prefix}.store{instr.size * 8}"


def compile_ir_to_wasm(module: Module) -> WasmModule:
    """Lower an (already optimized) IR module to WebAssembly."""
    from ..obs import span
    with span("wasm.lower", module=module.name):
        return EmscriptenBackend(module).compile()


def compile_emscripten(source: str, name: str = "program",
                       opt_level: int = 2, memory_size: int = None,
                       stack_size: int = None):
    """Full Emscripten-style pipeline: mcc source -> optimized wasm.

    Returns (wasm_module, ir_module).  The middle-end runs the same shared
    -O2 pipeline as the native backend *minus* loop unrolling (the JITs'
    code is compiled from un-unrolled wasm, which is the paper's §6.3
    i-cache asymmetry).
    """
    start = time.perf_counter()
    ir = compile_source(source, name, memory_size=memory_size,
                        stack_size=stack_size)
    optimize_module(ir, level=opt_level, unroll=False)
    wasm = compile_ir_to_wasm(ir)
    elapsed = time.perf_counter() - start
    wasm.compile_seconds = elapsed
    return wasm, ir
