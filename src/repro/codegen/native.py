"""The native (Clang-like) compilation pipeline.

Source -> IR -> full middle-end optimization -> memory-operand folding ->
graph-coloring allocation -> x86.  Loop unrolling covers small
innermost loops only (the constant-trip full/partial unrolling Clang
performs at ``-O2``); the unrolling ablation benchmark isolates its
effect on the 429.mcf i-cache anomaly.  This models the ahead-of-time compiler the paper benchmarks against:
it spends much more compilation time than the JIT pipelines (Table 2) and
produces the tighter code the paper's §5 disassembly shows.
"""

from __future__ import annotations

import time

from ..ir.module import Module
from ..ir.passes import optimize_module, verify_after_pass
from ..mcc import compile_source
from ..obs import span
from ..x86.program import X86Program
from .lower import lower_module
from .memfold import fold_module
from .target import NATIVE, TargetConfig


def compile_ir_native(module: Module, config: TargetConfig = None,
                      opt_level: int = 2, unroll: bool = True) -> X86Program:
    """Compile an IR module with the native pipeline (mutates ``module``)."""
    config = config or NATIVE
    start = time.perf_counter()
    optimize_module(module, level=opt_level, unroll=unroll)
    if config.fold_mem_ops:
        with span("codegen.memfold", module=module.name):
            fold_module(module)
            for func in module.functions.values():
                verify_after_pass("memfold", func, module)
    program = lower_module(module, config)
    program.compile_stats["compile_seconds"] = time.perf_counter() - start
    program.compile_stats["pipeline"] = "native"
    return program


def compile_native(source: str, name: str = "program",
                   config: TargetConfig = None, opt_level: int = 2,
                   unroll: bool = True, memory_size: int = None,
                   stack_size: int = None):
    """Compile mcc source text natively; returns (program, ir_module)."""
    start = time.perf_counter()
    module = compile_source(source, name, memory_size=memory_size,
                            stack_size=stack_size)
    program = compile_ir_native(module, config, opt_level, unroll)
    program.compile_stats["compile_seconds"] = time.perf_counter() - start
    return program, module
