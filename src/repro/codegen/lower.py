"""IR -> simulated x86-64 lowering, parameterized by a TargetConfig.

One lowering engine serves all backends; the TargetConfig decides which
registers exist, which allocator runs, whether memory operands and scaled
addressing are used, and which safety checks are emitted.  Every
difference the paper measures between native and WebAssembly code is a
config flag here, which is what makes the ablation benchmarks possible.
"""

from __future__ import annotations

from ..errors import CompileError
from ..ir.function import Function
from ..ir.instructions import (
    BinOp, Call, CallIndirect, CondBr, GetGlobal, Jump, Lea, Load,
    MemBinOp, Move, Return, SetGlobal, Store, Trap, UnOp, CMP_OPS,
    COMMUTATIVE_OPS,
)
from ..ir.loops import natural_loops
from ..ir.module import Module
from ..ir.types import Type
from ..ir.values import Const, VReg
from ..ir.verify import check_ranges_enabled, verify_ir_enabled
from ..obs import get_registry, span
from ..regalloc.check import check_assignment
from ..regalloc.graph_coloring import graph_coloring
from ..regalloc.linear_scan import linear_scan
from ..regalloc.liveness import LivenessInfo
from ..x86.isa import BRANCH_OPS, Imm, Instr, Label, Mem, Reg
from ..x86.program import X86Program
from ..x86.registers import RAX, RBP, RCX, RDX, RSP, XMM0
from .target import TargetConfig

_INT_CC = {"eq": "e", "ne": "ne", "lt_s": "l", "le_s": "le", "gt_s": "g",
           "ge_s": "ge", "lt_u": "b", "le_u": "be", "gt_u": "a",
           "ge_u": "ae"}
_FLOAT_CC = {"eq": "e", "ne": "ne", "lt": "b", "le": "be", "gt": "a",
             "ge": "ae"}
_ALU = {"add": "add", "sub": "sub", "mul": "imul", "and": "and",
        "or": "or", "xor": "xor"}
_FALU = {"add": "addsd", "sub": "subsd", "mul": "mulsd", "div": "divsd",
         "min": "minsd", "max": "maxsd"}
_SHIFTS = {"shl": "shl", "shr_u": "shr", "shr_s": "sar"}

#: Sign-bit and abs masks for xorpd/andpd float negation.
_SIGN_MASK = 0x8000000000000000
_ABS_MASK = 0x7FFFFFFFFFFFFFFF


class ModuleLowering:
    """Lowers an IR module to an X86Program under one TargetConfig."""

    def __init__(self, module: Module, config: TargetConfig,
                 program_name: str = None):
        self.module = module
        self.config = config
        self.program = X86Program(program_name or
                                  f"{module.name}.{config.name}",
                                  module.memory_size)
        self.program.abi = config.abi
        self.program.code_alignment = config.code_alignment
        self.program.extern_sigs = dict(module.externs)
        self.sig_ids: dict = {}
        self.table_addr_base = 0
        self.table_sig_base = 0
        self.table_len = 0
        #: §6.4 range-driven check elision: only eliding targets
        #: (tiered engines) under the optimizing tier, revertable with
        #: ``REPRO_RANGES=0``.  The oracle flag makes the lowering
        #: attach ``--check-ranges`` assertions to committed defs.
        from ..ir.passes.ranges import ranges_enabled
        from ..tier import get_tier
        self.elide = (getattr(config, "elide_checks", False)
                      and ranges_enabled() and get_tier() == "fuse")
        self.oracle = check_ranges_enabled()
        self.check_stats = {
            "stack_total": 0, "stack_elided": 0,
            "indirect_total": 0, "indirect_elided": 0,
        }

    def compile(self) -> X86Program:
        program = self.program
        for name, gvar in self.module.wasm_globals.items():
            program.add_instance_global(name, int(gvar.init))
        if self.config.stack_check:
            program.add_instance_global(
                "__stack_limit", self.module.memory_size + 4096)

        self._build_tables()

        with span("codegen.lower", target=self.config.name,
                  module=self.module.name):
            # Two-phase lowering: ``prepare`` runs regalloc for every
            # function first, so the stack-elision planner can see
            # every frame size and call site before any code is
            # emitted; ``emit_body`` then lowers under the plan.
            lowerings = [FunctionLowering(self, func)
                         for func in self.module.functions.values()]
            for fl in lowerings:
                fl.prepare()
            self._plan_stack_elision(lowerings)
            for fl in lowerings:
                fl.emit_body()
        if self.config.stack_check or self.config.indirect_check:
            program.compile_stats["checks"] = dict(self.check_stats)
            registry = get_registry()
            for key, value in self.check_stats.items():
                if value:
                    registry.counter(f"codegen.checks.{key}").inc(value)
        program.layout()
        program.initial_image = bytes(self.module.initial_memory())
        program.heap_base = self.module.heap_base
        return program

    # -- §6.4: stack-check elision planning -----------------------------------
    #
    # The stack check guards a 4096-byte redzone below ``__stack_limit``
    # (the limit sits that far above the end of guest linear memory).  A
    # function's check may be dropped when every call chain rooted at it
    # provably writes less than the redzone before reaching either a
    # leaf or the next *checked* function's own check — then any true
    # overflow is still caught by a check downstream (or cannot happen
    # at all), just like the paper's §6.4 "spend more time on hot code"
    # engines.  Recursion (an SCC in the unchecked call graph) has
    # unbounded depth and always keeps its checks.

    _STACK_BUDGET = 4096 - 64

    def _stack_arg_bytes(self, args) -> int:
        abi = self.config.abi
        int_idx = float_idx = stack = 0
        for arg in args:
            if arg.ty.is_float:
                if float_idx < len(abi.float_args):
                    float_idx += 1
                else:
                    stack += 8
            else:
                if int_idx < len(abi.int_args):
                    int_idx += 1
                else:
                    stack += 8
        return stack

    def _call_sites(self, func):
        """(kind, callees, stack_arg_bytes) per call site: ``kind`` is
        'extern' (hostcall — runs in the host, no machine-stack
        descent) or 'call'; ``callees`` the possible machine callees."""
        sites = []
        externs = self.module.externs
        for block in func.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, Call):
                    kind = "extern" if instr.callee in externs else "call"
                    sites.append((kind, (instr.callee,),
                                  self._stack_arg_bytes(instr.args)))
                elif isinstance(instr, CallIndirect):
                    names = self._possible_targets(instr)
                    sites.append(("call", names,
                                  self._stack_arg_bytes(instr.args)))
        return sites

    def _possible_targets(self, instr: CallIndirect):
        """Table entries a ``call_indirect`` can reach, narrowed by the
        proved index interval when there is one."""
        entries = list(self.module.table)
        fact = getattr(instr, "target_fact", None)
        if fact is not None and 0 <= fact.lo and fact.hi < len(entries):
            entries = entries[fact.lo:fact.hi + 1]
        return tuple(n for n in entries if n)

    def _plan_stack_elision(self, lowerings) -> None:
        if not (self.config.stack_check and self.elide):
            return
        budget = self._STACK_BUDGET
        by_name = {fl.func.name: fl for fl in lowerings}
        sites = {name: self._call_sites(fl.func)
                 for name, fl in by_name.items()}
        # Frame bytes a function may write below its entry RSP: the rbp
        # push, callee-saved pushes, and the spill area.
        depth = {name: 8 + 8 * len(fl.pushed) + fl._frame_bytes()
                 for name, fl in by_name.items()}
        # What a *checked* callee writes before its own check runs.
        prewrite = {name: 8 + 8 * len(fl.pushed)
                    for name, fl in by_name.items()}
        checked: set = set()
        INF = float("inf")

        def reach(name, state):
            """Max bytes written below ``name``'s entry while no check
            runs, assuming ``name`` itself is unchecked."""
            cached = state.get(name)
            if cached is not None:
                return cached
            state[name] = INF        # recursion -> unbounded
            worst = 0
            for kind, callees, arg_bytes in sites[name]:
                if kind == "extern":
                    worst = max(worst, arg_bytes)
                    continue
                for callee in callees:
                    fl = by_name.get(callee)
                    if fl is None:
                        worst = INF
                        continue
                    down = prewrite[callee] if callee in checked \
                        else reach(callee, state)
                    worst = max(worst, arg_bytes + 8 + down)
            result = depth[name] + worst
            state[name] = result
            return result

        while True:
            state: dict = {}
            demoted = {name for name in by_name
                       if name not in checked
                       and reach(name, state) > budget}
            if not demoted:
                break
            checked |= demoted
        # Checked callers must not launder over-budget unchecked chains
        # below their verified point either.
        while True:
            state = {}
            demoted = set()
            for name in checked:
                for kind, callees, arg_bytes in sites[name]:
                    if kind == "extern":
                        continue
                    for callee in callees:
                        if callee in checked or callee not in by_name:
                            continue
                        if arg_bytes + 8 + reach(callee, state) > budget:
                            demoted.add(callee)
            if not demoted:
                break
            checked |= demoted
        for name, fl in by_name.items():
            fl.elide_stack = name not in checked

    def _build_tables(self) -> None:
        entries = []
        for name in self.module.table:
            if name:
                ftype = self.module.functions[name].ftype
                sig_id = self.sig_ids.setdefault(ftype,
                                                 len(self.sig_ids) + 1)
                entries.append((name, sig_id))
            else:
                entries.append((None, 0))
        self.table_len = len(entries)
        if not entries:
            return
        self.table_addr_base = self.program.add_call_table(
            [(n, 0) for n, _ in entries], with_sig=False)
        if self.config.indirect_check:
            import struct
            sig_blob = b"".join(struct.pack("<i", sig)
                                for _, sig in entries)
            self.table_sig_base = self.program.add_rodata(sig_blob, align=4)

    def sig_id_of(self, ftype) -> int:
        return self.sig_ids.setdefault(ftype, len(self.sig_ids) + 1)


class FunctionLowering:
    def __init__(self, ml: ModuleLowering, func: Function):
        self.ml = ml
        self.cfg = ml.config
        self.func = func
        self.out = ml.program.new_function(func.name)
        self.info = None
        self.assignment = None
        self.order = []
        self.use_counts = {}
        self.slot_base = 0
        self.pushed = []
        self._needs_ind_trap = False
        self._needs_stack_trap = False
        #: Set by the module-level planner when every call chain below
        #: this function provably fits the stack redzone.
        self.elide_stack = False

    # -- emission shorthands ------------------------------------------------------

    def emit(self, op, a=None, b=None, cond=None, size=8, comment=""):
        return self.out.emit(
            Instr(op, a, b, cond=cond, size=size, comment=comment))

    def label(self, name: str):
        self.out.label(name)

    # -- driver -------------------------------------------------------------------

    def run(self) -> None:
        self.prepare()
        self.emit_body()

    def prepare(self) -> None:
        """Phase 1: shape the CFG and allocate registers.  After this the
        frame layout (``pushed``, spill slots) is known, which is what
        the module's stack-elision planner needs before any body is
        emitted."""
        func = self.func
        cfg = self.cfg
        if cfg.loop_entry_jumps:
            _insert_loop_entry_jumps(func)

        self.use_counts = _use_counts(func)
        with span("regalloc", function=func.name,
                  allocator=cfg.allocator):
            self.info = LivenessInfo(func)
            if cfg.allocator == "graph":
                self.assignment = graph_coloring(
                    self.info, cfg.gprs, cfg.xmms, cfg.callee_saved)
            else:
                self.assignment = linear_scan(
                    self.info, cfg.gprs, cfg.xmms, cfg.callee_saved)
            if verify_ir_enabled():
                check_assignment(func, self.assignment, cfg.allocator)
        self.order = [b.label for b in func.block_order()]

        self.pushed = sorted(self.assignment.used_callee_saved)
        self.slot_base = 8 * len(self.pushed)

    def emit_body(self) -> None:
        """Phase 2: emit prologue, blocks, epilogue, and trap stubs."""
        func = self.func
        self._prologue()

        order = self.order
        for pos, block_label in enumerate(order):
            block = func.blocks[block_label]
            next_label = order[pos + 1] if pos + 1 < len(order) else None
            self.label(block_label)
            self._lower_block(block, next_label)

        self.label(".epilogue")
        self._epilogue()
        if self._needs_stack_trap:
            self.label(".stack_trap")
            self.emit("trap", "stack overflow")
        if self._needs_ind_trap:
            self.label(".ind_trap")
            self.emit("trap", "indirect call check failed")

    # -- frame ---------------------------------------------------------------------

    def _frame_bytes(self) -> int:
        size = 8 * self.assignment.num_slots
        return (size + 15) & ~15

    def _prologue(self) -> None:
        self.emit("push", Reg(RBP))
        self.emit("mov", Reg(RBP), Reg(RSP))
        for reg in self.pushed:
            self.emit("push", Reg(reg))
        frame = self._frame_bytes()
        if frame:
            self.emit("sub", Reg(RSP), Imm(frame))
        if self.cfg.stack_check:
            self.ml.check_stats["stack_total"] += 1
            if self.elide_stack:
                self.ml.check_stats["stack_elided"] += 1
            else:
                limit = self.ml.program.instance_globals["__stack_limit"]
                cmp = self.emit("cmp", Reg(RSP), Mem(disp=limit, size=8),
                                comment="stack overflow check")
                jcc = self.emit("jcc", Label(".stack_trap"), cond="be")
                cmp.check = jcc.check = "stack"
                self._needs_stack_trap = True

        # Bind incoming arguments.
        abi = self.cfg.abi
        moves = []   # (dst_loc, src_operand, is_float)
        int_idx = float_idx = 0
        stack_idx = 0
        for reg in self.func.params:
            is_float = reg.ty.is_float
            if is_float:
                if float_idx < len(abi.float_args):
                    src = Reg(abi.float_args[float_idx])
                    float_idx += 1
                else:
                    src = Mem(base=RBP, disp=16 + 8 * stack_idx, size=8)
                    stack_idx += 1
            else:
                if int_idx < len(abi.int_args):
                    src = Reg(abi.int_args[int_idx])
                    int_idx += 1
                else:
                    src = Mem(base=RBP, disp=16 + 8 * stack_idx, size=8)
                    stack_idx += 1
            moves.append((self._loc(reg), src, is_float))

        # Spill-slot destinations first (they only read ABI regs).
        for loc, src, is_float in moves:
            if loc[0] == "spill":
                dst_mem = self._slot_mem(loc[1])
                if is_float:
                    if isinstance(src, Mem):
                        self.emit("movsd", Reg(self._xscratch(0)), src)
                        self.emit("movsd", dst_mem, Reg(self._xscratch(0)))
                    else:
                        self.emit("movsd", dst_mem, src)
                else:
                    if isinstance(src, Mem):
                        self.emit("mov", Reg(self.cfg.scratch_gprs[0]), src)
                        self.emit("mov", dst_mem,
                                  Reg(self.cfg.scratch_gprs[0]))
                    else:
                        self.emit("mov", dst_mem, src)
        reg_moves = [(loc[1], src, is_float)
                     for loc, src, is_float in moves if loc[0] == "reg"]
        self._parallel_moves(reg_moves)

    def _epilogue(self) -> None:
        if self.pushed:
            self.emit("lea", Reg(RSP),
                      Mem(base=RBP, disp=-8 * len(self.pushed)))
            for reg in reversed(self.pushed):
                self.emit("pop", Reg(reg))
        elif self._frame_bytes():
            self.emit("mov", Reg(RSP), Reg(RBP))
        self.emit("pop", Reg(RBP))
        self.emit("ret")

    # -- locations -------------------------------------------------------------------

    def _loc(self, vreg: VReg):
        return self.assignment.location(vreg.id)

    def _slot_mem(self, slot: int, size: int = 8) -> Mem:
        return Mem(base=RBP, disp=-(self.slot_base + 8 * (slot + 1)),
                   size=size, spill=True)

    def _xscratch(self, idx: int) -> int:
        return self.cfg.scratch_xmms[idx]

    def _to_gpr(self, operand, scratch_idx: int = 0, size: int = 8) -> int:
        """Materialize an integer operand into a register; returns reg."""
        if isinstance(operand, Const):
            scratch = self.cfg.scratch_gprs[scratch_idx]
            self.emit("mov", Reg(scratch, size), Imm(int(operand.value)),
                      size=size)
            return scratch
        loc = self._loc(operand)
        if loc[0] == "reg":
            return loc[1]
        scratch = self.cfg.scratch_gprs[scratch_idx]
        self.emit("mov", Reg(scratch), self._slot_mem(loc[1]))
        return scratch

    def _gpr_src(self, operand, scratch_idx: int = 0, size: int = 8):
        """An ALU source operand: Imm, Reg, or (if folding) spill Mem."""
        if isinstance(operand, Const):
            value = int(operand.value)
            if -(1 << 31) <= value < (1 << 31):
                return Imm(value)
            return Reg(self._to_gpr(operand, scratch_idx, size), size)
        loc = self._loc(operand)
        if loc[0] == "reg":
            return Reg(loc[1], size)
        if self.cfg.fold_mem_ops:
            return self._slot_mem(loc[1])
        return Reg(self._to_gpr(operand, scratch_idx, size), size)

    def _to_xmm(self, operand, scratch_idx: int = 0) -> int:
        if isinstance(operand, Const):
            scratch = self._xscratch(scratch_idx)
            pool = self.ml.program.f64_constant(float(operand.value))
            self.emit("movsd", Reg(scratch), Mem(disp=pool, size=8))
            return scratch
        loc = self._loc(operand)
        if loc[0] == "reg":
            return loc[1]
        scratch = self._xscratch(scratch_idx)
        self.emit("movsd", Reg(scratch), self._slot_mem(loc[1]))
        return scratch

    def _xmm_src(self, operand, scratch_idx: int = 0):
        if isinstance(operand, Const):
            pool = self.ml.program.f64_constant(float(operand.value))
            return Mem(disp=pool, size=8)
        loc = self._loc(operand)
        if loc[0] == "reg":
            return Reg(loc[1])
        if self.cfg.fold_mem_ops:
            return self._slot_mem(loc[1])
        return Reg(self._to_xmm(operand, scratch_idx))

    def _int_target(self, dst: VReg) -> int:
        loc = self._loc(dst)
        return loc[1] if loc[0] == "reg" else self.cfg.scratch_gprs[0]

    def _xmm_target(self, dst: VReg) -> int:
        loc = self._loc(dst)
        return loc[1] if loc[0] == "reg" else self._xscratch(0)

    def _commit_int(self, dst: VReg, reg: int) -> None:
        loc = self._loc(dst)
        if loc[0] == "spill":
            self.emit("mov", self._slot_mem(loc[1]), Reg(reg))
        elif loc[1] != reg:
            self.emit("mov", Reg(loc[1]), Reg(reg))

    def _commit_xmm(self, dst: VReg, reg: int) -> None:
        loc = self._loc(dst)
        if loc[0] == "spill":
            self.emit("movsd", self._slot_mem(loc[1]), Reg(reg))
        elif loc[1] != reg:
            self.emit("movsd", Reg(loc[1]), Reg(reg))

    def _size_of(self, ty: Type) -> int:
        return 4 if ty is Type.I32 else 8

    # -- memory operands ----------------------------------------------------------------

    def _mem_operand(self, base, offset: int, index, scale: int,
                     size: int, scratch_idx: int = 0) -> Mem:
        """Build the x86 memory operand for a guest access."""
        cfg = self.cfg
        heap = cfg.heap_base
        idx_reg = None
        if index is not None:
            idx_reg = self._to_gpr(index, 1, 4)

        if isinstance(base, Const):
            disp = int(base.value) + offset
            if cfg.heap_mask and idx_reg is not None:
                idx_reg = self._masked_copy(idx_reg, scratch_idx)
            return Mem(base=heap, index=idx_reg, scale=scale, disp=disp,
                       size=size)

        base_reg = self._to_gpr(base, scratch_idx, 4)
        if cfg.heap_mask:
            base_reg = self._masked_copy(base_reg, scratch_idx)
        if heap is not None:
            # JIT form: [heap_base + ptr32 (+ nothing else)]; a scaled
            # index would need an lea first, but the wasm pipeline never
            # produces scaled IR accesses anyway.
            if idx_reg is not None:
                raise CompileError("scaled access reached a JIT backend")
            return Mem(base=heap, index=base_reg, scale=1, disp=offset,
                       size=size)
        return Mem(base=base_reg, index=idx_reg, scale=scale, disp=offset,
                   size=size)

    def _masked_copy(self, reg: int, scratch_idx: int) -> int:
        """asm.js heap masking: HEAP32[(addr & MASK) >> 2].

        The mask is the heap size (a power of two) minus one, so in-bounds
        addresses pass through unchanged — the cost is the two extra
        instructions per access, which is the point being modeled.
        """
        mask = _next_pow2(self.ml.module.memory_size) - 1
        scratch = self.cfg.scratch_gprs[scratch_idx]
        if scratch == reg:
            self.emit("and", Reg(scratch, 4), Imm(mask), size=4)
            return scratch
        self.emit("mov", Reg(scratch, 4), Reg(reg, 4), size=4)
        self.emit("and", Reg(scratch, 4), Imm(mask), size=4)
        return scratch

    # -- blocks ---------------------------------------------------------------------------

    def _lower_block(self, block, next_label) -> None:
        instrs = block.instrs
        term = block.term

        # Compare/branch fusion: the block ends with `c = cmp; br c` and c
        # is used nowhere else.
        fused = None
        if (self.cfg.fuse_cmp_branch and isinstance(term, CondBr)
                and instrs and isinstance(instrs[-1], BinOp)
                and instrs[-1].op in CMP_OPS
                and isinstance(term.cond, VReg)
                and instrs[-1].dst == term.cond
                and self.use_counts.get(term.cond.id, 0) == 1):
            fused = instrs[-1]
            instrs = instrs[:-1]

        oracle = self.ml.oracle
        for instr in instrs:
            mark = len(self.out.raw)
            self._lower_instr(instr)
            if oracle:
                self._attach_assert(instr, mark)

        if isinstance(term, Jump):
            forced = block.label.startswith("jentry_")
            if term.target != next_label or forced:
                self.emit("jmp", Label(term.target))
        elif isinstance(term, CondBr):
            if fused is not None:
                cc = self._emit_compare(fused)
            else:
                reg = self._to_gpr(term.cond, 0, 4)
                self.emit("test", Reg(reg, 4), Reg(reg, 4), size=4)
                cc = "ne"
            if term.if_false == next_label:
                self.emit("jcc", Label(term.if_true), cond=cc)
            elif term.if_true == next_label:
                self.emit("jcc", Label(term.if_false), cond=_invert(cc))
            else:
                self.emit("jcc", Label(term.if_true), cond=cc)
                self.emit("jmp", Label(term.if_false))
        elif isinstance(term, Return):
            if term.value is not None:
                if term.value.ty.is_float:
                    src = self._xmm_src(term.value)
                    self.emit("movsd", Reg(XMM0), src)
                else:
                    size = self._size_of(term.value.ty)
                    src = self._gpr_src(term.value, 0, size)
                    self.emit("mov", Reg(RAX, size), src, size=size)
            if next_label is not None:
                self.emit("jmp", Label(".epilogue"))
        elif isinstance(term, Trap):
            self.emit("trap", term.message)
        else:  # pragma: no cover
            raise CompileError(f"bad terminator {term!r}")

    def _attach_assert(self, instr, mark: int) -> None:
        """Pin the ``--check-ranges`` oracle fact onto the last x86
        instruction lowered for ``instr``, for the machine to assert the
        committed register value right after it retires.  Skipped when
        nothing was emitted (the value did not move) or the tail is a
        label/branch — an assertion there would fire on unrelated
        control-flow paths."""
        fact = getattr(instr, "range_fact", None)
        if fact is None:
            return
        defs = instr.defs()
        if not defs or defs[0].ty.is_float:
            return
        loc = self._loc(defs[0])
        if loc[0] != "reg":
            return
        raw = self.out.raw
        if len(raw) <= mark:
            return
        last = raw[-1]
        if last.op == "label" or last.op in BRANCH_OPS:
            return
        last.assert_range = (loc[1], fact)

    def _emit_compare(self, binop: BinOp) -> str:
        """Emit cmp/ucomisd for a comparison; returns the condition code."""
        operand_ty = (binop.lhs.ty if isinstance(binop.lhs, (VReg, Const))
                      else Type.I32)
        if operand_ty.is_float:
            a = self._to_xmm(binop.lhs, 0)
            b = self._xmm_src(binop.rhs, 1)
            self.emit("ucomisd", Reg(a), b)
            return _FLOAT_CC[binop.op]
        size = self._size_of(operand_ty)
        a = self._to_gpr(binop.lhs, 0, size)
        b = self._gpr_src(binop.rhs, 1, size)
        self.emit("cmp", Reg(a, size), b, size=size)
        return _INT_CC[binop.op]

    # -- instructions ----------------------------------------------------------------------

    def _lower_instr(self, instr) -> None:
        if isinstance(instr, Move):
            self._lower_move(instr)
        elif isinstance(instr, BinOp):
            self._lower_binop(instr)
        elif isinstance(instr, UnOp):
            self._lower_unop(instr)
        elif isinstance(instr, Load):
            self._lower_load(instr)
        elif isinstance(instr, Store):
            self._lower_store(instr)
        elif isinstance(instr, MemBinOp):
            self._lower_membinop(instr)
        elif isinstance(instr, Lea):
            self._lower_lea(instr)
        elif isinstance(instr, GetGlobal):
            self._lower_getglobal(instr)
        elif isinstance(instr, SetGlobal):
            self._lower_setglobal(instr)
        elif isinstance(instr, Call):
            self._lower_call(instr)
        elif isinstance(instr, CallIndirect):
            self._lower_call_indirect(instr)
        else:  # pragma: no cover
            raise CompileError(f"cannot lower {instr!r}")

    def _lower_move(self, instr: Move) -> None:
        dst = instr.dst
        if dst.ty.is_float:
            loc = self._loc(dst)
            src = self._xmm_src(instr.src, 0)
            if loc[0] == "reg":
                if not (isinstance(src, Reg) and src.reg == loc[1]):
                    self.emit("movsd", Reg(loc[1]), src)
            else:
                if isinstance(src, Mem):
                    scratch = self._xscratch(0)
                    self.emit("movsd", Reg(scratch), src)
                    src = Reg(scratch)
                self.emit("movsd", self._slot_mem(loc[1]), src)
            return
        size = self._size_of(dst.ty)
        loc = self._loc(dst)
        src = self._gpr_src(instr.src, 0, size)
        if loc[0] == "reg":
            if not (isinstance(src, Reg) and src.reg == loc[1]):
                self.emit("mov", Reg(loc[1], size), src, size=size)
        else:
            # Spill slots are always written as full zero-extended
            # 8-byte values so that reloads (which are 8 bytes wide)
            # never see stale upper bits.
            if isinstance(src, Mem):
                scratch = self.cfg.scratch_gprs[0]
                self.emit("mov", Reg(scratch), src)
                src = Reg(scratch)
            elif isinstance(src, Imm):
                src = Imm(int(src.value) & 0xFFFFFFFF) if size == 4 else src
            elif isinstance(src, Reg):
                src = Reg(src.reg)
            self.emit("mov", self._slot_mem(loc[1]), src)

    def _lower_binop(self, instr: BinOp) -> None:
        op = instr.op
        if instr.dst.ty.is_float and op not in CMP_OPS:
            self._lower_float_binop(instr)
            return
        operand_ty = (instr.lhs.ty if isinstance(instr.lhs, (VReg, Const))
                      else Type.I32)
        if op in CMP_OPS:
            if operand_ty.is_float:
                a = self._to_xmm(instr.lhs, 0)
                b = self._xmm_src(instr.rhs, 1)
                self.emit("ucomisd", Reg(a), b)
                cc = _FLOAT_CC[op]
            else:
                size = self._size_of(operand_ty)
                a = self._to_gpr(instr.lhs, 0, size)
                b = self._gpr_src(instr.rhs, 1, size)
                self.emit("cmp", Reg(a, size), b, size=size)
                cc = _INT_CC[op]
            target = self._int_target(instr.dst)
            self.emit("setcc", Reg(target), cond=cc)
            self._commit_int(instr.dst, target)
            return
        if op in ("div_s", "div_u", "rem_s", "rem_u"):
            self._lower_div(instr)
            return
        if op in _SHIFTS:
            self._lower_shift(instr)
            return
        if op in ("rotl", "rotr"):
            raise CompileError(f"{op} not supported by the lowering engine")

        size = self._size_of(instr.dst.ty)
        a, b = instr.lhs, instr.rhs
        target = self._int_target(instr.dst)

        b_in_target = (isinstance(b, VReg)
                       and self._loc(b) == ("reg", target))
        if b_in_target:
            if op in COMMUTATIVE_OPS:
                a, b = b, a
            else:
                scratch1 = self.cfg.scratch_gprs[1]
                self.emit("mov", Reg(scratch1, size), Reg(target, size),
                          size=size)
                b = _PhysReg(scratch1)
        a_in_target = (isinstance(a, VReg)
                       and self._loc(a) == ("reg", target))
        if not a_in_target:
            src = self._gpr_src(a, 0, size)
            self.emit("mov", Reg(target, size), src, size=size)
        if isinstance(b, _PhysReg):
            b_src = Reg(b.reg, size)
        else:
            b_src = self._gpr_src(b, 1, size)
        self.emit(_ALU[op], Reg(target, size), b_src, size=size)
        self._commit_int(instr.dst, target)

    def _lower_float_binop(self, instr: BinOp) -> None:
        op = instr.op
        if op == "copysign":
            raise CompileError("copysign not supported by the lowering "
                               "engine")
        a, b = instr.lhs, instr.rhs
        target = self._xmm_target(instr.dst)
        b_in_target = (isinstance(b, VReg)
                       and self._loc(b) == ("reg", target))
        if b_in_target:
            if op in COMMUTATIVE_OPS:
                a, b = b, a
            else:
                scratch = self._xscratch(1)
                self.emit("movsd", Reg(scratch), Reg(target))
                b = _PhysReg(scratch)
        a_in_target = (isinstance(a, VReg)
                       and self._loc(a) == ("reg", target))
        if not a_in_target:
            src = self._xmm_src(a, 0)
            self.emit("movsd", Reg(target), src)
        if isinstance(b, _PhysReg):
            b_src = Reg(b.reg)
        else:
            b_src = self._xmm_src(b, 1)
        self.emit(_FALU[op], Reg(target), b_src)
        self._commit_xmm(instr.dst, target)

    def _lower_div(self, instr: BinOp) -> None:
        size = self._size_of(instr.dst.ty)
        signed_op = instr.op.endswith("_s")
        a_src = self._gpr_src(instr.lhs, 0, size)
        self.emit("mov", Reg(RAX, size), a_src, size=size)
        if signed_op:
            self.emit("cdq" if size == 4 else "cqo")
        else:
            self.emit("xor", Reg(RDX, size), Reg(RDX, size), size=size)
        divisor = instr.rhs
        if isinstance(divisor, Const):
            d_reg = self._to_gpr(divisor, 1, size)
        else:
            loc = self._loc(divisor)
            d_reg = loc[1] if loc[0] == "reg" \
                else self._to_gpr(divisor, 1, size)
        self.emit("idiv" if signed_op else "div", Reg(d_reg, size),
                  size=size)
        result = RAX if instr.op.startswith("div") else RDX
        target = self._int_target(instr.dst)
        if target != result:
            self.emit("mov", Reg(target, size), Reg(result, size),
                      size=size)
            self._commit_int(instr.dst, target)
        else:
            self._commit_int(instr.dst, target)

    def _lower_shift(self, instr: BinOp) -> None:
        size = self._size_of(instr.dst.ty)
        target = self._int_target(instr.dst)
        a = instr.lhs
        a_in_target = (isinstance(a, VReg)
                       and self._loc(a) == ("reg", target))
        count = instr.rhs
        if isinstance(count, VReg):
            count_src = self._gpr_src(count, 1, 4)
            self.emit("mov", Reg(RCX, 4), count_src, size=4)
        if not a_in_target:
            self.emit("mov", Reg(target, size), self._gpr_src(a, 0, size),
                      size=size)
        if isinstance(count, Const):
            self.emit(_SHIFTS[instr.op], Reg(target, size),
                      Imm(int(count.value) & (size * 8 - 1)), size=size)
        else:
            self.emit(_SHIFTS[instr.op], Reg(target, size), Reg(RCX, 1),
                      size=size)
        self._commit_int(instr.dst, target)

    def _lower_unop(self, instr: UnOp) -> None:
        op = instr.op
        dst = instr.dst
        src = instr.src
        if op == "eqz":
            size = self._size_of(src.ty if isinstance(src, (VReg, Const))
                                 else Type.I32)
            reg = self._to_gpr(src, 0, size)
            self.emit("test", Reg(reg, size), Reg(reg, size), size=size)
            target = self._int_target(dst)
            self.emit("setcc", Reg(target), cond="e")
            self._commit_int(dst, target)
        elif op == "i64_extend_i32_s":
            reg = self._to_gpr(src, 0, 4)
            target = self._int_target(dst)
            self.emit("movsx", Reg(target, 8), Reg(reg, 4), size=8)
            self._commit_int(dst, target)
        elif op == "i64_extend_i32_u":
            reg = self._to_gpr(src, 0, 4)
            target = self._int_target(dst)
            self.emit("mov", Reg(target, 4), Reg(reg, 4), size=4)
            self._commit_int(dst, target)
        elif op == "i32_wrap_i64":
            reg = self._to_gpr(src, 0, 8)
            target = self._int_target(dst)
            self.emit("mov", Reg(target, 4), Reg(reg, 4), size=4)
            self._commit_int(dst, target)
        elif op in ("f64_convert_i32_s", "f64_convert_i64_s",
                    "f64_convert_i32_u", "f64_convert_i64_u"):
            size = 4 if "i32" in op else 8
            reg = self._to_gpr(src, 0, size)
            target = self._xmm_target(dst)
            self.emit("cvtsi2sd", Reg(target), Reg(reg, size), size=size)
            self._commit_xmm(dst, target)
        elif op in ("i32_trunc_f64_s", "i64_trunc_f64_s",
                    "i32_trunc_f64_u", "i64_trunc_f64_u"):
            size = 4 if op.startswith("i32") else 8
            xreg = self._to_xmm(src, 0)
            target = self._int_target(dst)
            self.emit("cvttsd2si", Reg(target, size), Reg(xreg), size=size)
            self._commit_int(dst, target)
        elif op == "neg":
            xreg = self._xmm_target(dst)
            src_x = self._xmm_src(src, 1)
            if not (isinstance(src_x, Reg) and src_x.reg == xreg):
                self.emit("movsd", Reg(xreg), src_x)
            mask = self.ml.program.add_rodata(
                _SIGN_MASK.to_bytes(8, "little"), align=16)
            self.emit("xorpd", Reg(xreg), Mem(disp=mask, size=8))
            self._commit_xmm(dst, xreg)
        elif op == "abs":
            xreg = self._xmm_target(dst)
            src_x = self._xmm_src(src, 1)
            if not (isinstance(src_x, Reg) and src_x.reg == xreg):
                self.emit("movsd", Reg(xreg), src_x)
            mask = self.ml.program.add_rodata(
                _ABS_MASK.to_bytes(8, "little"), align=16)
            self.emit("andpd", Reg(xreg), Mem(disp=mask, size=8))
            self._commit_xmm(dst, xreg)
        elif op == "sqrt":
            target = self._xmm_target(dst)
            self.emit("sqrtsd", Reg(target), self._xmm_src(src, 1))
            self._commit_xmm(dst, target)
        else:
            raise CompileError(f"unary op {op} not supported by the "
                               f"lowering engine")

    def _lower_load(self, instr: Load) -> None:
        dst = instr.dst
        mem = self._mem_operand(instr.base, instr.offset, instr.index,
                                instr.scale, instr.size)
        if dst.ty.is_float:
            target = self._xmm_target(dst)
            self.emit("movsd", Reg(target), mem)
            self._commit_xmm(dst, target)
            return
        size = self._size_of(dst.ty)
        target = self._int_target(dst)
        if instr.size == size:
            self.emit("mov", Reg(target, size), mem, size=size)
        elif instr.signed:
            self.emit("movsx", Reg(target, size), mem, size=size)
        else:
            self.emit("movzx", Reg(target, size), mem, size=size)
        self._commit_int(dst, target)

    def _value_reg_avoiding(self, operand, mem: Mem, size: int = 8) -> int:
        """Materialize an integer operand into a register that does not
        clobber the registers the memory operand reads.  Spilled base +
        spilled index can occupy both shuttle scratches, so ``rax`` (never
        allocated; free outside div/call sequences) is the third choice."""
        if isinstance(operand, VReg):
            loc = self._loc(operand)
            if loc[0] == "reg":
                return loc[1]
        used = {mem.base, mem.index}
        for candidate in (self.cfg.scratch_gprs[1],
                          self.cfg.scratch_gprs[0], RAX):
            if candidate not in used:
                break
        if isinstance(operand, Const):
            self.emit("mov", Reg(candidate), Imm(int(operand.value)))
        else:
            self.emit("mov", Reg(candidate),
                      self._slot_mem(self._loc(operand)[1]))
        return candidate

    def _lower_store(self, instr: Store) -> None:
        mem = self._mem_operand(instr.base, instr.offset, instr.index,
                                instr.scale, instr.size)
        src = instr.src
        if isinstance(src, (VReg, Const)) and src.ty.is_float:
            xreg = self._to_xmm(src, 1)
            self.emit("movsd", mem, Reg(xreg))
            return
        if isinstance(src, Const):
            value = int(src.value)
            if -(1 << 31) <= value < (1 << 31):
                self.emit("mov", mem, Imm(value), size=instr.size)
                return
        reg = self._value_reg_avoiding(src, mem)
        self.emit("mov", mem, Reg(reg, instr.size), size=instr.size)

    def _lower_membinop(self, instr: MemBinOp) -> None:
        mem = self._mem_operand(instr.base, instr.offset, instr.index,
                                instr.scale, instr.size)
        src = instr.src
        if isinstance(src, (VReg, Const)) and src.ty.is_float:
            raise CompileError("float MemBinOp is not a valid x86 form")
        size = instr.size
        if isinstance(src, Const):
            value = int(src.value)
            if -(1 << 31) <= value < (1 << 31):
                self.emit(_ALU[instr.op], mem, Imm(value), size=size)
                return
        reg = self._value_reg_avoiding(src, mem, size)
        self.emit(_ALU[instr.op], mem, Reg(reg, size), size=size)

    def _lower_lea(self, instr: Lea) -> None:
        target = self._int_target(instr.dst)
        disp = instr.disp
        base_reg = None
        if isinstance(instr.base, Const):
            disp += int(instr.base.value)
        else:
            base_reg = self._to_gpr(instr.base, 0, 4)
        idx_reg = None
        if instr.index is not None:
            idx_reg = self._to_gpr(instr.index, 1, 4)
        self.emit("lea", Reg(target, 4),
                  Mem(base=base_reg, index=idx_reg, scale=instr.scale,
                      disp=disp), size=4)
        self._commit_int(instr.dst, target)

    def _lower_getglobal(self, instr: GetGlobal) -> None:
        addr = self.ml.program.instance_globals[instr.name]
        dst = instr.dst
        if dst.ty.is_float:
            target = self._xmm_target(dst)
            self.emit("movsd", Reg(target), Mem(disp=addr, size=8))
            self._commit_xmm(dst, target)
            return
        size = self._size_of(dst.ty)
        target = self._int_target(dst)
        self.emit("mov", Reg(target, size), Mem(disp=addr, size=size),
                  size=size)
        self._commit_int(dst, target)

    def _lower_setglobal(self, instr: SetGlobal) -> None:
        addr = self.ml.program.instance_globals[instr.name]
        src = instr.src
        if isinstance(src, (VReg, Const)) and src.ty.is_float:
            xreg = self._to_xmm(src, 1)
            self.emit("movsd", Mem(disp=addr, size=8), Reg(xreg))
            return
        size = self._size_of(src.ty if isinstance(src, (VReg, Const))
                             else Type.I32)
        if isinstance(src, Const):
            self.emit("mov", Mem(disp=addr, size=size),
                      Imm(int(src.value)), size=size)
            return
        reg = self._to_gpr(src, 1, size)
        self.emit("mov", Mem(disp=addr, size=size), Reg(reg, size),
                  size=size)

    # -- calls -----------------------------------------------------------------------------

    def _arg_src(self, arg, is_float: bool):
        """A call-argument source operand that emits no code of its own:
        Imm, Reg, or a spill-slot/constant-pool Mem.  Deferring the reads
        keeps argument marshalling from clobbering the scratch registers
        while other arguments are still pending."""
        if isinstance(arg, Const):
            if is_float:
                pool = self.ml.program.f64_constant(float(arg.value))
                return Mem(disp=pool, size=8)
            value = int(arg.value)
            if arg.ty is Type.I32:
                value &= 0xFFFFFFFF  # keep i32 registers zero-extended
            return Imm(value)
        loc = self._loc(arg)
        if loc[0] == "reg":
            return Reg(loc[1])
        return self._slot_mem(loc[1])

    def _setup_args(self, args) -> int:
        """Marshal call arguments; returns bytes pushed for stack args."""
        abi = self.cfg.abi
        int_idx = float_idx = 0
        reg_moves = []
        stack_args = []
        for arg in args:
            is_float = arg.ty.is_float
            if is_float:
                if float_idx < len(abi.float_args):
                    reg_moves.append((abi.float_args[float_idx],
                                      self._arg_src(arg, True), True))
                    float_idx += 1
                else:
                    stack_args.append((arg, True))
            else:
                if int_idx < len(abi.int_args):
                    reg_moves.append((abi.int_args[int_idx],
                                      self._arg_src(arg, False), False))
                    int_idx += 1
                else:
                    stack_args.append((arg, False))

        pushed = 0
        for arg, is_float in reversed(stack_args):
            if is_float:
                xreg = self._to_xmm(arg, 1)
                self.emit("sub", Reg(RSP), Imm(8))
                self.emit("movsd", Mem(base=RSP, size=8), Reg(xreg))
            else:
                reg = self._to_gpr(arg, 1, 8)
                self.emit("push", Reg(reg))
            pushed += 8

        self._parallel_moves(reg_moves)
        return pushed

    def _parallel_moves(self, moves) -> None:
        """Emit register moves {dst <- src} that may overlap, using the
        second scratch register to break cycles."""
        pending = [(dst, src, is_float) for dst, src, is_float in moves
                   if not (isinstance(src, Reg) and src.reg == dst)]
        while pending:
            progressed = False
            for entry in list(pending):
                dst, src, is_float = entry
                blocked = any(
                    isinstance(other_src, Reg) and other_src.reg == dst
                    for _odst, other_src, _f in pending
                    if (_odst, other_src, _f) != entry)
                if not blocked:
                    self.emit("movsd" if is_float else "mov",
                              Reg(dst), src)
                    pending.remove(entry)
                    progressed = True
                    break
            if progressed:
                continue
            # Cycle: all pending are reg->reg.  Park one source in scratch.
            dst, src, is_float = pending[0]
            scratch = self._xscratch(1) if is_float \
                else self.cfg.scratch_gprs[1]
            self.emit("movsd" if is_float else "mov", Reg(scratch), src)
            pending[0] = (dst, Reg(scratch), is_float)
            for i, (odst, osrc, ofl) in enumerate(pending[1:], start=1):
                if isinstance(osrc, Reg) and osrc.reg == src.reg:
                    pending[i] = (odst, Reg(scratch), ofl)

    def _finish_call(self, instr, pushed: int) -> None:
        if pushed:
            self.emit("add", Reg(RSP), Imm(pushed))
        dst = instr.dst
        if dst is None:
            return
        if dst.ty.is_float:
            self._commit_xmm_from(dst, XMM0)
        else:
            size = self._size_of(dst.ty)
            loc = self._loc(dst)
            if loc[0] == "reg":
                self.emit("mov", Reg(loc[1], size), Reg(RAX, size),
                          size=size)
            else:
                self.emit("mov", self._slot_mem(loc[1]), Reg(RAX))
            if self.cfg.coerce_call_results and dst.ty is Type.I32 \
                    and loc[0] == "reg":
                # asm.js |0 coercion on every call result.
                self.emit("and", Reg(loc[1], 4), Imm(-1), size=4,
                          comment="asm.js coercion")

    def _commit_xmm_from(self, dst: VReg, src_xmm: int) -> None:
        loc = self._loc(dst)
        if loc[0] == "reg":
            if loc[1] != src_xmm:
                self.emit("movsd", Reg(loc[1]), Reg(src_xmm))
        else:
            self.emit("movsd", self._slot_mem(loc[1]), Reg(src_xmm))

    def _lower_call(self, instr: Call) -> None:
        pushed = self._setup_args(instr.args)
        if instr.callee in self.ml.module.externs:
            self.emit("hostcall", instr.callee)
        else:
            self.emit("call", Label(instr.callee))
        self._finish_call(instr, pushed)

    def _lower_call_indirect(self, instr: CallIndirect) -> None:
        scratch0 = self.cfg.scratch_gprs[0]
        # The table index must survive argument marshalling; park it in
        # scratch0 (argument moves only use scratch1).
        idx = self._to_gpr(instr.target, 0, 4)
        if idx != scratch0:
            self.emit("mov", Reg(scratch0, 4), Reg(idx, 4), size=4)
        pushed = self._setup_args(instr.args)

        ml = self.ml
        if self.cfg.indirect_check:
            elide_bounds, elide_sig = self._indirect_elision(instr)
            ml.check_stats["indirect_total"] += 2
            ml.check_stats["indirect_elided"] += elide_bounds + elide_sig
            if not elide_bounds:
                cmp = self.emit("cmp", Reg(scratch0, 4),
                                Imm(ml.table_len), size=4,
                                comment="table bounds check")
                jcc = self.emit("jcc", Label(".ind_trap"), cond="ae")
                cmp.check = jcc.check = "indirect"
                self._needs_ind_trap = True
            if not elide_sig:
                sig_id = ml.sig_id_of(instr.ftype)
                cmp = self.emit(
                    "cmp",
                    Mem(index=scratch0, scale=4, disp=ml.table_sig_base,
                        size=4),
                    Imm(sig_id), size=4, comment="signature check")
                jcc = self.emit("jcc", Label(".ind_trap"), cond="ne")
                cmp.check = jcc.check = "indirect"
                self._needs_ind_trap = True
        self.emit("callr",
                  Mem(index=scratch0, scale=8, disp=ml.table_addr_base,
                      size=8))
        self._finish_call(instr, pushed)

    def _indirect_elision(self, instr: CallIndirect):
        """(elide_bounds, elide_sig) for one ``call_indirect`` site.

        The bounds check goes when the proved index interval is inside
        ``[0, table_len)``.  The signature check goes when every table
        entry the index can still reach *after* whatever bounds check
        remains (the hardware one, or the proved interval) is a live
        function of the site's signature — then the check can never
        fail.  Nothing is elided outside an eliding target.
        """
        ml = self.ml
        if not ml.elide:
            return False, False
        table = ml.module.table
        n = ml.table_len
        fact = getattr(instr, "target_fact", None)
        elide_bounds = (fact is not None
                        and 0 <= fact.lo and fact.hi < n)
        if fact is not None:
            lo, hi = max(fact.lo, 0), min(fact.hi, n - 1)
        else:
            lo, hi = 0, n - 1
        if lo > hi:
            # The index can never pass the bounds check: the signature
            # check is unreachable.
            return elide_bounds, True
        sig_id = ml.sig_id_of(instr.ftype)
        elide_sig = all(
            bool(name)
            and ml.sig_ids.get(ml.module.functions[name].ftype) == sig_id
            for name in table[lo:hi + 1])
        return elide_bounds, elide_sig


class _PhysReg:
    """Marker wrapper: an operand already materialized in a physical reg."""

    __slots__ = ("reg",)

    def __init__(self, reg: int):
        self.reg = reg


def _next_pow2(value: int) -> int:
    return 1 << (value - 1).bit_length()


def _invert(cc: str) -> str:
    pairs = {"e": "ne", "ne": "e", "l": "ge", "ge": "l", "le": "g",
             "g": "le", "b": "ae", "ae": "b", "be": "a", "a": "be",
             "s": "ns", "ns": "s"}
    return pairs[cc]


def _use_counts(func: Function):
    counts = {}
    for block in func.blocks.values():
        for instr in block.all_instrs():
            for reg in instr.uses():
                counts[reg.id] = counts.get(reg.id, 0) + 1
    return counts


def _insert_loop_entry_jumps(func: Function) -> None:
    """Chrome's extra per-loop-entry jump (paper §5.1.3 / Fig. 7c line 5):
    every edge entering a loop from outside goes through a forwarding
    block that lowers to an unconditional jmp (never elided)."""
    from ..ir.function import BasicBlock

    for loop in natural_loops(func):
        preds = func.predecessors()
        header = loop.header
        outside = [p for p in preds.get(header, []) if p not in loop.body]
        if not outside:
            continue
        entry = BasicBlock(f"jentry_{header}_{len(func.blocks)}")
        entry.term = Jump(header)
        func.blocks[entry.label] = entry
        for pred_label in outside:
            term = func.blocks[pred_label].term
            if isinstance(term, Jump) and term.target == header:
                term.target = entry.label
            elif isinstance(term, CondBr):
                if term.if_true == header:
                    term.if_true = entry.label
                if term.if_false == header:
                    term.if_false = entry.label
        if func.entry == header:
            func.entry = entry.label


def lower_module(module: Module, config: TargetConfig,
                 name: str = None) -> X86Program:
    """Compile an IR module to a simulated x86 program for ``config``."""
    return ModuleLowering(module, config, name).compile()
