"""Target configurations for the three code generators.

Each configuration captures one column of the paper's root-cause analysis:
which registers the engine reserves (§6.1.1), which allocator it runs
(§6.1.2), whether it exploits x86 addressing modes (§6.1.3), and which
safety checks it must emit (§6.2.2, §6.2.3).

Register conventions (shared by every target so programs are comparable):

* ``rax``/``rdx`` are the division/return scratch pair and never allocated;
* ``rcx`` is the variable-shift register and never allocated;
* ``r10``/``r11`` are the code generator's spill-shuttle scratch pair;
* ``rbp`` is the frame pointer, ``rsp`` the stack pointer.

On top of that the engines lose more registers, exactly as the paper
reports: Chrome reserves ``r13`` (GC root array) and uses ``rbx`` as the
wasm heap base; Firefox reserves ``r15`` as the heap base.  WebAssembly
linkage has no callee-saved registers in either engine, so values live
across calls must be spilled — Clang's System V convention keeps five
callee-saved registers.
"""

from __future__ import annotations

from ..x86.registers import (
    R8, R9, R10, R11, R12, R13, R14, R15, RAX, RBX, RDI, RSI,
    SYSV_FLOAT_ARGS, SYSV_INT_ARGS, xmm,
)


class ABI:
    """Calling convention used by compiled code."""

    def __init__(self, int_args, float_args, ret_int=RAX, ret_float=xmm(0)):
        self.int_args = list(int_args)
        self.float_args = list(float_args)
        self.ret_int = ret_int
        self.ret_float = ret_float


#: One calling convention for every target: the System V AMD64 ABI.  (V8
#: uses its own register order — the paper notes this — but the *count* of
#: argument registers is what matters for the event counts.)
SYSV_ABI = ABI(SYSV_INT_ARGS, SYSV_FLOAT_ARGS)


class TargetConfig:
    """Everything the lowering engine needs to know about a target."""

    def __init__(self, name, allocator, gprs, callee_saved, xmms,
                 heap_base=None, fold_mem_ops=False, fold_addressing=False,
                 stack_check=False, indirect_check=False,
                 elide_checks=False,
                 loop_entry_jumps=False, fuse_cmp_branch=True,
                 heap_mask=False, coerce_call_results=False,
                 code_alignment=1,
                 scratch_gprs=(R10, R11), scratch_xmms=(xmm(14), xmm(15)),
                 abi=SYSV_ABI):
        self.name = name
        self.allocator = allocator            # 'graph' | 'linear'
        self.gprs = list(gprs)
        self.callee_saved = [r for r in callee_saved if r in self.gprs]
        self.xmms = list(xmms)
        self.heap_base = heap_base            # register holding memory base
        self.fold_mem_ops = fold_mem_ops
        self.fold_addressing = fold_addressing
        self.stack_check = stack_check
        self.indirect_check = indirect_check
        #: Let range analysis drop safety checks it proves redundant
        #: (paper §6.4).  Off for the 2019 baseline engines — only the
        #: tiered engines explore the more-optimization-time axis.
        self.elide_checks = elide_checks
        self.loop_entry_jumps = loop_entry_jumps
        self.fuse_cmp_branch = fuse_cmp_branch
        self.heap_mask = heap_mask            # asm.js heap-access masking
        self.coerce_call_results = coerce_call_results  # asm.js |0 coercion
        #: Branch-target alignment in bytes.  V8 and SpiderMonkey align
        #: jump targets and pad with nops ("nops in the generated code
        #: have been removed for presentation" — paper Fig. 7c), which
        #: inflates JIT code footprint beyond the raw instruction count.
        self.code_alignment = code_alignment
        self.scratch_gprs = tuple(scratch_gprs)
        self.scratch_xmms = tuple(scratch_xmms)
        self.abi = abi

    def clone(self, name=None, **overrides) -> "TargetConfig":
        """A copy of this config with some fields replaced (for ablations)."""
        import copy
        cfg = copy.copy(self)
        cfg.gprs = list(self.gprs)
        cfg.callee_saved = list(self.callee_saved)
        cfg.xmms = list(self.xmms)
        if name is not None:
            cfg.name = name
        for key, value in overrides.items():
            if not hasattr(cfg, key):
                raise AttributeError(f"unknown config field {key}")
            setattr(cfg, key, value)
        cfg.callee_saved = [r for r in cfg.callee_saved if r in cfg.gprs]
        return cfg

    def __repr__(self):
        return f"<target {self.name}: {len(self.gprs)} GPRs, {self.allocator}>"


def _xmms(*indices):
    return [xmm(i) for i in indices]


#: Clang -O2: graph coloring, System V callee-saved set, full addressing
#: modes, no runtime checks.
NATIVE = TargetConfig(
    name="clang",
    allocator="graph",
    gprs=[RBX, RSI, RDI, R8, R9, R12, R13, R14, R15],
    callee_saved=[RBX, R12, R13, R14, R15],
    xmms=_xmms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13),
    heap_base=None,
    fold_mem_ops=True,
    fold_addressing=True,
)

#: Chrome 74 / V8 TurboFan for wasm: linear scan, rbx = heap base, r13
#: reserved (GC roots), rsi = the wasm instance register, no callee-saved
#: in wasm linkage, no memory-operand folding, stack + indirect-call
#: checks, extra loop-entry jumps.
CHROME = TargetConfig(
    name="chrome",
    allocator="linear",
    gprs=[RDI, R8, R9, R12, R14, R15],
    callee_saved=[],
    xmms=_xmms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12),  # xmm13 reserved
    heap_base=RBX,
    stack_check=True,
    indirect_check=True,
    loop_entry_jumps=True,
    code_alignment=32,
)

#: Firefox 66 / SpiderMonkey Ion for wasm: like Chrome but r15 = heap
#: base (rbx allocatable), r14 = the wasm TLS register, no extra
#: loop-entry jumps, slightly better instruction selection.
FIREFOX = TargetConfig(
    name="firefox",
    allocator="linear",
    gprs=[RBX, RSI, RDI, R8, R9, R12, R13],
    callee_saved=[],
    xmms=_xmms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13),
    heap_base=R15,
    stack_check=True,
    indirect_check=True,
    code_alignment=16,  # Ion pads jump targets less aggressively than V8
)
