"""Browser layer and asm.js pipeline tests."""

from conftest import compile_wasm_bytes, run_engine, run_ir

from repro.asmjs import ASMJS_CHROME, ASMJS_FIREFOX
from repro.browser import Browser, NativeHost, chrome, firefox
from repro.codegen import compile_native
from repro.kernel import Kernel

SOURCE = """
int main(void) {
    int i;
    int acc = 0;
    for (i = 0; i < 200; i++) {
        acc = acc * 31 + i;
        acc ^= acc >> 5;
    }
    print_i32(acc);
    return 0;
}
"""


def test_browser_run_wasm_end_to_end():
    data, _, _ = compile_wasm_bytes(SOURCE)
    for browser in (chrome(), firefox()):
        result = browser.run_wasm(data, Kernel(), "t")
        assert result.exit_code == 0
        assert result.stdout.endswith(b"\n")
        assert result.perf.instructions > 100
        assert result.compile_seconds > 0


def test_browser_reuses_precompiled_program():
    data, _, _ = compile_wasm_bytes(SOURCE)
    browser = chrome()
    program = browser.compile(data)
    a = browser.run_wasm(data, Kernel(), "t", program=program)
    b = browser.run_wasm(data, Kernel(), "t", program=program)
    assert a.stdout == b.stdout
    assert a.perf.instructions == b.perf.instructions


def test_native_host_matches_browsers():
    program, _ = compile_native(SOURCE, "t")
    native = NativeHost().run_program(program, Kernel(), "t")
    data, _, _ = compile_wasm_bytes(SOURCE)
    browser_result = chrome().run_wasm(data, Kernel(), "t")
    assert native.stdout == browser_result.stdout


def test_run_result_time_decomposition():
    program, _ = compile_native(SOURCE, "t")
    result = NativeHost().run_program(program, Kernel(), "t")
    assert abs(result.total_seconds
               - (result.cpu_seconds + result.overhead_seconds)) < 1e-12
    assert 0 <= result.overhead_fraction < 1


class TestAsmJS:
    def test_asmjs_executes_correctly(self):
        ref = run_ir(SOURCE)
        for engine in (ASMJS_CHROME, ASMJS_FIREFOX):
            rc, out, _ = run_engine(SOURCE, engine)
            assert out == ref[1]

    def test_asmjs_masks_heap_accesses(self):
        memory_heavy = """
int buf[256];
int main(void) {
    int i; int s = 0;
    for (i = 0; i < 256; i++) { buf[i] = i; }
    for (i = 0; i < 256; i++) { s += buf[i]; }
    print_i32(s);
    return 0;
}
"""
        from repro.jit import CHROME_ENGINE
        _, _, m_wasm = run_engine(memory_heavy, CHROME_ENGINE)
        _, _, m_asmjs = run_engine(memory_heavy, ASMJS_CHROME)
        # Masking costs extra ALU instructions per heap access.
        assert m_asmjs.perf.instructions > m_wasm.perf.instructions

    def test_asmjs_slower_than_wasm_on_memory_traffic(self):
        # The asm.js penalty comes from heap masking and call coercions,
        # so it shows on memory-heavy code (register-only loops can tie
        # within icache-layout noise).
        memory_heavy = """
int buf[512];
int touch(int i) { return buf[i & 511] + 1; }
int main(void) {
    int i; int s = 0;
    for (i = 0; i < 512; i++) { buf[i] = i * 3; }
    for (i = 0; i < 2000; i++) { s += touch(s + i); }
    print_i32(s);
    return 0;
}
"""
        from repro.jit import CHROME_ENGINE
        _, _, m_wasm = run_engine(memory_heavy, CHROME_ENGINE)
        _, _, m_asmjs = run_engine(memory_heavy, ASMJS_CHROME)
        assert m_asmjs.perf.cycles() > m_wasm.perf.cycles()

    def test_asmjs_indirect_calls_skip_signature_check(self):
        assert not ASMJS_CHROME.config.indirect_check
        assert ASMJS_CHROME.config.heap_mask
        assert ASMJS_CHROME.config.coerce_call_results
