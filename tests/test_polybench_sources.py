"""PolyBench port sanity: each kernel keeps its defining structure."""

import re

import pytest

from repro.benchsuite import POLYBENCH_NAMES, polybench_spec


def test_23_unique_kernels():
    sources = {name: polybench_spec(name, "ref").source
               for name in POLYBENCH_NAMES}
    assert len(sources) == 23
    assert len(set(sources.values())) == 23


@pytest.mark.parametrize("name", POLYBENCH_NAMES)
def test_every_kernel_has_init_kernel_main(name):
    source = polybench_spec(name, "ref").source
    assert "void init(void)" in source
    assert "void kernel(void)" in source
    assert "int main(void)" in source
    assert "check" in source  # prints a checksum


def test_ref_larger_than_test():
    for name in POLYBENCH_NAMES:
        test_n = re.search(r"#define N (\d+)",
                           polybench_spec(name, "test").source)
        ref_n = re.search(r"#define N (\d+)",
                          polybench_spec(name, "ref").source)
        assert int(ref_n.group(1)) > int(test_n.group(1)), name


def test_kernels_use_expected_math():
    # The kernels that need sqrt in PolyBench use it here too.
    for name in ("cholesky", "gramschmidt", "correlation"):
        assert "sqrt(" in polybench_spec(name, "ref").source


def test_matrix_kernels_have_triple_loops():
    for name in ("gemm", "2mm", "3mm", "syrk", "syr2k", "trmm"):
        source = polybench_spec(name, "ref").source
        kernel = source[source.index("void kernel"):]
        kernel = kernel[:kernel.index("int main")]
        assert kernel.count("for (") >= 3, name


def test_no_syscalls_in_timed_kernels():
    """The paper's point about PolyBench: no system calls at all (beyond
    the final checksum prints)."""
    for name in POLYBENCH_NAMES:
        source = polybench_spec(name, "ref").source
        assert "sys_open" not in source
        assert "sys_read" not in source
        spec = polybench_spec(name, "ref")
        assert not spec.uses_syscalls
