"""The caching pass manager: analysis cache hits/misses, selective
invalidation driven by ``preserves`` sets, pipeline fingerprints, and
the FixedPoint driver."""

import pytest

from repro import obs
from repro.benchsuite import matmul_source
from repro.ir.passmanager import (
    ANALYSES, CFG_ANALYSES, FixedPoint, FunctionAnalysisManager,
    FunctionPass, PassManager, SimplePass, pipeline_fingerprint,
)
from repro.ir.passes import (
    jit_pipeline_fingerprint, opt_pipeline_fingerprint,
)
from repro.mcc import compile_source


@pytest.fixture(autouse=True)
def _metrics():
    yield
    obs.disable_metrics()


def _func():
    module = compile_source(matmul_source(4, 4, 4), "matmul")
    return module.functions["matmul"], module


# -- the analysis cache ------------------------------------------------------------

def test_analysis_cache_hits_and_misses():
    func, _ = _func()
    registry = obs.enable_metrics()
    fam = FunctionAnalysisManager()
    first = fam.get(func, "domtree")
    second = fam.get(func, "domtree")
    assert second is first, "a hit returns the cached object"
    counters = registry.as_dict()["counters"]
    assert counters.get("opt.analysis.misses") == 1
    assert counters.get("opt.analysis.hits") == 1


def test_analysis_cache_disabled_always_recomputes():
    func, _ = _func()
    registry = obs.enable_metrics()
    fam = FunctionAnalysisManager(enabled=False)
    first = fam.get(func, "loops")
    second = fam.get(func, "loops")
    assert second is not first
    counters = registry.as_dict()["counters"]
    assert counters.get("opt.analysis.misses") == 2
    assert not counters.get("opt.analysis.hits")


def test_invalidation_respects_preserved_set():
    func, _ = _func()
    fam = FunctionAnalysisManager()
    for name in ("domtree", "loops", "liveness"):
        fam.get(func, name)
    dropped = fam.invalidate(func, preserved=CFG_ANALYSES)
    assert dropped == 1          # liveness only
    registry = obs.enable_metrics()
    fam.get(func, "domtree")     # still cached
    fam.get(func, "liveness")    # recomputed
    counters = registry.as_dict()["counters"]
    assert counters.get("opt.analysis.hits") == 1
    assert counters.get("opt.analysis.misses") == 1


def test_all_registered_analyses_compute():
    func, _ = _func()
    fam = FunctionAnalysisManager()
    for name in ANALYSES:
        assert fam.get(func, name) is not None


# -- pass running and invalidation -------------------------------------------------

class _CountingPass(FunctionPass):
    """Reports a change exactly ``changes`` times, then settles."""

    def __init__(self, name, preserves=frozenset(), changes=1):
        self.name = name
        self.preserves = frozenset(preserves)
        self._left = changes
        self.runs = 0

    def run(self, func, module, fam):
        self.runs += 1
        if self._left > 0:
            self._left -= 1
            return True
        return False


def test_changing_pass_invalidates_unpreserved_analyses():
    func, module = _func()
    fam = FunctionAnalysisManager()
    fam.get(func, "domtree")
    fam.get(func, "liveness")
    pm = PassManager([_CountingPass("churn", preserves=CFG_ANALYSES)],
                     fam=fam)
    registry = obs.enable_metrics()
    assert pm.run_function(func, module)
    fam.get(func, "domtree")     # preserved -> hit
    fam.get(func, "liveness")    # dropped -> miss
    counters = registry.as_dict()["counters"]
    assert counters.get("opt.analysis.hits") == 1
    assert counters.get("opt.analysis.misses") == 1
    assert counters.get("opt.analysis.invalidations") == 1


def test_no_change_preserves_everything():
    func, module = _func()
    fam = FunctionAnalysisManager()
    fam.get(func, "liveness")
    pm = PassManager([_CountingPass("noop", changes=0)], fam=fam)
    registry = obs.enable_metrics()
    assert not pm.run_function(func, module)
    fam.get(func, "liveness")
    counters = registry.as_dict()["counters"]
    assert counters.get("opt.analysis.hits") == 1
    assert not counters.get("opt.analysis.invalidations")


def test_pass_timing_lands_in_metrics():
    func, module = _func()
    registry = obs.enable_metrics()
    pm = PassManager([_CountingPass("tick", changes=0)])
    pm.run_function(func, module)
    hist = registry.as_dict()["histograms"]["opt.pass_seconds.tick"]
    assert hist["count"] == 1


def test_fixed_point_runs_until_quiescent():
    func, module = _func()
    inner = _CountingPass("settle", preserves=CFG_ANALYSES, changes=3)
    fp = FixedPoint([inner], max_rounds=8)
    assert fp.run(func, module, FunctionAnalysisManager())
    # 3 changing rounds + 1 quiet round to detect the fixpoint.
    assert inner.runs == 4


def test_fixed_point_respects_round_bound():
    func, module = _func()
    inner = _CountingPass("restless", changes=99)
    fp = FixedPoint([inner], max_rounds=3)
    fp.run(func, module, FunctionAnalysisManager())
    assert inner.runs == 3


# -- pipeline fingerprints ---------------------------------------------------------

def _mk(name, version=1):
    return SimplePass(name, lambda f: False, version=version)


def test_fingerprint_is_stable():
    passes = [_mk("a"), _mk("b")]
    assert pipeline_fingerprint(passes) == pipeline_fingerprint(passes)


def test_fingerprint_sees_order_name_version_and_config():
    base = pipeline_fingerprint([_mk("a"), _mk("b")])
    assert pipeline_fingerprint([_mk("b"), _mk("a")]) != base
    assert pipeline_fingerprint([_mk("a"), _mk("c")]) != base
    assert pipeline_fingerprint([_mk("a"), _mk("b", version=2)]) != base
    assert pipeline_fingerprint([_mk("a"), _mk("b")], ("flag", 1)) != base


def test_fingerprint_folds_fixpoint_structure():
    flat = pipeline_fingerprint([_mk("a"), _mk("b")])
    nested = pipeline_fingerprint([FixedPoint([_mk("a"), _mk("b")])])
    assert flat != nested


def test_opt_fingerprint_distinguishes_ssa_toggle():
    on = opt_pipeline_fingerprint(ssa=True)
    off = opt_pipeline_fingerprint(ssa=False)
    assert on != off
    assert opt_pipeline_fingerprint(ssa=True) == on


def test_opt_fingerprint_distinguishes_unroll_config():
    assert opt_pipeline_fingerprint(unroll=True) \
        != opt_pipeline_fingerprint(unroll=False)
    assert opt_pipeline_fingerprint(unroll=True, unroll_factor=8) \
        != opt_pipeline_fingerprint(unroll=True, unroll_factor=4)


def test_jit_fingerprint_tracks_optimizing_tier():
    baseline = jit_pipeline_fingerprint(False, ssa=True)
    optimizing = jit_pipeline_fingerprint(True, ssa=True)
    assert baseline != optimizing
    # A non-optimizing tier never runs the SSA region, so the SSA
    # toggle must not perturb its key.
    assert jit_pipeline_fingerprint(False, ssa=False) == baseline
