"""Type checker unit tests."""

import pytest

from repro.errors import CompileError
from repro.mcc import parse, typecheck
from repro.mcc import astnodes as ast
from repro.mcc.types_c import DOUBLE, INT, LONG, PointerType


def check(source):
    return typecheck(parse(source))


def expr_of(source):
    """Type-check and return the expression of the first ExprStmt/Return
    in the first function."""
    program = check(source)
    fn = next(d for d in program.decls
              if isinstance(d, ast.FuncDef) and d.body)
    for stmt in fn.body.stmts:
        if isinstance(stmt, ast.ExprStmt):
            return stmt.expr
        if isinstance(stmt, ast.Return):
            return stmt.value
    raise AssertionError("no expression found")


def test_usual_arithmetic_conversions_int_double():
    expr = expr_of("double f(int a, double b) { return a + b; }")
    assert expr.ctype == DOUBLE
    assert isinstance(expr.lhs, ast.Cast)   # int promoted to double


def test_long_plus_int_promotes_to_long():
    expr = expr_of("long f(long a, int b) { return a + b; }")
    assert expr.ctype == LONG
    assert isinstance(expr.rhs, ast.Cast)


def test_comparison_yields_int():
    expr = expr_of("int f(double a, double b) { return a < b; }")
    assert expr.ctype == INT


def test_pointer_arithmetic_scales():
    expr = expr_of("int *f(int *p, int n) { return p + n; }")
    assert isinstance(expr.ctype, PointerType)


def test_pointer_minus_pointer_is_int():
    expr = expr_of("int f(int *a, int *b) { return a - b; }")
    assert expr.ctype == INT


def test_array_decays_in_call_argument():
    check("""
void g(int *p);
int arr[4];
void f(void) { g(arr); }
""")


def test_undeclared_identifier():
    with pytest.raises(CompileError):
        check("int f(void) { return missing; }")


def test_call_arity_mismatch():
    with pytest.raises(CompileError):
        check("int g(int a); int f(void) { return g(1, 2); }")


def test_assignment_to_non_lvalue():
    with pytest.raises(CompileError):
        check("void f(int a) { (a + 1) = 2; }")


def test_void_function_returning_value():
    with pytest.raises(CompileError):
        check("void f(void) { return 3; }")


def test_nonvoid_function_returning_nothing():
    with pytest.raises(CompileError):
        check("int f(void) { return; }")


def test_deref_non_pointer():
    with pytest.raises(CompileError):
        check("int f(int a) { return *a; }")


def test_member_of_non_struct():
    with pytest.raises(CompileError):
        check("int f(int a) { return a.x; }")


def test_unknown_struct_field():
    with pytest.raises(CompileError):
        check("struct S { int x; }; int f(struct S *s) { return s->y; }")


def test_modulo_requires_integers():
    with pytest.raises(CompileError):
        check("double f(double a) { return a % 2.0; }")


def test_global_initializer_must_be_constant():
    with pytest.raises(CompileError):
        check("int g(void); int x = g();")


def test_function_name_as_global_initializer_allowed():
    check("int h(int a) { return a; } int (*fp)(int) = h;")


def test_address_taken_is_marked():
    program = check("void f(void) { int a; int *p = &a; *p = 3; }")
    fn = program.decls[0]
    decl = fn.body.stmts[0]
    assert decl.symbol.address_taken


def test_param_symbols_attached():
    program = check("int f(int a, double b) { return a; }")
    fn = program.decls[0]
    assert [s.name for s in fn.param_symbols] == ["a", "b"]


def test_char_assignment_inserts_truncation_cast():
    program = check("void f(void) { char c; c = 300; }")
    fn = program.decls[0]
    assign = fn.body.stmts[1].expr
    assert isinstance(assign.value, ast.Cast)


def test_conflicting_redeclaration():
    with pytest.raises(CompileError):
        check("int f(int a); double f(int a) { return 1.0; }")


def test_scalar_condition_required():
    with pytest.raises(CompileError):
        check("struct S { int x; }; struct S s; "
              "void f(void) { if (s) { } }")
