"""Browsix-Wasm kernel tests: filesystem, pipes, syscalls, cost ledger."""

import pytest

from repro.kernel import (
    BROWSIX_WASM_COSTS, BrowserFile, BrowsixRuntime, FileSystem, FsError,
    GROW_CHUNKED, GROW_EXACT, Kernel, LEGACY_BROWSIX_COSTS, NATIVE_COSTS,
    NativeRuntime, O_APPEND, O_CREAT, O_TRUNC, O_WRONLY, Pipe, SEEK_CUR,
    SEEK_END, SEEK_SET,
)


class FakeEnv:
    """A minimal guest-memory environment for syscall tests."""

    def __init__(self, size=4096):
        self.mem = bytearray(size)

    def read_mem(self, addr, length):
        return bytes(self.mem[addr:addr + length])

    def write_mem(self, addr, data):
        self.mem[addr:addr + len(data)] = data


class TestBrowserFile:
    def test_write_read_roundtrip(self):
        f = BrowserFile("a")
        f.write_at(0, b"hello")
        assert f.data() == b"hello"
        assert f.read_at(1, 3) == b"ell"

    def test_read_past_end_truncates(self):
        f = BrowserFile("a", b"xy")
        assert f.read_at(0, 100) == b"xy"
        assert f.read_at(5, 4) == b""

    def test_sparse_write_zero_fills(self):
        f = BrowserFile("a")
        f.write_at(4, b"z")
        assert f.data() == b"\0\0\0\0z"

    def test_exact_growth_recopies_everything(self):
        f = BrowserFile("a", policy=GROW_EXACT)
        total = 0
        for i in range(100):
            f.write_at(f.size, b"x")
            total += i  # previous size recopied each time
        assert f.copy_traffic == total

    def test_chunked_growth_amortizes(self):
        f = BrowserFile("a", policy=GROW_CHUNKED)
        for _ in range(100):
            f.write_at(f.size, b"x")
        # One reallocation (to 4 KB) covers all 100 single-byte appends.
        assert f.copy_traffic < 100
        assert f.capacity >= 4096


class TestFileSystem:
    def test_open_missing_without_create_fails(self):
        fs = FileSystem()
        with pytest.raises(FsError):
            fs.open("nope", O_WRONLY)

    def test_create_open_truncate(self):
        fs = FileSystem()
        fs.create("f", b"old contents")
        handle = fs.open("f", O_WRONLY | O_CREAT | O_TRUNC)
        handle.write(b"new")
        assert fs.read_file("f") == b"new"

    def test_append_mode(self):
        fs = FileSystem()
        fs.create("f", b"ab")
        handle = fs.open("f", O_WRONLY | O_APPEND)
        handle.write(b"cd")
        assert fs.read_file("f") == b"abcd"

    def test_seek_whence(self):
        fs = FileSystem()
        fs.create("f", b"0123456789")
        h = fs.open("f", 0)
        assert h.seek(4, SEEK_SET) == 4
        assert h.read(2) == b"45"
        assert h.seek(-3, SEEK_CUR) == 3
        assert h.seek(-1, SEEK_END) == 9
        assert h.read(5) == b"9"


class TestPipe:
    def test_fifo_order(self):
        p = Pipe()
        p.write(b"ab")
        p.write(b"cd")
        assert p.read(3) == b"abc"
        assert p.read(10) == b"d"

    def test_legacy_pipe_copy_traffic(self):
        p = Pipe(optimized=False)
        for _ in range(10):
            p.write(b"xxxx")
        assert p.copy_traffic == sum(4 * i for i in range(10))
        assert p.drain() == b"xxxx" * 10

    def test_optimized_pipe_no_copy_traffic(self):
        p = Pipe(optimized=True)
        for _ in range(10):
            p.write(b"xxxx")
        assert p.copy_traffic == 0
        assert p.pending == 40


class TestSyscalls:
    def _kernel_proc(self):
        kernel = Kernel()
        kernel.fs.create("in.txt", b"hello world")
        return kernel, kernel.spawn("t")

    def test_open_read_close(self):
        kernel, proc = self._kernel_proc()
        env = FakeEnv()
        env.write_mem(0, b"in.txt\0")
        fd = kernel.syscall(proc, "sys_open", [0, 0], env)
        assert fd >= 3
        n = kernel.syscall(proc, "sys_read", [fd, 100, 5], env)
        assert n == 5
        assert env.read_mem(100, 5) == b"hello"
        assert kernel.syscall(proc, "sys_close", [fd], env) == 0

    def test_open_missing_returns_minus_one(self):
        kernel, proc = self._kernel_proc()
        env = FakeEnv()
        env.write_mem(0, b"missing\0")
        assert kernel.syscall(proc, "sys_open", [0, 0], env) == -1

    def test_write_to_stdout_pipe(self):
        kernel, proc = self._kernel_proc()
        env = FakeEnv()
        env.write_mem(50, b"out!")
        n = kernel.syscall(proc, "sys_write", [1, 50, 4], env)
        assert n == 4
        assert proc.stdout.drain() == b"out!"

    def test_write_create_file(self):
        kernel, proc = self._kernel_proc()
        env = FakeEnv()
        env.write_mem(0, b"new.bin\0")
        fd = kernel.syscall(proc, "sys_open",
                            [0, O_CREAT | O_TRUNC | O_WRONLY], env)
        env.write_mem(64, b"\x01\x02")
        kernel.syscall(proc, "sys_write", [fd, 64, 2], env)
        assert kernel.fs.read_file("new.bin") == b"\x01\x02"

    def test_bad_fd_returns_minus_one(self):
        kernel, proc = self._kernel_proc()
        env = FakeEnv()
        assert kernel.syscall(proc, "sys_read", [99, 0, 4], env) == -1
        assert kernel.syscall(proc, "sys_close", [99], env) == -1


class TestCostLedger:
    def test_charge_accumulates(self):
        kernel = Kernel()
        before = kernel.cycles
        cost = kernel.charge(1000)
        assert cost > 0
        assert kernel.cycles == before + cost

    def test_chunking_over_aux_buffer(self):
        costs = BROWSIX_WASM_COSTS
        one = costs.call_cost(costs.aux_buffer_size)
        two = costs.call_cost(costs.aux_buffer_size + 1)
        # Crossing the 64MB auxiliary buffer costs a second kernel trip.
        assert two - one >= costs.message_latency

    def test_cost_ordering(self):
        for payload in (0, 64, 4096):
            native = NATIVE_COSTS.call_cost(payload)
            browsix = BROWSIX_WASM_COSTS.call_cost(payload)
            legacy = LEGACY_BROWSIX_COSTS.call_cost(payload)
            assert native < browsix < legacy

    def test_fs_copy_traffic_billed(self):
        kernel = Kernel(fs_policy=GROW_EXACT)
        proc = kernel.spawn("t")
        env = FakeEnv()
        env.write_mem(0, b"f\0")
        fd = kernel.syscall(proc, "sys_open",
                            [0, O_CREAT | O_WRONLY | O_APPEND], env)
        env.write_mem(64, b"x" * 32)
        base = kernel.charge(0)
        for _ in range(50):
            kernel.syscall(proc, "sys_write", [fd, 64, 32], env)
        grown = kernel.charge(0)
        # The naive growth policy's reallocation traffic shows up in the
        # ledger as extra copy cycles.
        assert grown > base


class TestRuntimes:
    def test_browsix_runtime_tracks_overhead(self):
        kernel = Kernel()
        kernel.fs.create("in", b"abc")
        proc = kernel.spawn("t")
        rt = BrowsixRuntime(kernel, proc, heap_base=0x1000)
        env = FakeEnv()
        env.write_mem(0, b"in\0")
        fd = rt.call(env, "sys_open", [0, 0])
        rt.call(env, "sys_read", [fd, 100, 3])
        assert rt.syscall_count == 2
        assert rt.overhead_cycles > 0

    def test_heap_base_is_free(self):
        kernel = Kernel()
        proc = kernel.spawn("t")
        rt = BrowsixRuntime(kernel, proc, heap_base=0x1234)
        assert rt.call(None, "sys_heap_base", []) == 0x1234
        assert rt.overhead_cycles == 0

    def test_print_formatting_matches_reference_host(self):
        kernel = Kernel()
        proc = kernel.spawn("t")
        rt = BrowsixRuntime(kernel, proc, heap_base=0)
        rt.call(None, "print_i32", [0xFFFFFFFF])
        rt.call(None, "print_f64", [1.5])
        assert rt.stdout == b"-1\n1.500000\n"

    def test_native_runtime_is_cheaper(self):
        def run(runtime_cls):
            kernel = Kernel()
            proc = kernel.spawn("t")
            rt = runtime_cls(kernel, proc, 0)
            env = FakeEnv()
            env.write_mem(50, b"data")
            for _ in range(10):
                rt.call(env, "sys_write", [1, 50, 4])
            return rt.overhead_cycles

        assert run(NativeRuntime) < run(BrowsixRuntime)
