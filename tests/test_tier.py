"""Tiered execution: quickening and fusion must be invisible.

The tier model (``--tier off|quicken|fuse``) is a pure speed knob —
every observable output (result values, stdout, perf counters, profile
attribution) must be bit-identical at every tier, on every benchmark,
on every target.  These tests pin that invariant.
"""

import pytest

from conftest import GuestHost, compile_wasm_bytes

from repro import obs
from repro.benchsuite import matmul_spec, polybench_benchmark
from repro.codegen import compile_native
from repro.harness.runner import compile_benchmark, run_compiled
from repro.obs.profile import WasmProfile, profile_benchmark
from repro.tier import (
    DEFAULT_TIER, HOT_CALLS, TIERS, get_tier, set_tier, tier_level,
)
from repro.wasm import WasmInstance, decode_module
from repro.x86.machine import X86Machine

TARGETS = ["native", "chrome", "firefox"]

LOOPY = """
int work(int x) {
    int acc = x; int j;
    for (j = 0; j < 40; j++) {
        acc += j * 3;
        acc -= acc / 7;
        if (acc > 1000) { acc -= 900; }
    }
    return acc;
}
int main(void) {
    int i; int s = 0;
    for (i = 0; i < 30; i++) { s += work(i); }
    print_i32(s);
    return 0;
}
"""


@pytest.fixture(autouse=True)
def _reset_tier():
    yield
    set_tier(None)
    obs.disable_metrics()


# -- the tier registry --------------------------------------------------------------

def test_tier_names_and_levels():
    assert TIERS == ("off", "quicken", "fuse")
    assert tier_level("off") == 0
    assert tier_level("quicken") == 1
    assert tier_level("fuse") == 2


def test_set_tier_round_trip():
    set_tier("quicken")
    assert get_tier() == "quicken"
    set_tier(None)
    assert get_tier() == DEFAULT_TIER


def test_set_tier_rejects_unknown():
    with pytest.raises(ValueError):
        set_tier("turbo")


def test_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_TIER", "off")
    assert get_tier() == "off"
    set_tier("fuse")             # explicit setting wins over the env
    assert get_tier() == "fuse"


# -- bit-identity on the x86 machine ------------------------------------------------

def _run_at_tier(program, heap_base, tier):
    host = GuestHost(heap_base)
    machine = X86Machine(program, host=host, tier=tier)
    rax, _ = machine.call("main")
    return rax & 0xFFFFFFFF, bytes(host.output), machine.perf.as_dict()


def test_x86_tiers_bit_identical():
    program, module = compile_native(LOOPY, "tiertest")
    baseline = _run_at_tier(program, module.heap_base, "off")
    for tier in ("quicken", "fuse"):
        assert _run_at_tier(program, module.heap_base, tier) == baseline


def test_x86_fuse_promotes_hot_functions():
    program, module = compile_native(LOOPY, "tiertest")
    registry = obs.enable_metrics()
    _run_at_tier(program, module.heap_base, "fuse")
    counters = registry.as_dict()["counters"]
    assert counters.get("tier.promotions", 0) > 0
    assert counters.get("tier.fused_ops", 0) > 0


# -- bit-identity on the wasm interpreter -------------------------------------------

def test_wasm_tiers_bit_identical():
    data, _wasm, ir = compile_wasm_bytes(LOOPY)
    module = decode_module(data, "tiertest")
    outs = {}
    for tier in TIERS:
        host = GuestHost(ir.heap_base)
        inst = WasmInstance(module, host=host, tier=tier)
        rc = inst.invoke("main")
        outs[tier] = (rc, bytes(host.output))
    assert outs["quicken"] == outs["off"]
    assert outs["fuse"] == outs["off"]


def test_wasm_fused_profile_attribution_exact():
    """Fused handlers charge their constituent opcodes: the per-opcode
    per-function buckets must match the unfused interpreter exactly."""
    data, _wasm, ir = compile_wasm_bytes(LOOPY)
    module = decode_module(data, "tiertest")
    profiles = {}
    for tier in ("off", "fuse"):
        profile = WasmProfile()
        host = GuestHost(ir.heap_base)
        WasmInstance(module, host=host, profile=profile,
                     tier=tier).invoke("main")
        profiles[tier] = profile
    off, fuse = profiles["off"], profiles["fuse"]
    assert fuse.functions == off.functions
    assert fuse.opcode_instrs == off.opcode_instrs
    assert fuse.total_instrs() == off.total_instrs()


# -- bit-identity across the full measurement stack ---------------------------------

@pytest.mark.parametrize("name", ["gemm", "bicg"])
def test_benchmark_cells_bit_identical_across_tiers(name):
    spec = polybench_benchmark(name, "test")
    compiled = compile_benchmark(spec, TARGETS, cache=False)
    cells = {}
    for tier in TIERS:
        set_tier(tier)
        cells[tier] = {
            target: run_compiled(compiled, target, runs=2)
            for target in TARGETS
        }
    for target in TARGETS:
        base = cells["off"][target]
        for tier in ("quicken", "fuse"):
            cell = cells[tier][target]
            assert cell.times == base.times, (name, target, tier)
            assert cell.perf.as_dict() == base.perf.as_dict()
            assert cell.run.stdout == base.run.stdout


def test_verify_totals_with_fusion_enabled():
    """Profile attribution stays exact while fused handlers run."""
    set_tier("fuse")
    comparison = profile_benchmark(matmul_spec(8), target="chrome",
                                   cache=False)
    comparison.verify_totals()
    set_tier("off")
    unfused = profile_benchmark(matmul_spec(8), target="chrome",
                                cache=False)
    unfused.verify_totals()
    fused_rows = [(name, n.as_dict(), t.as_dict())
                  for name, n, t in comparison.function_rows()]
    plain_rows = [(name, n.as_dict(), t.as_dict())
                  for name, n, t in unfused.function_rows()]
    assert fused_rows == plain_rows
