"""IR verifier and printer tests."""

import pytest

from repro.ir import (
    BinOp, CondBr, Const, FuncType, Function, Jump, Module, Move, Return,
    Type, VReg, VerifyError, format_function, format_module,
    verify_function, verify_module,
)


def _func(name="f", params=(), result=Type.I32):
    results = [result] if result else []
    func = Function(name, FuncType(params, results))
    for i, ty in enumerate(params):
        func.params.append(func.new_vreg(ty, f"p{i}"))
    return func


def test_minimal_valid_function():
    func = _func()
    block = func.new_block("entry")
    block.terminate(Return(Const(0, Type.I32)))
    verify_function(func)


def test_unterminated_block_rejected():
    func = _func()
    func.new_block("entry")
    with pytest.raises(VerifyError, match="not terminated"):
        verify_function(func)


def test_branch_to_missing_label_rejected():
    func = _func()
    block = func.new_block("entry")
    block.terminate(Jump("nowhere"))
    with pytest.raises(VerifyError, match="missing"):
        verify_function(func)


def test_use_of_undefined_register_rejected():
    func = _func()
    block = func.new_block("entry")
    ghost = VReg(999, Type.I32)
    block.terminate(Return(ghost))
    with pytest.raises(VerifyError, match="undefined"):
        verify_function(func)


def test_operand_type_mismatch_rejected():
    func = _func(params=(Type.I32, Type.F64))
    block = func.new_block("entry")
    dst = func.new_vreg(Type.I32)
    block.append(BinOp(dst, "add", func.params[0], func.params[1]))
    block.terminate(Return(dst))
    with pytest.raises(VerifyError, match="differ"):
        verify_function(func)


def test_return_type_mismatch_rejected():
    func = _func(result=Type.F64)
    block = func.new_block("entry")
    block.terminate(Return(Const(1, Type.I32)))
    with pytest.raises(VerifyError, match="return type"):
        verify_function(func)


def test_condbr_requires_i32():
    func = _func(params=(Type.F64,))
    entry = func.new_block("entry")
    exit1 = func.new_block("a")
    exit1.terminate(Return(Const(1, Type.I32)))
    exit2 = func.new_block("b")
    exit2.terminate(Return(Const(2, Type.I32)))
    entry.terminate(CondBr(func.params[0], exit1.label, exit2.label))
    with pytest.raises(VerifyError, match="condition"):
        verify_function(func)


def test_call_arity_checked_against_module():
    from repro.ir import Call
    module = Module("m")
    callee = _func("callee", params=(Type.I32,))
    block = callee.new_block("entry")
    block.terminate(Return(Const(0, Type.I32)))
    module.add_function(callee)

    caller = _func("caller")
    block = caller.new_block("entry")
    dst = caller.new_vreg(Type.I32)
    block.append(Call(dst, "callee", []))  # missing the argument
    block.terminate(Return(dst))
    module.add_function(caller)
    with pytest.raises(VerifyError, match="arity"):
        verify_module(module)


def test_table_entry_must_exist():
    module = Module("m")
    module.table.extend(["", "ghost"])
    with pytest.raises(VerifyError, match="table"):
        verify_module(module)


def test_printer_round_trips_structure():
    from repro.mcc import compile_source
    module = compile_source(
        "int main(void){ int i; int s=0; "
        "for(i=0;i<3;i++){s+=i;} return s; }", "t")
    text = format_module(module)
    assert "func @main" in text
    assert "global $__sp" in text
    func_text = format_function(module.functions["main"])
    assert "ret" in func_text
    assert "br " in func_text or "jump" in func_text
