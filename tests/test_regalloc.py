"""Register allocator tests: liveness, linear scan, graph coloring."""

from repro.ir.passes import optimize_module
from repro.mcc import compile_source
from repro.regalloc.graph_coloring import graph_coloring
from repro.regalloc.linear_scan import linear_scan
from repro.regalloc.liveness import LivenessInfo, block_liveness

HIGH_PRESSURE = """
int spin(int a, int b) {
    int c = a + b;
    int d = a - b;
    int e = a * b;
    int f = c + d;
    int g = d + e;
    int h = e + c;
    int i = f * g;
    int j = g * h;
    int k = h * f;
    int l = i + j + k;
    return a + b + c + d + e + f + g + h + i + j + k + l;
}
int main(void) { return spin(3, 4); }
"""

WITH_CALLS = """
int leaf(int x);
int work(int a, int b) {
    int keep = a * 31 + b;
    int r1 = leaf(a);
    int r2 = leaf(b);
    return keep + r1 + r2;
}
// Too large to inline, so the calls in work() survive optimization.
int leaf(int x) {
    int acc = 17;
    int i;
    for (i = 0; i < 8; i++) {
        acc = acc * x + i;
        acc ^= acc >> 2;
        acc += (x + i) * (x - i);
        acc = acc % 100003;
        acc = (acc << 1) ^ (acc >> 3);
        acc += x * 7 - i * 5;
        acc &= 0x7fffffff;
    }
    return acc;
}
int main(void) { return work(2, 3); }
"""

LOOP = """
int main(void) {
    int i; int sum = 0;
    for (i = 0; i < 10; i++) { sum += i * i; }
    return sum;
}
"""


def _info(source, fname):
    module = compile_source(source, "t")
    optimize_module(module, level=2)
    return LivenessInfo(module.functions[fname])


def _check_assignment_consistency(info, assignment, pool):
    """No two simultaneously-live vregs share a register."""
    intervals = info.intervals
    assigned = [(vid, reg) for vid, reg in assignment.regs.items()]
    for i, (va, ra) in enumerate(assigned):
        for vb, rb in assigned[i + 1:]:
            if ra != rb:
                continue
            ia, ib = intervals[va], intervals[vb]
            if ia.ty.is_float != ib.ty.is_float:
                continue
            assert not ia.overlaps(ib), \
                f"v{va} and v{vb} share {ra} while live together"
    for reg in assignment.regs.values():
        assert reg in pool


def test_block_liveness_loop_variable_is_live_in_header():
    module = compile_source(LOOP, "t")
    func = module.functions["main"]
    live_in, live_out = block_liveness(func)
    # At least one block (the loop header) has live-in registers carrying
    # i and sum around the loop.
    assert any(len(s) >= 2 for s in live_in.values())


def test_intervals_cover_uses():
    info = _info(HIGH_PRESSURE, "spin")
    for iv in info.intervals.values():
        assert iv.start is not None
        for pos in iv.use_positions:
            assert iv.start <= pos <= iv.end


def test_call_crossing_detected():
    info = _info(WITH_CALLS, "work")
    assert info.call_positions
    assert any(iv.crosses_call for iv in info.intervals.values())


def test_linear_scan_no_overlapping_assignments():
    info = _info(HIGH_PRESSURE, "spin")
    pool = [1, 2, 3, 6, 7]
    assignment = linear_scan(info, pool, [16, 17])
    _check_assignment_consistency(info, assignment, pool + [16, 17])


def test_linear_scan_spills_under_pressure():
    info = _info(HIGH_PRESSURE, "spin")
    tight = linear_scan(info, [1, 2, 3], [16])
    roomy = linear_scan(info, list(range(1, 12)), [16])
    assert tight.spill_count() > roomy.spill_count()


def test_linear_scan_empty_callee_saved_spills_across_calls():
    info = _info(WITH_CALLS, "work")
    assignment = linear_scan(info, [1, 2, 3, 6, 7], [16], callee_saved=[])
    for vid, iv in info.intervals.items():
        if iv.crosses_call and not iv.ty.is_float:
            assert vid in assignment.spills, \
                "call-crossing value must be spilled without callee-saved"


def test_linear_scan_uses_callee_saved_across_calls():
    info = _info(WITH_CALLS, "work")
    assignment = linear_scan(info, [1, 2, 3, 6, 7], [16],
                             callee_saved=[6, 7])
    crossing_in_regs = [vid for vid, iv in info.intervals.items()
                        if iv.crosses_call and vid in assignment.regs]
    for vid in crossing_in_regs:
        assert assignment.regs[vid] in (6, 7)
    assert assignment.used_callee_saved <= {6, 7}


def test_graph_coloring_no_overlapping_assignments():
    info = _info(HIGH_PRESSURE, "spin")
    pool = [1, 2, 3, 6, 7]
    assignment = graph_coloring(info, pool, [16, 17])
    _check_assignment_consistency(info, assignment, pool + [16, 17])


def test_graph_coloring_spills_no_more_than_linear_scan():
    # The paper's §6.1.2 asymmetry: graph coloring makes better decisions
    # on the same liveness information.  Coalescing heuristics can cost a
    # slot on pathological inputs, so the property is checked in aggregate
    # over both test functions.
    total_lin = total_col = 0
    for source, fname in ((HIGH_PRESSURE, "spin"), (WITH_CALLS, "work")):
        info_a = _info(source, fname)
        info_b = _info(source, fname)
        pool = [1, 2, 3, 6]
        total_lin += linear_scan(info_a, pool, [16],
                                 callee_saved=[6]).spill_count()
        total_col += graph_coloring(info_b, pool, [16],
                                    callee_saved=[6]).spill_count()
    assert total_col <= total_lin


def test_graph_coloring_prefers_caller_saved_when_possible():
    info = _info(HIGH_PRESSURE, "spin")  # no calls
    assignment = graph_coloring(info, [1, 2, 3, 6, 7], [16],
                                callee_saved=[6, 7])
    # A call-free function should not need the callee-saved registers
    # unless pressure forces it; with 5 regs and heavy pressure some use
    # is allowed, but used_callee_saved must reflect actual assignments.
    for reg in assignment.used_callee_saved:
        assert reg in (6, 7)
        assert reg in assignment.regs.values()


def test_spill_slots_are_stable_per_vreg():
    info = _info(HIGH_PRESSURE, "spin")
    assignment = linear_scan(info, [1], [16])
    slots = list(assignment.spills.values())
    assert len(set(slots)) == len(slots)  # distinct slots per vreg
