"""The mcc runtime library, exercised end to end on every pipeline."""

from conftest import run_everywhere, run_ir


def test_memcpy_word_and_tail_paths():
    # Length 21 exercises the 8-byte fast path plus the byte tail.
    run_everywhere("""
char src[24];
char dst[24];
int main(void) {
    int i;
    for (i = 0; i < 24; i++) { src[i] = (char)(i * 7 + 1); }
    memcpy(dst, src, 21);
    int match = 1;
    for (i = 0; i < 21; i++) {
        if (dst[i] != src[i]) { match = 0; }
    }
    print_i32(match);
    print_i32(dst[21]);   // untouched tail stays zero
    return 0;
}
""")


def test_memset_and_strlen_strcpy():
    run_everywhere("""
char buf[40];
int main(void) {
    memset(buf, 'x', 10);
    buf[10] = (char)0;
    print_i32(strlen(buf));
    char copy[40];
    strcpy(copy, buf);
    print_i32(strcmp(copy, buf));
    print_i32(strncmp("abcdef", "abcxyz", 3));
    print_i32(strncmp("abcdef", "abcxyz", 4) < 0);
    return 0;
}
""")


def test_atoi():
    run_everywhere("""
int main(void) {
    print_i32(atoi("12345"));
    print_i32(atoi("-987"));
    print_i32(atoi("  42"));
    print_i32(atoi("+7tail"));
    print_i32(atoi(""));
    return 0;
}
""")


def test_qsort_with_comparators():
    source = """
int ascending(int a, int b) { return a - b; }
int descending(int a, int b) { return b - a; }
int data[16];
int main(void) {
    int i;
    rt_srand(5);
    for (i = 0; i < 16; i++) { data[i] = rt_rand() % 100; }
    qsort_i32(data, 0, 15, ascending);
    int sorted = 1;
    for (i = 1; i < 16; i++) {
        if (data[i - 1] > data[i]) { sorted = 0; }
    }
    print_i32(sorted);
    qsort_i32(data, 0, 15, descending);
    for (i = 1; i < 16; i++) {
        if (data[i - 1] < data[i]) { sorted = 0; }
    }
    print_i32(sorted);
    print_i32(data[0] >= data[15]);
    return 0;
}
"""
    rc, out = run_everywhere(source)
    assert out == b"1\n1\n1\n"


def test_qsort_semantics_against_python():
    source = """
int up(int a, int b) { return a - b; }
int data[20];
int main(void) {
    int i;
    for (i = 0; i < 20; i++) { data[i] = ((i * 37) % 13) - 6; }
    qsort_i32(data, 0, 19, up);
    for (i = 0; i < 20; i++) { print_i32(data[i]); }
    return 0;
}
"""
    _value, out = run_ir(source)
    got = [int(line) for line in out.decode().split()]
    want = sorted((((i * 37) % 13) - 6) for i in range(20))
    assert got == want


def test_rand_is_deterministic():
    source = """
int main(void) {
    rt_srand(42);
    int a = rt_rand();
    int b = rt_rand();
    rt_srand(42);
    print_i32(rt_rand() == a);
    print_i32(rt_rand() == b);
    print_i32(a >= 0 && a < 32768);
    return 0;
}
"""
    rc, out = run_everywhere(source)
    assert out == b"1\n1\n1\n"


def test_libm_identities():
    source = """
int close_to(double a, double b) {
    double d = a - b;
    if (d < 0.0) { d = -d; }
    return d < 0.0001;
}
int main(void) {
    print_i32(close_to(sqrt(2.0) * sqrt(2.0), 2.0));
    print_i32(close_to(exp(log(5.0)), 5.0));
    print_i32(close_to(pow(2.0, 0.5), sqrt(2.0)));
    print_i32(close_to(fabs(-3.5), 3.5));
    print_i32(close_to(log(exp(1.0)), 1.0));
    return 0;
}
"""
    rc, out = run_everywhere(source)
    assert out == b"1\n" * 5
