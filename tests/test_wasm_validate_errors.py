"""wasm validator error paths: each rejection fires with the exact
diagnostic, on hand-built modules."""

import pytest

from repro.errors import ValidationError
from repro.wasm.module import (WasmFuncType, WasmFunction, WasmModule)
from repro.wasm.opcodes import WasmInstr
from repro.wasm.validate import validate_module


def _module(body, params=(), results=("i32",), locals_=(), name="f"):
    module = WasmModule("test")
    module.types.append(WasmFuncType(params, results))
    module.functions.append(
        WasmFunction(0, locals_=locals_, body=list(body), name=name))
    return module


def _err(module) -> str:
    with pytest.raises(ValidationError) as excinfo:
        validate_module(module)
    return str(excinfo.value)


def test_stack_underflow_exact_message():
    # i32.add with only one operand on the stack.
    module = _module([
        WasmInstr("i32.const", 1),
        WasmInstr("i32.add"),
    ])
    assert _err(module) == "f: stack underflow (expected i32)"


def test_br_if_condition_type_mismatch_exact_message():
    # br_if pops an i32 condition; an f64 is on top instead.
    module = _module([
        WasmInstr("block", None),
        WasmInstr("f64.const", 1.0),
        WasmInstr("br_if", 0),
        WasmInstr("end"),
        WasmInstr("i32.const", 0),
    ])
    assert _err(module) == "f: type mismatch: expected i32, got f64"


def test_br_if_label_type_mismatch():
    # The target label carries an i32 result; the stack has an f64
    # beneath the condition.
    module = _module([
        WasmInstr("block", "i32"),
        WasmInstr("f64.const", 1.0),
        WasmInstr("i32.const", 1),
        WasmInstr("br_if", 0),
        WasmInstr("end"),
    ])
    assert _err(module) == "f: type mismatch: expected i32, got f64"


def test_bad_alignment_exact_message():
    # i32.load is 4 bytes wide; alignment 2**3 = 8 exceeds it.
    module = _module([
        WasmInstr("i32.const", 0),
        WasmInstr("i32.load", 3, 0),
    ])
    assert _err(module) == "f: i32.load: alignment 2**3 exceeds width"


def test_call_arity_underflow():
    # Function 0 takes two i32 params; only one is on the stack.
    module = WasmModule("test")
    module.types.append(WasmFuncType(("i32", "i32"), ("i32",)))
    module.types.append(WasmFuncType((), ("i32",)))
    module.functions.append(WasmFunction(0, body=[
        WasmInstr("local.get", 0),
        WasmInstr("local.get", 1),
        WasmInstr("i32.add"),
    ], name="callee"))
    module.functions.append(WasmFunction(1, body=[
        WasmInstr("i32.const", 7),
        WasmInstr("call", 0),
    ], name="caller"))
    assert _err(module) == "caller: stack underflow (expected i32)"


def test_call_index_out_of_range():
    module = _module([
        WasmInstr("call", 5),
    ])
    assert _err(module) == "f: call to function index 5 out of range"


def test_branch_depth_out_of_range():
    module = _module([
        WasmInstr("br", 2),
    ], results=())
    assert _err(module) == "f: branch depth 2 out of range"


def test_local_index_out_of_range():
    module = _module([
        WasmInstr("local.get", 3),
    ], locals_=("i32",))
    assert _err(module) == "f: local index 3 out of range"


def test_stack_height_mismatch_at_end():
    # A value left behind in a void block.
    module = _module([
        WasmInstr("block", None),
        WasmInstr("i32.const", 1),
        WasmInstr("end"),
        WasmInstr("i32.const", 0),
    ])
    assert _err(module) == "f: stack height mismatch at end of block"


def test_valid_module_accepted():
    module = _module([
        WasmInstr("i32.const", 1),
        WasmInstr("i32.const", 2),
        WasmInstr("i32.add"),
    ])
    validate_module(module)  # must not raise
