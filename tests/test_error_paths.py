"""Error paths: the toolchain fails loudly and precisely, never silently."""

import pytest

from repro.errors import CompileError, TrapError, ValidationError


class TestFrontendErrors:
    def test_syntax_error_has_position(self):
        from repro.mcc import compile_source
        with pytest.raises(CompileError) as exc:
            compile_source("int main(void) { int x = ; }", "t",
                           with_stdlib=False)
        assert "at" in str(exc.value)

    def test_type_error_message_names_the_problem(self):
        from repro.mcc import compile_source
        with pytest.raises(CompileError, match="undeclared"):
            compile_source("int main(void) { return ghost; }", "t",
                           with_stdlib=False)

    def test_break_outside_loop(self):
        from repro.mcc import compile_source
        with pytest.raises(CompileError, match="break"):
            compile_source("int main(void) { break; return 0; }", "t")

    def test_fn_pointer_signature_mismatch(self):
        from repro.mcc import compile_source
        with pytest.raises(CompileError):
            compile_source("""
int f(int a, int b) { return a + b; }
int (*fp)(int) = f;
int main(void) { return fp(1); }
""", "t")


class TestTranslatorErrors:
    def test_f32_rejected_with_clear_message(self):
        from repro.jit import wasm_to_ir
        from repro.wasm import parse_wat

        module = parse_wat("""
(module
  (memory 1)
  (func $f (param f32) (result f32) local.get 0)
  (export "f" (func $f)))
""")
        with pytest.raises(CompileError, match="f32"):
            wasm_to_ir(module)


class TestRuntimeTraps:
    def test_out_of_bounds_with_context(self, tmp_path):
        from conftest import run_native
        with pytest.raises(TrapError) as exc:
            run_native("""
int main(void) {
    int *p = (int *)100000000;
    return *p;
}
""")
        assert "in main at #" in str(exc.value)

    def test_instruction_budget(self):
        from conftest import run_native
        with pytest.raises(TrapError, match="budget"):
            run_native("int main(void) { while (1) { } return 0; }",
                       max_instructions=10_000)

    def test_stack_overflow_check_fires_in_jit(self):
        from conftest import run_engine
        from repro.jit import CHROME_ENGINE
        with pytest.raises(TrapError, match="stack overflow|budget"):
            run_engine("""
int dive(int n) { return dive(n + 1); }
int main(void) { return dive(0); }
""", CHROME_ENGINE, max_instructions=100_000_000)

    def test_wasm_interp_stack_exhaustion(self):
        from conftest import run_wasm_interp
        with pytest.raises(TrapError, match="stack"):
            run_wasm_interp("""
int dive(int n) { return dive(n + 1); }
int main(void) { return dive(0); }
""")


class TestValidatorErrors:
    def test_messages_name_the_function(self):
        from repro.wasm import (
            WasmFuncType, WasmFunction, WasmInstr, WasmModule,
            validate_module,
        )
        module = WasmModule("m")
        ti = module.type_index(WasmFuncType((), ("i32",)))
        module.functions.append(
            WasmFunction(ti, [], [WasmInstr("i32.add")], "broken_fn"))
        with pytest.raises(ValidationError, match="broken_fn"):
            validate_module(module)
