"""Property-based differential testing: random programs, equal behaviour.

Hypothesis generates small integer programs (expression trees over locals
plus a loop) and the test requires the native x86 pipeline and the Chrome
wasm pipeline to match the IR reference interpreter exactly.  Division is
generated with guarded denominators so programs are trap-free.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import run_engine, run_ir, run_native

from repro.jit import CHROME_ENGINE


@st.composite
def expressions(draw, depth=0):
    """A C expression over variables a, b, c — total and trap-free."""
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from([
            "a", "b", "c",
            str(draw(st.integers(min_value=-100, max_value=100))),
        ]))
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "%", "/",
                               "<<", ">>"]))
    lhs = draw(expressions(depth=depth + 1))
    rhs = draw(expressions(depth=depth + 1))
    if op in ("%", "/"):
        # Guarded denominator: never zero.
        return f"(({lhs}) {op} ((({rhs}) & 7) + 1))"
    if op in ("<<", ">>"):
        return f"(({lhs}) {op} ((({rhs})) & 7))"
    return f"(({lhs}) {op} ({rhs}))"


@st.composite
def programs(draw):
    exprs = [draw(expressions()) for _ in range(draw(
        st.integers(min_value=1, max_value=3)))]
    updates = "\n".join(
        f"        acc = acc * 5 + ({e});" for e in exprs)
    a0 = draw(st.integers(min_value=-50, max_value=50))
    b0 = draw(st.integers(min_value=-50, max_value=50))
    iters = draw(st.integers(min_value=1, max_value=8))
    return f"""
int main(void) {{
    int a = {a0};
    int b = {b0};
    int c = 1;
    int acc = 0;
    int i;
    for (i = 0; i < {iters}; i++) {{
{updates}
        a = a + 3;
        b = b ^ acc;
        c = (acc & 15) + 1;
    }}
    print_i32(acc);
    print_i32(a);
    print_i32(b);
    return 0;
}}
"""


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(programs())
def test_random_programs_native_matches_reference(source):
    ref_value, ref_out = run_ir(source)
    rc, out, _ = run_native(source)
    assert out == ref_out
    assert rc == (ref_value or 0) & 0xFFFFFFFF


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(programs())
def test_random_programs_chrome_matches_reference(source):
    ref_value, ref_out = run_ir(source)
    rc, out, _ = run_engine(source, CHROME_ENGINE)
    assert out == ref_out
    assert rc == (ref_value or 0) & 0xFFFFFFFF


@st.composite
def array_programs(draw):
    """Programs with a global array, a helper function, and guarded
    index arithmetic."""
    size = draw(st.integers(min_value=4, max_value=16))
    seed_exprs = [draw(expressions()) for _ in range(2)]
    helper_expr = draw(expressions())
    iters = draw(st.integers(min_value=2, max_value=10))
    stride = draw(st.integers(min_value=1, max_value=7))
    return f"""
int table[{size}];

int helper(int a, int b) {{
    int c = a ^ b;
    return ({helper_expr}) + table[((a & 0x7fffffff) %% {size})];
}}

int main(void) {{
    int i;
    int a = 3; int b = -7; int c = 2;
    for (i = 0; i < {size}; i++) {{
        table[i] = ({seed_exprs[0]}) + i * {stride};
        a = a + 1;
    }}
    int acc = 0;
    for (i = 0; i < {iters}; i++) {{
        acc = acc * 7 + helper(acc + i, {seed_exprs[1]});
        b = acc >> 2;
        c = (acc & 7) + 1;
        table[(acc & 0x7fffffff) %% {size}] = acc;
    }}
    for (i = 0; i < {size}; i++) {{
        print_i32(table[i]);
    }}
    print_i32(acc);
    return 0;
}}
""".replace("%%", "%")


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(array_programs())
def test_random_array_programs_native_matches_reference(source):
    ref_value, ref_out = run_ir(source)
    rc, out, _ = run_native(source)
    assert out == ref_out


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(array_programs())
def test_random_array_programs_chrome_matches_reference(source):
    ref_value, ref_out = run_ir(source)
    rc, out, _ = run_engine(source, CHROME_ENGINE)
    assert out == ref_out
