"""Pass-blaming IR verification: a deliberately broken pass is named in
the diagnostic, the gate is cheap when off, and the strict def-before-use
check catches what the weak one cannot."""

import pytest

from repro.ir import (CondBr, Const, FuncType, Function, Jump, Module,
                      Move, Return, Type, VerifyError, verify_function)
from repro.ir.passes import PassBlameError, optimize_module, verify_after_pass
from repro.ir.verify import set_verify_ir, verify_ir_enabled
from repro.mcc import compile_source


def _partially_assigned():
    """%t is defined on only one path to its use — the weak
    "defined-anywhere" check passes, the strict one must not."""
    func = Function("main", FuncType([Type.I32], [Type.I32]))
    func.params.append(func.new_vreg(Type.I32, "p"))
    entry = func.new_block("entry")
    left = func.new_block("left")
    right = func.new_block("right")
    join = func.new_block("join")
    t = func.new_vreg(Type.I32, "t")
    entry.terminate(CondBr(func.params[0], left.label, right.label))
    left.append(Move(t, Const(1, Type.I32)))
    left.terminate(Jump(join.label))
    right.terminate(Jump(join.label))
    join.terminate(Return(t))
    return func, t


def test_strict_verifier_rejects_partial_assignment():
    func, t = _partially_assigned()
    with pytest.raises(VerifyError, match="definition on every path") as excinfo:
        verify_function(func)
    assert excinfo.value.detail == "def-before-use of %t:i32"


def test_broken_pass_is_blamed_with_function_and_block():
    func, t = _partially_assigned()
    with pytest.raises(PassBlameError) as excinfo:
        verify_after_pass("licm", func)
    message = str(excinfo.value)
    assert message.startswith(
        "pass `licm` broke def-before-use of %t:i32 in `main/join3`")
    assert excinfo.value.pass_name == "licm"
    assert excinfo.value.function == "main"
    assert excinfo.value.block == "join3"


def test_blame_names_the_breaking_pass_not_a_later_one():
    # A PassBlameError must pass through verify_after_pass untouched —
    # re-verifying under another pass name must not re-blame.
    func, _ = _partially_assigned()
    with pytest.raises(PassBlameError, match=r"pass `dce`"):
        try:
            verify_after_pass("dce", func)
        except PassBlameError:
            raise
        except VerifyError:  # pragma: no cover - wrong path
            pytest.fail("expected blame")


def test_verify_after_pass_noop_when_disabled():
    assert verify_ir_enabled()  # conftest turns it on
    set_verify_ir(False)
    try:
        func, _ = _partially_assigned()
        verify_after_pass("licm", func)  # must not raise
    finally:
        set_verify_ir(True)


def test_valid_ir_passes_strict_verification():
    source = """
    int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main(void) { return fib(10); }
    """
    module = compile_source(source, "ok")
    for func in module.functions.values():
        verify_function(func, module)
    optimize_module(module)  # verify_after_pass fires between passes
    for func in module.functions.values():
        verify_function(func, module)


def test_optimize_module_blames_a_sabotaged_pass(monkeypatch):
    """End-to-end: sabotage a real pipeline pass so it deletes a
    definition, and check optimize_module surfaces a PassBlameError
    naming that pass."""
    from repro.ir import passes as passes_mod

    real_licm = passes_mod.hoist_invariants

    def sabotaged(func, *args, **kwargs):
        result = real_licm(func, *args, **kwargs)
        for block in func.blocks.values():
            for index, instr in enumerate(block.instrs):
                if isinstance(instr, Move) and instr.defs():
                    reg = instr.dst
                    used_later = any(
                        reg.id in {u.id for u in other.uses()}
                        for other_block in func.blocks.values()
                        for other in other_block.all_instrs()
                        if other is not instr)
                    if used_later:
                        del block.instrs[index]
                        return result
        return result

    monkeypatch.setattr(passes_mod, "hoist_invariants", sabotaged)

    source = """
    int main(void) {
        int acc = 0;
        int i = 0;
        while (i < 10) {
            acc = acc + i;
            i = i + 1;
        }
        return acc;
    }
    """
    module = compile_source(source, "sabotage")
    with pytest.raises(PassBlameError) as excinfo:
        optimize_module(module)
    assert excinfo.value.pass_name == "licm"
    assert "pass `licm` broke" in str(excinfo.value)


def test_input_ir_failures_are_not_blamed_on_a_pass():
    """optimize_module verifies its input before running anything; a bad
    input must raise a plain VerifyError, not a PassBlameError."""
    func, _ = _partially_assigned()
    module = Module("bad")
    module.functions[func.name] = func
    with pytest.raises(VerifyError) as excinfo:
        optimize_module(module)
    assert not isinstance(excinfo.value, PassBlameError)
