"""The SPEC proxies must keep the code shapes DESIGN.md promises.

These tests pin the *mechanism* behind each benchmark's paper behaviour,
so a future edit that accidentally removes a characteristic (say, inlines
away gobmk's call pressure) fails loudly rather than silently shifting
the reproduced figures.
"""

import pytest

from repro.benchsuite import spec_benchmark
from repro.harness.runner import compile_benchmark, run_compiled
from repro.ir.instructions import Call, CallIndirect
from repro.ir.loops import natural_loops
from repro.ir.passes import optimize_module
from repro.mcc import compile_source


def optimized_ir(name, size="test"):
    spec = spec_benchmark(name, size)
    module = compile_source(spec.source, name)
    optimize_module(module, level=2)
    return module


def test_mcf_has_one_dominant_callfree_hot_loop():
    module = optimized_ir("429.mcf", "ref")
    func = module.functions["price_sweep"]
    loops = natural_loops(func)
    assert len(loops) == 1
    body_instrs = [i for label in loops[0].body
                   for i in func.blocks[label].all_instrs()]
    assert not any(isinstance(i, (Call, CallIndirect))
                   for i in body_instrs)
    # Big enough to be an unrolling target (the anomaly's precondition).
    assert len(body_instrs) > 60


def test_gobmk_is_call_dense():
    def call_density(name):
        spec = spec_benchmark(name, "ref")
        compiled = compile_benchmark(spec, ("native",))
        perf = run_compiled(compiled, "native", runs=1).run.perf
        return perf.calls / perf.instructions

    # Recursion-driven gobmk is far more call-dense than the
    # loop-structured lbm (its stack-check overhead driver).
    assert call_density("445.gobmk") > 5 * call_density("470.lbm")


def test_indirect_call_proxies_perform_indirect_calls():
    for name in ("450.soplex", "453.povray", "482.sphinx3"):
        module = optimized_ir(name)
        sites = [i for f in module.functions.values()
                 for b in f.blocks.values() for i in b.instrs
                 if isinstance(i, CallIndirect)]
        assert sites, f"{name} lost its indirect calls"


def test_h264ref_appends_per_macroblock():
    spec = spec_benchmark("464.h264ref", "ref")
    compiled = compile_benchmark(spec, ("native",))
    result = run_compiled(compiled, "native", runs=1)
    # One write per macroblock (40 at ref size) plus open/close/reads.
    assert result.run.syscalls >= 40


def test_sjeng_has_large_switch_dense_footprint():
    spec = spec_benchmark("458.sjeng", "ref")
    compiled = compile_benchmark(spec, ("native", "chrome"))
    native_evals = sum(
        f.code_size() for name, f in compiled.programs["native"]
        .functions.items() if name.startswith("eval"))
    chrome_evals = sum(
        f.code_size() for name, f in compiled.programs["chrome"]
        .functions.items() if name.startswith("eval"))
    assert native_evals > 2000          # several KB of evaluator code
    assert chrome_evals > native_evals * 0.8


def test_lbm_is_memory_bound():
    spec = spec_benchmark("470.lbm", "test")
    compiled = compile_benchmark(spec, ("native",))
    perf = run_compiled(compiled, "native", runs=1).run.perf
    # Loads+stores form a large share of the instruction stream.  The
    # bar is 1/6: the SSA mid-end eliminated the spill reloads that
    # used to pad the load count, so only the lattice traffic remains.
    assert (perf.loads + perf.stores) * 6 > perf.instructions


def test_bzip2_is_byte_oriented():
    module = optimized_ir("401.bzip2")
    from repro.ir.instructions import Load, Store
    byte_ops = [i for f in module.functions.values()
                for b in f.blocks.values() for i in b.instrs
                if isinstance(i, (Load, Store)) and i.size == 1]
    assert len(byte_ops) > 10


def test_every_proxy_prints_a_checksum():
    from repro.benchsuite import SPEC_NAMES
    for name in SPEC_NAMES:
        source = spec_benchmark(name, "test").source
        assert "print_i32" in source or "print_f64" in source, name
