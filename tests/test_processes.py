"""Multi-process workflows under Browsix-Wasm: pipes between programs.

Models the harness's runspec -> specinvoke -> benchmark chain (paper §3):
one compiled program's stdout feeds another program's stdin through a
kernel pipe, each running in its own process.
"""

from repro.browser.browser import execute_program
from repro.codegen.emscripten import compile_emscripten
from repro.jit import CHROME_ENGINE
from repro.kernel import BrowsixRuntime, Kernel
from repro.wasm import encode_module

PRODUCER = """
char line[16];
int main(void) {
    int i;
    for (i = 1; i <= 5; i++) {
        line[0] = (char)('0' + i);
        line[1] = '\\n';
        sys_write(1, line, 2);
    }
    return 0;
}
"""

CONSUMER = """
char buf[64];
int main(void) {
    int n = sys_read(0, buf, 64);
    int sum = 0;
    int i;
    for (i = 0; i < n; i++) {
        if (buf[i] >= '0' && buf[i] <= '9') {
            sum += buf[i] - '0';
        }
    }
    print_i32(n);
    print_i32(sum);
    return 0;
}
"""

SELF_PIPE = """
int fds[2];
char msg[8];
char back[8];
int main(void) {
    sys_pipe(fds);
    msg[0] = 'h'; msg[1] = 'i';
    sys_write(fds[1], msg, 2);
    int n = sys_read(fds[0], back, 8);
    print_i32(n);
    print_i32(back[0] == 'h');
    print_i32(back[1] == 'i');
    sys_close(fds[0]);
    sys_close(fds[1]);
    return 0;
}
"""


def _compile(source, name):
    wasm, _ = compile_emscripten(source, name)
    return CHROME_ENGINE.compile_bytes(encode_module(wasm))


def test_sys_pipe_loopback():
    program = _compile(SELF_PIPE, "selfpipe")
    kernel = Kernel()
    process = kernel.spawn("selfpipe")
    runtime = BrowsixRuntime(kernel, process, program.heap_base)
    result = execute_program(program, runtime, "selfpipe")
    assert result.stdout == b"2\n1\n1\n"


def test_producer_consumer_across_processes():
    kernel = Kernel()

    producer_prog = _compile(PRODUCER, "producer")
    producer = kernel.spawn("producer")
    producer_rt = BrowsixRuntime(kernel, producer, producer_prog.heap_base)
    result = execute_program(producer_prog, producer_rt, "producer")
    assert result.exit_code == 0

    # Chain: the producer's stdout pipe becomes the consumer's stdin.
    consumer_prog = _compile(CONSUMER, "consumer")
    consumer = kernel.spawn("consumer")
    kernel.connect_stdin(consumer, producer.stdout)
    consumer_rt = BrowsixRuntime(kernel, consumer, consumer_prog.heap_base)
    result = execute_program(consumer_prog, consumer_rt, "consumer")
    assert result.stdout == b"10\n15\n"  # 5 lines of 2 bytes; 1+2+3+4+5

    # Both processes exist in the kernel's table with distinct pids.
    pids = [p.pid for p in kernel.processes.values()]
    assert len(set(pids)) == len(pids) >= 2


def test_pipe_overhead_is_charged():
    program = _compile(SELF_PIPE, "selfpipe")
    kernel = Kernel()
    process = kernel.spawn("p")
    runtime = BrowsixRuntime(kernel, process, program.heap_base)
    execute_program(program, runtime, "p")
    assert runtime.syscall_count >= 5   # pipe, write, read, 2 closes, prints
    assert kernel.cycles > 0
