"""Language semantics via the IR reference interpreter.

These tests pin down what mcc programs *mean*; every backend is then held
to the same behaviour by the differential tests.
"""

import pytest

from conftest import run_ir


def expect(source, stdout, rc=0):
    value, out = run_ir(source)
    assert out == stdout.encode()
    assert (value or 0) == rc


def test_arithmetic_and_precedence():
    expect("int main(void){ print_i32(2 + 3 * 4 - 6 / 2); return 0; }",
           "11\n")


def test_signed_division_truncates_toward_zero():
    expect("int main(void){ print_i32(-7 / 2); print_i32(7 / -2); "
           "print_i32(-7 %% 2); return 0; }".replace("%%", "%"),
           "-3\n-3\n-1\n")


def test_integer_overflow_wraps():
    expect("int main(void){ int x = 2147483647; x = x + 1; "
           "print_i32(x); return 0; }", "-2147483648\n")


def test_shift_semantics():
    expect("int main(void){ int a = 1 << 31; print_i32(a >> 1); "
           "print_i32((a >> 31) & 1); return 0; }",
           "-1073741824\n1\n")


def test_long_arithmetic():
    expect("int main(void){ long a = 3000000000L; "
           "print_i64(a * 3L); return 0; }", "9000000000\n")


def test_int_long_conversions():
    expect("int main(void){ long a = -5; int b = (int)(a * 1000000000L); "
           "print_i32(b); print_i64((long)b); return 0; }",
           "-705032704\n-705032704\n")


def test_double_arithmetic_and_conversion():
    expect("int main(void){ double d = 7.0 / 2.0; print_f64(d); "
           "print_i32((int)d); return 0; }", "3.500000\n3\n")


def test_char_is_signed_and_truncates():
    expect("int main(void){ char c = (char)200; print_i32(c); "
           "return 0; }", "-56\n")


def test_logical_operators_short_circuit():
    source = """
int calls = 0;
int bump(void) { calls++; return 1; }
int main(void) {
    int a = 0 && bump();
    int b = 1 || bump();
    print_i32(a); print_i32(b); print_i32(calls);
    return 0;
}
"""
    expect(source, "0\n1\n0\n")


def test_ternary_evaluates_one_arm():
    source = """
int hits = 0;
int side(int v) { hits++; return v; }
int main(void) {
    int x = 1 ? side(10) : side(20);
    print_i32(x); print_i32(hits);
    return 0;
}
"""
    expect(source, "10\n1\n")


def test_while_break_continue():
    source = """
int main(void) {
    int i = 0; int sum = 0;
    while (1) {
        i++;
        if (i > 10) { break; }
        if (i % 2 == 0) { continue; }
        sum += i;
    }
    print_i32(sum);
    return 0;
}
"""
    expect(source, "25\n")


def test_do_while_runs_once():
    expect("int main(void){ int i = 100; int n = 0; "
           "do { n++; } while (i < 10); print_i32(n); return 0; }",
           "1\n")


def test_switch_fallthrough_and_default():
    source = """
int classify(int v) {
    int r = 0;
    switch (v) {
    case 0: r += 1;
    case 1: r += 2; break;
    case 2: r += 4; break;
    default: r = 99;
    }
    return r;
}
int main(void) {
    print_i32(classify(0));
    print_i32(classify(1));
    print_i32(classify(2));
    print_i32(classify(7));
    return 0;
}
"""
    expect(source, "3\n2\n4\n99\n")


def test_recursion():
    source = """
int ack(int m, int n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}
int main(void) { print_i32(ack(2, 3)); return 0; }
"""
    expect(source, "9\n")


def test_global_array_initializer():
    source = """
int table[5] = { 10, 20, 30 };
int main(void) {
    print_i32(table[0] + table[2] + table[4]);
    return 0;
}
"""
    expect(source, "40\n")


def test_2d_array_initializer():
    source = """
int m[2][3] = { {1, 2, 3}, {4, 5} };
int main(void) {
    print_i32(m[0][0] + m[0][2] + m[1][0] + m[1][2]);
    return 0;
}
"""
    expect(source, "8\n")


def test_local_array_and_pointer_walk():
    source = """
int main(void) {
    int a[4] = { 2, 4, 6, 8 };
    int *p = a;
    int sum = 0;
    while (p < a + 4) {
        sum += *p;
        p++;
    }
    print_i32(sum);
    return 0;
}
"""
    expect(source, "20\n")


def test_struct_fields_and_pointers():
    source = """
struct Vec { double x; double y; };
struct Vec vs[2];
double dot(struct Vec *a, struct Vec *b) {
    return a->x * b->x + a->y * b->y;
}
int main(void) {
    vs[0].x = 3.0; vs[0].y = 4.0;
    vs[1].x = 1.0; vs[1].y = 2.0;
    print_f64(dot(&vs[0], &vs[1]));
    return 0;
}
"""
    expect(source, "11.000000\n")


def test_nested_struct_member_through_array():
    source = """
struct Inner { int v; };
struct Outer { int pad; struct Inner inner; };
struct Outer items[3];
int main(void) {
    items[2].inner.v = 42;
    print_i32(items[2].inner.v);
    return 0;
}
"""
    expect(source, "42\n")


def test_function_pointers_and_tables():
    source = """
int twice(int x) { return 2 * x; }
int square(int x) { return x * x; }
int (*ops[2])(int) = { twice, square };
int apply(int (*f)(int), int v) { return f(v); }
int main(void) {
    print_i32(apply(ops[0], 5));
    print_i32(apply(ops[1], 5));
    int (*g)(int) = square;
    print_i32(g(7));
    return 0;
}
"""
    expect(source, "10\n25\n49\n")


def test_string_literals_and_strlen():
    expect('int main(void){ print_i32(strlen("hello world")); '
           'print_str("ok\\n"); return 0; }', "11\nok\n")


def test_malloc_and_memset():
    source = """
int main(void) {
    char *p = malloc(16);
    memset(p, 7, 16);
    int sum = 0;
    int i;
    for (i = 0; i < 16; i++) { sum += p[i]; }
    print_i32(sum);
    char *q = malloc(8);
    print_i32(q > p);
    return 0;
}
"""
    expect(source, "112\n1\n")


def test_sizeof():
    expect("int main(void){ print_i32(sizeof(int)); "
           "print_i32(sizeof(double)); print_i32(sizeof(char *)); "
           "return 0; }", "4\n8\n4\n")


def test_libm_sqrt_exp_log_pow():
    source = """
int main(void) {
    print_f64(sqrt(16.0));
    print_f64(exp(0.0));
    print_f64(log(1.0));
    print_f64(pow(3.0, 4.0));
    return 0;
}
"""
    value, out = run_ir(source)
    lines = out.decode().splitlines()
    assert abs(float(lines[0]) - 4.0) < 1e-9
    assert abs(float(lines[1]) - 1.0) < 1e-9
    assert abs(float(lines[2]) - 0.0) < 1e-9
    assert abs(float(lines[3]) - 81.0) < 1e-6


def test_pre_and_post_increment():
    source = """
int main(void) {
    int i = 5;
    print_i32(i++);
    print_i32(i);
    print_i32(++i);
    int a[3] = { 1, 2, 3 };
    int j = 0;
    print_i32(a[j++] + a[j]);
    return 0;
}
"""
    expect(source, "5\n6\n7\n3\n")


def test_compound_assignments():
    source = """
int main(void) {
    int x = 10;
    x += 5; x -= 3; x *= 2; x /= 4; x %= 4;
    print_i32(x);
    double d = 8.0;
    d /= 2.0;
    print_f64(d);
    int *p = malloc(12);
    int *q = (int *)p;
    q += 2;
    print_i32(q - (int *)p);
    return 0;
}
"""
    expect(source, "2\n4.000000\n2\n")


def test_division_by_zero_traps():
    from repro.errors import TrapError
    with pytest.raises(TrapError):
        run_ir("int main(void){ int z = 0; return 5 / z; }")


def test_main_return_code():
    expect("int main(void){ return 42; }", "", rc=42)
