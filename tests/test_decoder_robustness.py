"""Fuzz the binary decoder: corrupted modules must fail with the
toolchain's own exceptions, never with raw Python errors."""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import compile_wasm_bytes

from repro.errors import ReproError, TrapError, ValidationError
from repro.wasm import WasmInstance, decode_module, validate_module

_DATA, _, _ = compile_wasm_bytes("""
int helper(int x) { return x * 3 + 1; }
int main(void) {
    int i; int s = 0;
    for (i = 0; i < 5; i++) { s += helper(i); }
    print_i32(s);
    return 0;
}
""")


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=8, max_value=len(_DATA) - 1),
       st.integers(min_value=0, max_value=255))
def test_single_byte_corruption_never_escapes(position, value):
    corrupted = bytearray(_DATA)
    corrupted[position] = value
    try:
        module = decode_module(bytes(corrupted))
        validate_module(module)
    except (ValidationError, TrapError):
        return  # rejected cleanly
    except (IndexError, KeyError, ValueError, OverflowError,
            UnicodeDecodeError, MemoryError, struct_error()):
        raise AssertionError(
            f"decoder leaked a raw exception at byte {position}")
    # Decoded and validated: the mutation was semantically harmless
    # (e.g. inside a data segment).  That's fine.


def struct_error():
    import struct
    return struct.error


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=8, max_value=len(_DATA) - 8),
       st.integers(min_value=1, max_value=16))
def test_truncation_never_escapes(cut_at, tail):
    truncated = _DATA[:cut_at]
    try:
        module = decode_module(truncated)
        validate_module(module)
    except ReproError:
        return
    except Exception as exc:  # noqa: BLE001 - the point of the test
        raise AssertionError(f"decoder leaked {type(exc).__name__}: {exc}")


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_garbage_prefixed_with_magic_never_escapes(blob):
    data = b"\x00asm\x01\x00\x00\x00" + blob
    try:
        module = decode_module(data)
        validate_module(module)
        WasmInstance(module)
    except ReproError:
        return
    except Exception as exc:  # noqa: BLE001
        raise AssertionError(f"decoder leaked {type(exc).__name__}: {exc}")
