"""WAT text format: print/parse round trips and hand-written modules."""

import pytest

from conftest import compile_wasm_bytes

from repro.errors import ValidationError
from repro.wasm import (
    WasmInstance, encode_module, format_module, validate_module,
)
from repro.wasm.text import parse_wat


def test_hand_written_module_runs():
    module = parse_wat("""
(module
  (memory 1)
  (func $add (param i32 i32) (result i32)
    local.get 0
    local.get 1
    i32.add)
  (export "add" (func $add)))
""")
    validate_module(module)
    instance = WasmInstance(module)
    assert instance.invoke("add", [30, 12]) == 42


def test_hand_written_loop():
    module = parse_wat("""
(module
  (memory 1)
  (func $sum_to (param i32) (result i32) (local i32 i32)
    loop
      local.get 1
      i32.const 1
      i32.add
      local.set 1
      local.get 2
      local.get 1
      i32.add
      local.set 2
      local.get 1
      local.get 0
      i32.lt_s
      br_if 0
    end
    local.get 2)
  (export "sum_to" (func $sum_to)))
""")
    validate_module(module)
    assert WasmInstance(module).invoke("sum_to", [10]) == 55


def test_block_with_result_annotation():
    module = parse_wat("""
(module
  (memory 1)
  (func $f (result i32)
    block (result i32)
      i32.const 7
    end)
  (export "f" (func $f)))
""")
    validate_module(module)
    assert WasmInstance(module).invoke("f") == 7


def test_data_segment_with_escapes():
    module = parse_wat(r"""
(module
  (memory 1)
  (data (i32.const 16) "AB\00\ff\"\\")
  (func $peek (param i32) (result i32)
    local.get 0
    i32.load8_u 0 0)
  (export "peek" (func $peek)))
""")
    instance = WasmInstance(module)
    assert instance.invoke("peek", [16]) == ord("A")
    assert instance.invoke("peek", [18]) == 0
    assert instance.invoke("peek", [19]) == 0xFF
    assert instance.invoke("peek", [20]) == ord('"')
    assert instance.invoke("peek", [21]) == ord("\\")


def test_print_parse_roundtrip_full_program():
    source = """
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int helper(int x) { return fib(x) * 2; }
int (*fp)(int) = helper;
int main(void) {
    print_i32(fp(10));
    print_f64(3.25 * 2.0);
    return 0;
}
"""
    data, wasm, ir = compile_wasm_bytes(source)
    text = format_module(wasm)
    parsed = parse_wat(text)
    validate_module(parsed)
    # Structure survives: same counts everywhere.
    assert len(parsed.functions) == len(wasm.functions)
    assert len(parsed.imports) == len(wasm.imports)
    assert len(parsed.types) == len(wasm.types)
    assert parsed.table == wasm.table
    assert len(parsed.globals) == len(wasm.globals)
    assert [len(f.body) for f in parsed.functions] == \
        [len(f.body) for f in wasm.functions]
    # And the re-encoded binary is identical byte for byte.
    assert encode_module(parsed) == data


def test_roundtrip_preserves_execution():
    source = """
int main(void) {
    int acc = 0;
    int i;
    for (i = 0; i < 25; i++) { acc = acc * 3 + i; acc %= 10007; }
    print_i32(acc);
    return 0;
}
"""
    _, wasm, ir = compile_wasm_bytes(source)
    parsed = parse_wat(format_module(wasm))

    from conftest import GuestHost
    outs = []
    for module in (wasm, parsed):
        host = GuestHost(ir.heap_base)
        WasmInstance(module, host=host).invoke("main")
        outs.append(bytes(host.output))
    assert outs[0] == outs[1]


def test_parse_errors():
    with pytest.raises(ValidationError):
        parse_wat("(module (func $f")          # unbalanced
    with pytest.raises(ValidationError):
        parse_wat("(func $f)")                 # not a module
    with pytest.raises(ValidationError):
        parse_wat("(module (bogus-field))")
    with pytest.raises(ValidationError):
        parse_wat('(module (func $f (result i32) not.an.op))')


def test_comments_are_ignored():
    module = parse_wat("""
(module ;; line comment
  (; block
     comment ;)
  (memory 1)
  (func $f (result i32) i32.const 3)
  (export "f" (func 0)))
""")
    assert WasmInstance(module).invoke("f") == 3
