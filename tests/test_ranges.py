"""Interval range analysis: domain algebra, widening termination,
check elision in the tiered engines, the runtime soundness oracle
(``--check-ranges``), bit-identity for non-eliding engines, and
compile-cache freshness across every range-configuration toggle."""

import random

import pytest

from conftest import (GuestHost, compile_wasm_bytes, run_engine, run_ir,
                      run_native)

from repro.benchsuite import polybench_benchmark
from repro.dataflow.interval import (Ival, analyze_function, transfer_binop,
                                     transfer_unop)
from repro.harness.compilecache import CompileCache
from repro.harness.runner import compile_benchmark, run_compiled
from repro.ir.passes import (jit_pipeline_fingerprint,
                             opt_pipeline_fingerprint)
from repro.ir.passes.ranges import ranges_enabled, set_ranges
from repro.ir.verify import (RangeOracleError, check_ranges_enabled,
                             set_check_ranges)
from repro.jit import CHROME_ENGINE, CHROME_TIERED, FIREFOX_TIERED
from repro.mcc import compile_source
from repro.tier import set_tier
from repro.wasm import WasmInstance, encode_module
from repro.wasm.binary import decode_module
from repro.x86 import X86Machine


@pytest.fixture
def range_config():
    """Snapshot/restore the process-wide range + tier configuration."""
    ranges = ranges_enabled()
    check = check_ranges_enabled()
    yield
    set_ranges(ranges)
    set_check_ranges(check)
    set_tier(None)


# -- the Ival domain -------------------------------------------------------

def test_const_and_top():
    five = Ival.const(5, 32)
    assert five.is_const and not five.is_top
    assert five.contains(5) and not five.contains(6)
    top = Ival.top(32)
    assert top.is_top
    assert top.contains(0) and top.contains(0xFFFFFFFF)


def test_make_clamps_to_known_bits():
    # With the sign bit impossible the range is forced non-negative.
    iv = Ival.make(32, -4, 100, maybe=0x7)
    assert iv.lo == 0 and iv.hi == 7


def test_and_mask_gives_tight_range():
    iv = transfer_binop("and", Ival.top(32), Ival.const(7, 32), 32)
    assert (iv.lo, iv.hi) == (0, 7)
    assert iv.contains(3) and not iv.contains(8)


def test_join_meet_widen_laws():
    a = Ival.make(32, 0, 10)
    b = Ival.make(32, 5, 20)
    j = a.join(b)
    assert j.covers(a) and j.covers(b)
    m = a.meet(b)
    assert (m.lo, m.hi) == (5, 10)
    w = a.widen(a.join(b))
    assert w.covers(a) and w.covers(b)
    # Widening twice reaches a fixpoint (no infinite ascending chain).
    assert w.widen(w) == w


def test_widen_jumps_to_bound():
    a = Ival.make(32, 0, 1)
    grown = a
    for step in range(2, 200):
        grown = grown.widen(Ival.make(32, 0, step))
        if grown.hi == Ival.top(32).hi:
            break
    else:
        pytest.fail("widening never reached the upper bound")
    assert step < 64, "widening chain too long"


def test_transfer_ops_sound_on_samples():
    rng = random.Random(1234)
    ops = ["add", "sub", "mul", "and", "or", "xor", "shl", "shr_u",
           "shr_s", "div_s", "div_u", "rem_s", "rem_u"]
    mask = 0xFFFFFFFF
    for _ in range(400):
        op = rng.choice(ops)
        x = rng.randrange(-50, 50)
        y = rng.randrange(1, 8) if op.startswith(("div", "rem", "sh")) \
            else rng.randrange(-50, 50)
        a = Ival.const(x, 32)
        b = Ival.const(y, 32)
        iv = transfer_binop(op, a, b, 32)
        if iv is None:
            continue
        ux, uy = x & mask, y & mask
        if op == "add":
            got = ux + uy
        elif op == "sub":
            got = ux - uy
        elif op == "mul":
            got = ux * uy
        elif op == "and":
            got = ux & uy
        elif op == "or":
            got = ux | uy
        elif op == "xor":
            got = ux ^ uy
        elif op == "shl":
            got = ux << (uy & 31)
        elif op == "shr_u":
            got = ux >> (uy & 31)
        elif op == "shr_s":
            got = x >> (uy & 31)
        elif op == "div_u":
            got = ux // uy
        elif op == "rem_u":
            got = ux % uy
        elif op == "div_s":
            got = int(x / y) if y else 0
        else:  # rem_s
            got = x - int(x / y) * y if y else 0
        assert iv.contains(got & mask), f"{op}({x},{y}) = {got} not in {iv!r}"


def test_unop_extensions():
    byte = Ival.make(32, 0, 255)
    widened = transfer_unop("i64_extend_i32_u", byte, 32, 64)
    assert widened.contains(255) and not widened.contains(256)
    flags = transfer_unop("eqz", Ival.top(32), 32, 32)
    assert (flags.lo, flags.hi) == (0, 1)


# -- analysis over compiled IR ---------------------------------------------

MASKED_LOOP = """
int data[16];

int sum(int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        acc = acc + data[i & 15];
    }
    return acc;
}

int main(void) {
    int i;
    for (i = 0; i < 16; i++) {
        data[i] = i * 3;
    }
    print_i32(sum(16));
    return 0;
}
"""


def test_analysis_proves_masked_index(range_config):
    module = compile_source(MASKED_LOOP, "test")
    func = module.functions["sum"]
    info = analyze_function(func, module)
    masked = [iv for iv in info.facts.values()
              if iv is not None and (iv.lo, iv.hi) == (0, 15)]
    assert masked, "no [0,15] fact for the masked index"


ADVERSARIAL_NEST = """
int main(void) {
    int a = 0;
    int b = 1;
    int c = -1;
    int i;
    int j;
    int k;
    for (i = 0; i < 100; i = i + 3) {
        for (j = 100; j > -50; j = j - 7) {
            b = b * 3 + j;
            for (k = 0; k != 64; k = (k + 5) & 63) {
                a = a + (b >> 1);
                c = c ^ (a << 2);
                if (a > 1000000) {
                    a = -a;
                }
            }
        }
        c = c - i;
    }
    print_i32(a + b + c);
    return 0;
}
"""


def test_widening_terminates_on_adversarial_nest(range_config):
    module = compile_source(ADVERSARIAL_NEST, "test")
    for func in module.functions.values():
        info = analyze_function(func, module)
        assert info.iterations < 100, \
            f"{func.name}: solver took {info.iterations} sweeps"


# -- check elision in the tiered engines -----------------------------------

def test_gemm_elision_meets_floor(range_config):
    set_tier("fuse")
    set_ranges(True)
    spec = polybench_benchmark("gemm", "test")
    compiled = compile_benchmark(spec, ("chrome", "chrome-tiered"),
                                 cache=False)
    stats = compiled.program_for("chrome-tiered").compile_stats["checks"]
    assert stats["stack_elided"] >= 0.25 * stats["stack_total"]
    assert stats["indirect_elided"] >= 0.50 * stats["indirect_total"]
    # The baseline 2019 engine must not elide anything.
    base = compiled.program_for("chrome").compile_stats["checks"]
    assert base["stack_elided"] == 0
    assert base["indirect_elided"] == 0
    # And elision must not change observable behaviour.
    ref = run_compiled(compiled, "chrome", runs=1)
    got = run_compiled(compiled, "chrome-tiered", runs=1)
    assert got.run.stdout == ref.run.stdout
    assert got.run.exit_code == ref.run.exit_code


def test_ranges_off_reverts_elision(range_config):
    set_tier("fuse")
    set_ranges(False)
    spec = polybench_benchmark("gemm", "test")
    compiled = compile_benchmark(spec, ("chrome-tiered",), cache=False)
    stats = compiled.program_for("chrome-tiered").compile_stats["checks"]
    assert stats["stack_elided"] == 0
    assert stats["indirect_elided"] == 0


def test_non_fuse_tier_never_elides(range_config):
    set_tier("quicken")
    set_ranges(True)
    spec = polybench_benchmark("gemm", "test")
    compiled = compile_benchmark(spec, ("chrome-tiered",), cache=False)
    stats = compiled.program_for("chrome-tiered").compile_stats["checks"]
    assert stats["stack_elided"] == 0
    assert stats["indirect_elided"] == 0


# -- bit-identity for non-eliding engines ----------------------------------

def _perf_tuple(machine):
    perf = machine.perf
    return (perf.instructions, perf.loads, perf.stores, perf.branches)


@pytest.mark.parametrize("engine", [CHROME_ENGINE], ids=["chrome"])
def test_ranges_toggle_is_invisible_to_baseline_engines(
        engine, range_config):
    set_ranges(True)
    rc1, out1, m1 = run_engine(MASKED_LOOP, engine)
    set_ranges(False)
    rc2, out2, m2 = run_engine(MASKED_LOOP, engine)
    assert (rc1, out1) == (rc2, out2)
    assert _perf_tuple(m1) == _perf_tuple(m2)


def test_oracle_off_by_default(range_config):
    assert not check_ranges_enabled() or True  # snapshot only
    data, wasm, _ir = compile_wasm_bytes(MASKED_LOOP)
    assert not wasm.ranges, "range facts embedded without --check-ranges"


# -- the runtime soundness oracle ------------------------------------------

def test_x86_oracle_clean_on_eliding_engine(range_config):
    set_tier("fuse")
    set_ranges(True)
    set_check_ranges(True)
    rc, out, machine = run_engine(MASKED_LOOP, CHROME_TIERED)
    ref_value, ref_out = run_ir(MASKED_LOOP)
    assert (rc, out) == ((ref_value or 0) & 0xFFFFFFFF, ref_out)


def test_x86_oracle_catches_planted_lie(range_config):
    set_tier("fuse")
    set_ranges(True)
    set_check_ranges(True)
    data, wasm, ir = compile_wasm_bytes(MASKED_LOOP)
    program = CHROME_TIERED.compile_bytes(data)
    planted = 0
    for func in program.functions.values():
        for ins in func.instrs:
            fact = getattr(ins, "assert_range", None)
            if fact is not None:
                # An interval no runtime value can satisfy.
                ins.assert_range = (fact[0], Ival(fact[1].bits, 1, 0, 0))
                planted += 1
    assert planted, "no range assertions attached under the oracle"
    host = GuestHost(program.heap_base)
    machine = X86Machine(program, host=host, max_instructions=50_000_000)
    with pytest.raises(RangeOracleError) as err:
        machine.call("main")
    assert "[pass: ranges]" in str(err.value)
    assert err.value.blamed == "ranges"


def test_wasm_oracle_round_trips_through_binary(range_config):
    set_check_ranges(True)
    data, wasm, _ir = compile_wasm_bytes(MASKED_LOOP)
    assert wasm.ranges, "no range facts embedded under --check-ranges"
    back = decode_module(data)
    assert back.ranges == wasm.ranges


def test_wasm_oracle_clean_and_catches_planted_lie(range_config):
    set_check_ranges(True)
    data, wasm, ir = compile_wasm_bytes(MASKED_LOOP)

    host = GuestHost(ir.heap_base)
    value = WasmInstance(wasm, host=host).invoke("main")
    ref_value, ref_out = run_ir(MASKED_LOOP)
    assert ((value or 0) & 0xFFFFFFFF, bytes(host.output)) == \
        ((ref_value or 0) & 0xFFFFFFFF, ref_out)

    for locs in wasm.ranges.values():
        for local in list(locs):
            bits, _lo, _hi, _maybe = locs[local]
            locs[local] = (bits, 1, 0, 0)
    host = GuestHost(ir.heap_base)
    with pytest.raises(RangeOracleError):
        WasmInstance(wasm, host=host).invoke("main")


SEEDED_TEMPLATE = """
int data[32];

int mix(int a, int b) {{
    int acc = 0;
    int i;
    for (i = 0; i < {iters}; i++) {{
        acc = acc * 5 + ((a {op1} (b & 15)) {op2} (i & 7));
        a = a + {stride};
        b = (b ^ acc) & 1023;
        data[acc & 31] = data[acc & 31] + 1;
    }}
    return acc + data[(a - b) & 31];
}}

int main(void) {{
    print_i32(mix({a0}, {b0}));
    print_i32(mix({b0}, {a0}));
    return 0;
}}
"""


def _seeded_program(seed):
    rng = random.Random(seed)
    return SEEDED_TEMPLATE.format(
        iters=rng.randrange(1, 24),
        op1=rng.choice(["+", "-", "*", "^", "|"]),
        op2=rng.choice(["+", "-", "^", "&"]),
        stride=rng.randrange(-9, 9) or 1,
        a0=rng.randrange(-100, 100),
        b0=rng.randrange(-100, 100),
    )


@pytest.mark.parametrize("seed", range(8))
def test_seeded_random_soundness(seed, range_config):
    """Random integer programs run clean under the oracle on both the
    x86 machine (eliding engine) and the wasm interpreter, and match
    the IR reference interpreter exactly."""
    source = _seeded_program(seed)
    set_tier("fuse")
    set_ranges(True)
    set_check_ranges(True)
    ref_value, ref_out = run_ir(source)
    ref = ((ref_value or 0) & 0xFFFFFFFF, ref_out)

    rc, out, _machine = run_engine(source, CHROME_TIERED)
    assert (rc, out) == ref, f"seed {seed}: x86 oracle run diverged"

    data, wasm, ir = compile_wasm_bytes(source)
    host = GuestHost(ir.heap_base)
    value = WasmInstance(wasm, host=host).invoke("main")
    assert ((value or 0) & 0xFFFFFFFF, bytes(host.output)) == ref, \
        f"seed {seed}: wasm oracle run diverged"


# -- compile-cache freshness ------------------------------------------------

def test_fingerprints_roll_with_range_config(range_config):
    set_tier("fuse")
    set_ranges(True)
    set_check_ranges(False)
    base_opt = opt_pipeline_fingerprint()
    base_jit = jit_pipeline_fingerprint(True)

    set_ranges(False)
    assert opt_pipeline_fingerprint() != base_opt
    assert jit_pipeline_fingerprint(True) != base_jit
    set_ranges(True)

    set_check_ranges(True)
    assert opt_pipeline_fingerprint() != base_opt
    assert jit_pipeline_fingerprint(True) != base_jit
    set_check_ranges(False)

    set_tier("off")
    assert jit_pipeline_fingerprint(True) != base_jit
    set_tier("fuse")
    assert opt_pipeline_fingerprint() == base_opt
    assert jit_pipeline_fingerprint(True) == base_jit


def test_cache_never_serves_stale_range_config(tmp_path, range_config):
    """REPRO_RANGES=0 after a cached eliding compile must recompile:
    the cached program elides checks, the fresh one must not."""
    set_tier("fuse")
    set_ranges(True)
    cache = CompileCache(directory=str(tmp_path))
    spec = polybench_benchmark("gemm", "test")

    warm = compile_benchmark(spec, ("chrome-tiered",), cache=cache)
    eliding = warm.program_for("chrome-tiered").compile_stats["checks"]
    assert eliding["stack_elided"] + eliding["indirect_elided"] > 0

    set_ranges(False)
    cold = compile_benchmark(spec, ("chrome-tiered",), cache=cache)
    plain = cold.program_for("chrome-tiered").compile_stats["checks"]
    assert plain["stack_elided"] == 0
    assert plain["indirect_elided"] == 0

    # Flipping back serves the eliding artifact again (a cache hit,
    # not a stale one).
    set_ranges(True)
    again = compile_benchmark(spec, ("chrome-tiered",), cache=cache)
    stats = again.program_for("chrome-tiered").compile_stats["checks"]
    assert stats == eliding


# -- the stat surface -------------------------------------------------------

def test_safety_check_counters_drop_under_elision(range_config):
    set_tier("fuse")
    set_ranges(True)
    from repro.obs.hwc import HwcModel

    spec = polybench_benchmark("gemm", "test")
    compiled = compile_benchmark(spec, ("chrome", "chrome-tiered"),
                                 cache=False)
    base = run_compiled(compiled, "chrome", runs=1,
                        hwc=HwcModel()).run.hwc.totals
    tier = run_compiled(compiled, "chrome-tiered", runs=1,
                        hwc=HwcModel()).run.hwc.totals
    assert base.check_retired > 0
    assert tier.check_retired < base.check_retired
