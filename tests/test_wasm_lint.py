"""wasm post-validation lint: dead code after ``unreachable`` and
never-read locals."""

from repro.wasm.lint import lint_module
from repro.wasm.module import WasmFuncType, WasmFunction, WasmModule
from repro.wasm.opcodes import WasmInstr


def _module(body, locals_=(), params=(), results=("i32",), name="f"):
    module = WasmModule("test")
    module.types.append(WasmFuncType(params, results))
    module.functions.append(
        WasmFunction(0, locals_=locals_, body=list(body), name=name))
    return module


def test_clean_function_has_no_findings():
    module = _module([
        WasmInstr("i32.const", 1),
        WasmInstr("i32.const", 2),
        WasmInstr("i32.add"),
    ])
    assert lint_module(module) == []


def test_dead_code_after_unreachable():
    module = _module([
        WasmInstr("unreachable"),
        WasmInstr("i32.const", 1),
        WasmInstr("i32.const", 2),
        WasmInstr("i32.add"),
    ])
    findings = lint_module(module)
    assert len(findings) == 1
    assert findings[0]["check"] == "dead-code"
    assert "3 unreachable instruction(s)" in findings[0]["message"]


def test_trailing_unreachable_is_not_flagged():
    # The emscripten emitter ends relooped bodies with a bare
    # `unreachable`; nothing follows it, so nothing is dead.
    module = _module([
        WasmInstr("i32.const", 1),
        WasmInstr("return"),
        WasmInstr("unreachable"),
    ])
    assert lint_module(module) == []


def test_dead_code_scan_stops_at_enclosing_end():
    # Code after the block that contains the `unreachable` is live
    # (reachable by branching over the block) and must not be counted.
    module = _module([
        WasmInstr("block", None),
        WasmInstr("unreachable"),
        WasmInstr("i32.const", 9),
        WasmInstr("drop"),
        WasmInstr("end"),
        WasmInstr("i32.const", 1),
    ])
    findings = lint_module(module)
    assert len(findings) == 1
    assert "2 unreachable instruction(s)" in findings[0]["message"]


def test_nested_blocks_inside_dead_region_counted_once():
    module = _module([
        WasmInstr("unreachable"),
        WasmInstr("block", None),
        WasmInstr("i32.const", 1),
        WasmInstr("drop"),
        WasmInstr("end"),
    ])
    findings = lint_module(module)
    assert len(findings) == 1
    assert findings[0]["check"] == "dead-code"


def test_never_read_local():
    module = _module([
        WasmInstr("i32.const", 7),
        WasmInstr("local.set", 1),
        WasmInstr("local.get", 0),
    ], locals_=("i32",), params=("i32",))
    findings = lint_module(module)
    assert len(findings) == 1
    assert findings[0]["check"] == "never-read-local"
    assert "local 1 (i32) is never read" in findings[0]["message"]


def test_parameters_are_not_flagged():
    # Param 0 is never read, but parameters are part of the signature.
    module = _module([
        WasmInstr("i32.const", 1),
    ], params=("i32",))
    assert lint_module(module) == []


def test_compiled_suite_modules_are_clean():
    """The emscripten pipeline should not produce lint findings on the
    lint example fixtures (they are source-level bugs, not emitter
    bugs)."""
    import os
    from repro.codegen.emscripten import compile_emscripten
    fixtures = os.path.join(os.path.dirname(__file__), "..",
                            "examples", "lint")
    for name in ("clean.mc", "dead_store.mc", "const_branch.mc"):
        source = open(os.path.join(fixtures, name)).read()
        wasm, _ = compile_emscripten(source, name)
        for finding in lint_module(wasm):
            assert finding["check"] != "dead-code", (name, finding)
