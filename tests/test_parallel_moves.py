"""Property test: the call-argument parallel-move resolver.

Marshalling call arguments assigns ABI registers from sources that may
themselves be ABI registers (overlapping permutations, including cycles).
The resolver must order the moves — breaking cycles through the scratch
register — so that every destination ends with its intended value.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.codegen.lower import FunctionLowering
from repro.x86.isa import Imm, Mem, Reg
from repro.x86.registers import R8, R9, RBP, RCX, RDI, RDX, RSI

ABI_REGS = [RDI, RSI, RDX, RCX, R8, R9]
SCRATCH = 11  # r11, the resolver's cycle-break register


class _Recorder:
    """Minimal stand-in for FunctionLowering: records emitted moves."""

    def __init__(self):
        self.instrs = []

        class _Cfg:
            scratch_gprs = (10, SCRATCH)

            def _xscratch(self, idx):  # pragma: no cover
                return 30 + idx

        self.cfg = _Cfg()

    def emit(self, op, a=None, b=None, **kwargs):
        self.instrs.append((op, a, b))

    def _xscratch(self, idx):
        return 30 + idx

    _parallel_moves = FunctionLowering._parallel_moves


def _simulate(instrs, initial):
    regs = dict(initial)
    regs.setdefault(SCRATCH, "scratch-garbage")
    for op, dst, src in instrs:
        assert op in ("mov", "movsd")
        if isinstance(src, Reg):
            regs[dst.reg] = regs.get(src.reg)
        elif isinstance(src, Imm):
            regs[dst.reg] = ("imm", src.value)
        elif isinstance(src, Mem):
            regs[dst.reg] = ("mem", src.base, src.disp)
    return regs


@given(st.lists(st.sampled_from(ABI_REGS), min_size=1, max_size=6,
                unique=True).flatmap(
    lambda dsts: st.tuples(
        st.just(dsts),
        st.lists(st.one_of(
            st.sampled_from(ABI_REGS),
            st.integers(min_value=-99, max_value=99),
            st.integers(min_value=0, max_value=4),
        ), min_size=len(dsts), max_size=len(dsts)))))
def test_parallel_moves_realize_the_assignment(case):
    dsts, raw_srcs = case
    moves = []
    expected = {}
    initial = {reg: f"v{reg}" for reg in ABI_REGS}
    for dst, raw in zip(dsts, raw_srcs):
        if isinstance(raw, int) and raw < 0:
            src = Imm(raw)
            expected[dst] = ("imm", raw)
        elif isinstance(raw, int):
            src = Mem(base=RBP, disp=-8 * (raw + 1), size=8)
            expected[dst] = ("mem", RBP, -8 * (raw + 1))
        else:
            src = Reg(raw)
            expected[dst] = initial[raw]
        moves.append((dst, src, False))

    recorder = _Recorder()
    recorder._parallel_moves(moves)
    final = _simulate(recorder.instrs, initial)
    for dst, want in expected.items():
        assert final[dst] == want, \
            f"dst {dst}: got {final[dst]}, want {want}\n{recorder.instrs}"


def test_pure_cycle_is_broken_with_scratch():
    # rdi <- rsi, rsi <- rdi: a 2-cycle.
    recorder = _Recorder()
    recorder._parallel_moves([(RDI, Reg(RSI), False),
                              (RSI, Reg(RDI), False)])
    final = _simulate(recorder.instrs, {RDI: "a", RSI: "b"})
    assert final[RDI] == "b" and final[RSI] == "a"
    assert any(isinstance(s, Reg) and d.reg == SCRATCH
               for _o, d, s in recorder.instrs)


def test_three_cycle():
    recorder = _Recorder()
    recorder._parallel_moves([(RDI, Reg(RSI), False),
                              (RSI, Reg(RDX), False),
                              (RDX, Reg(RDI), False)])
    final = _simulate(recorder.instrs, {RDI: "a", RSI: "b", RDX: "c"})
    assert (final[RDI], final[RSI], final[RDX]) == ("b", "c", "a")
