"""Figure 1 machinery at small scale: the engine-vintage comparison."""

from repro.analysis import FIG1_THRESHOLDS, fig1


def test_fig1_on_kernel_subset():
    kernels = ["gemm", "mvt", "trisolv", "gesummv"]
    counts, details, text = fig1(size="test", runs=1, kernels=kernels)

    assert set(counts) == {2017, 2018, 2019}
    for year in counts:
        # Counts are cumulative in the threshold: <1.1x <= <1.5x <= ...
        series = [counts[year][t] for t in FIG1_THRESHOLDS]
        assert series == sorted(series)
        assert all(0 <= c <= len(kernels) for c in series)

    # Per-kernel detail ratios are positive and finite.
    for year, ratios in details.items():
        assert set(ratios) == set(kernels)
        assert all(0 < r < 100 for r in ratios.values())

    # Monotone improvement at the loosest threshold.
    loose = FIG1_THRESHOLDS[-1]
    assert counts[2017][loose] <= counts[2019][loose]
    assert "Figure 1" in text
