"""f32 support in the WebAssembly layer (interpreter + codec).

The compilation pipelines never emit f32 (mcc's ``double`` is f64), but
the wasm substrate itself implements the full MVP type set; these tests
pin the single-precision semantics: results are narrowed to f32 after
every operation.
"""

import struct

from repro.wasm import (
    WasmFuncType, WasmFunction, WasmInstance, WasmInstr, WasmModule,
    decode_module, encode_module, validate_module,
)
from repro.wasm.module import WasmExport

_I = WasmInstr


def _narrow(x: float) -> float:
    return struct.unpack("<f", struct.pack("<f", x))[0]


def _instance(body, params=(), results=("f32",), locals_=()):
    module = WasmModule("f32")
    ti = module.type_index(WasmFuncType(params, results))
    module.functions.append(WasmFunction(ti, list(locals_), body, "f"))
    module.exports.append(WasmExport("f", "func", 0))
    validate_module(module)
    return WasmInstance(module)


def test_f32_add_narrows():
    # 1e8 + 1 is not representable in f32: the addition rounds.
    inst = _instance([_I("f32.const", 1e8), _I("f32.const", 1.0),
                      _I("f32.add")])
    assert inst.invoke("f") == _narrow(1e8 + 1.0) == 1e8


def test_f32_mul_precision():
    inst = _instance([_I("f32.const", 1.1), _I("f32.const", 1.1),
                      _I("f32.mul")])
    expected = _narrow(_narrow(1.1) * _narrow(1.1))
    assert inst.invoke("f") == expected


def test_f32_demote_promote_roundtrip():
    inst = _instance([_I("f64.const", 3.14159265358979),
                      _I("f32.demote_f64"), _I("f64.promote_f32")],
                     results=("f64",))
    assert inst.invoke("f") == _narrow(3.14159265358979)


def test_f32_memory_roundtrip():
    body = [
        _I("i32.const", 8), _I("f32.const", 2.5), _I("f32.store", 2, 0),
        _I("i32.const", 8), _I("f32.load", 2, 0),
    ]
    inst = _instance(body)
    assert inst.invoke("f") == 2.5


def test_f32_convert_from_int():
    inst = _instance([_I("i32.const", 16777217),  # 2^24 + 1: rounds in f32
                      _I("f32.convert_i32_s")])
    assert inst.invoke("f") == 16777216.0


def test_f32_reinterpret():
    bits = struct.unpack("<I", struct.pack("<f", -1.5))[0]
    inst = _instance([_I("i32.const", bits), _I("f32.reinterpret_i32")])
    assert inst.invoke("f") == -1.5


def test_f32_binary_roundtrip_through_codec():
    module = WasmModule("f32rt")
    ti = module.type_index(WasmFuncType(("f32",), ("f32",)))
    body = [_I("local.get", 0), _I("f32.sqrt")]
    module.functions.append(WasmFunction(ti, [], body, "root"))
    module.exports.append(WasmExport("root", "func", 0))
    decoded = decode_module(encode_module(module))
    validate_module(decoded)
    assert WasmInstance(decoded).invoke("root", [4.0]) == 2.0
