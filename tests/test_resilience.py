"""The resilience subsystem: fault injection, retries, watchdogs."""

import time

import pytest

from repro.benchsuite import matmul_spec
from repro.errors import (
    CacheCorruptionError, CellTimeout, FuelExhausted, ReproError,
    SyscallError, TrapError, WorkerCrashError, classify,
)
from repro.resilience import (
    FAULT_POINTS, FaultInjector, FaultPlan, RetryPolicy, interrupted_cell,
    is_failure, measure_cell,
)
from repro.resilience import faults

NO_SLEEP = RetryPolicy(retries=2, sleep=lambda s: None)

LOOP = """
int main(void) {
    int i = 0;
    int s = 0;
    while (i < 500000) {
        s = s + i;
        i = i + 1;
    }
    return s & 255;
}
"""


class TestPlanGrammar:
    def test_parse_mix(self):
        plan = FaultPlan.parse("trap:0.05, syscall:0.1", seed=7)
        assert plan.rates == {"trap": 0.05, "syscall": 0.1}
        assert plan.seed == 7

    def test_every_point_is_accepted(self):
        spec = ",".join(f"{p}:0.5" for p in FAULT_POINTS)
        plan = FaultPlan.parse(spec)
        assert set(plan.rates) == set(FAULT_POINTS)

    @pytest.mark.parametrize("spec", [
        "", "trap", "trap:", "trap:x", "warp:0.5", "trap:1.5", "trap:-0.1",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_spec_string_round_trips(self):
        plan = FaultPlan({"trap": 0.2, "cache": 1.0}, seed=3)
        again = FaultPlan.parse(plan.spec_string(), seed=3)
        assert again.rates == plan.rates


class TestInjectorDeterminism:
    def test_same_scope_same_draws(self):
        plan = FaultPlan({"trap": 0.5}, seed=42)
        a = [FaultInjector(plan, "m:native:a0").should("trap")
             for _ in range(1)]
        draws = [FaultInjector(plan, "m:native:a0")._stream("trap").random()
                 for _ in range(3)]
        assert draws[0] == draws[1] == draws[2]
        assert a  # draw happened without error

    def test_streams_independent_per_point_and_scope(self):
        plan = FaultPlan({"trap": 0.5, "fuel": 0.5}, seed=1)
        inj = FaultInjector(plan, "m:native:a0")
        other = FaultInjector(plan, "m:chrome:a0")
        assert inj._stream("trap").random() != inj._stream("fuel").random()
        assert (FaultInjector(plan, "m:native:a0")._stream("trap").random()
                != other._stream("trap").random())

    def test_zero_rate_never_fires(self):
        inj = FaultInjector(FaultPlan({"trap": 0.0}), "s")
        assert not any(inj.should("trap") for _ in range(100))

    def test_unit_rate_always_fires(self):
        inj = FaultInjector(FaultPlan({"trap": 1.0}), "s")
        with pytest.raises(TrapError, match="injected"):
            inj.check("trap")

    def test_fired_exceptions_are_marked_injected(self):
        inj = FaultInjector(FaultPlan({"syscall": 1.0}), "s")
        with pytest.raises(SyscallError) as exc:
            inj.check("syscall")
        assert exc.value.injected
        assert exc.value.transient

    def test_mangle_changes_or_truncates(self):
        inj = FaultInjector(FaultPlan({"cache": 1.0}), "s")
        data = bytes(range(64))
        mangled = inj.mangle("cache", data)
        assert mangled != data
        assert len(mangled) <= len(data)

    def test_module_hooks_noop_without_injector(self):
        faults.clear()
        faults.check("trap")  # must not raise
        assert faults.mangle("cache", b"abc") == b"abc"

    def test_scope_restores_previous_injector(self):
        plan = FaultPlan({"trap": 1.0})
        with faults.scope(plan, "outer"):
            outer = faults.current()
            with faults.scope(plan, "inner"):
                assert faults.current().scope == "inner"
            assert faults.current() is outer
        assert faults.current() is None


class TestTaxonomy:
    def test_trap_is_guest_permanent(self):
        info = classify(TrapError("boom"))
        assert (info.status, info.origin, info.transient) == \
            ("ERROR", "guest", False)

    def test_fuel_and_timeout_are_timeouts(self):
        assert classify(FuelExhausted("f")).status == "TIMEOUT"
        assert classify(CellTimeout("t")).status == "TIMEOUT"

    def test_syscall_transient_errnos(self):
        assert classify(SyscallError("EIO")).transient
        assert not classify(SyscallError("EBADF")).transient

    def test_raw_exception_classified_as_harness_error(self):
        info = classify(RuntimeError("surprise"))
        assert info.status == "ERROR"
        assert info.origin == "harness"
        assert "surprise" in info.message

    def test_worker_and_cache_errors_are_transient(self):
        assert classify(WorkerCrashError("died")).transient
        assert classify(CacheCorruptionError("bits")).transient


class TestRetryPolicy:
    def test_exponential_backoff_capped(self):
        policy = RetryPolicy(retries=5, base_delay=0.5, max_delay=2.0)
        assert [policy.delay(a) for a in range(4)] == [0.5, 1.0, 2.0, 2.0]

    def test_max_attempts(self):
        assert RetryPolicy(retries=0).max_attempts == 1
        assert RetryPolicy(retries=3).max_attempts == 4


class TestMeasureCell:
    def test_clean_cell_unchanged_by_plan(self):
        spec = matmul_spec()
        clean, failure, _, attempts = measure_cell(
            spec, "native", runs=2, cache=False, policy=NO_SLEEP)
        assert failure is None and attempts == 1
        injected, failure, _, _ = measure_cell(
            spec, "native", runs=2, cache=False,
            plan=FaultPlan({"trap": 0.0}, seed=5), policy=NO_SLEEP)
        assert failure is None
        assert injected.times == clean.times
        assert injected.run.stdout == clean.run.stdout

    def test_injected_trap_fails_without_retry(self):
        _, failure, _, attempts = measure_cell(
            matmul_spec(), "native", runs=1, cache=False,
            plan=FaultPlan({"trap": 1.0}, seed=1), policy=NO_SLEEP)
        assert is_failure(failure)
        assert failure.status == "ERROR"
        assert failure.phase == "execute"
        assert failure.injected
        assert attempts == 1  # traps are permanent: no retry

    def test_injected_fuel_reports_timeout(self):
        _, failure, _, _ = measure_cell(
            matmul_spec(), "native", runs=1, cache=False,
            plan=FaultPlan({"fuel": 1.0}, seed=1), policy=NO_SLEEP)
        assert failure.status == "TIMEOUT"

    def test_transient_syscall_retries_then_fails(self):
        _, failure, _, attempts = measure_cell(
            matmul_spec(), "native", runs=1, cache=False,
            plan=FaultPlan({"syscall": 1.0}, seed=2), policy=NO_SLEEP)
        assert failure.error_type == "SyscallError"
        assert failure.transient
        assert attempts == NO_SLEEP.max_attempts

    def test_transient_syscall_can_recover(self):
        # seed picked so attempt 0 fires and a later attempt does not
        plan = FaultPlan({"syscall": 0.3}, seed=11)
        result, failure, _, attempts = measure_cell(
            matmul_spec(), "chrome", runs=1, cache=False, plan=plan,
            policy=NO_SLEEP)
        assert failure is None
        assert attempts > 1

    def test_repro_command_replays_the_failure(self):
        plan = FaultPlan.parse("trap:1.0", seed=9)
        _, failure, _, _ = measure_cell(
            matmul_spec(), "native", runs=1, cache=False, plan=plan,
            policy=NO_SLEEP)
        cmd = failure.repro_command("test")
        assert "--inject 'trap:1.0'" in cmd
        assert "--inject-seed 9" in cmd
        assert failure.benchmark in cmd

    def test_as_dict_is_json_shaped(self):
        _, failure, _, _ = measure_cell(
            matmul_spec(), "native", runs=1, cache=False,
            plan=FaultPlan({"trap": 1.0}), policy=NO_SLEEP)
        d = failure.as_dict("test")
        for key in ("benchmark", "target", "status", "phase", "origin",
                    "transient", "injected", "error", "message",
                    "attempts", "repro"):
            assert key in d

    def test_interrupted_cell_marker(self):
        cell = interrupted_cell("m", "native")
        assert is_failure(cell)
        assert cell.phase == "interrupted"
        assert cell.attempts == 0


class TestWatchdogs:
    def test_x86_budget_is_fuel_exhaustion(self):
        from conftest import run_native
        with pytest.raises(FuelExhausted, match="budget"):
            run_native(LOOP, max_instructions=10_000)

    def test_x86_deadline_raises_cell_timeout(self):
        from repro.codegen import compile_native
        from repro.x86 import X86Machine
        program, module = compile_native(LOOP, "t")
        machine = X86Machine(program, max_instructions=2_000_000_000,
                             deadline=time.monotonic() - 1.0)
        with pytest.raises(CellTimeout):
            machine.call("main")

    def test_x86_no_deadline_runs_to_completion(self):
        from conftest import run_native
        rc, _, _ = run_native(LOOP, max_instructions=2_000_000_000)
        assert rc == (sum(range(500000)) & 255)

    def test_wasm_interp_fuel(self):
        from conftest import GuestHost
        from repro.codegen.emscripten import compile_emscripten
        from repro.wasm import WasmInstance
        wasm, ir = compile_emscripten(LOOP, "t")
        instance = WasmInstance(wasm, host=GuestHost(ir.heap_base),
                                max_fuel=1_000)
        with pytest.raises(FuelExhausted, match="branch budget"):
            instance.invoke("main")

    def test_ir_interp_fuel(self):
        from conftest import GuestHost
        from repro.ir import IRInterpreter
        from repro.mcc import compile_source
        module = compile_source(LOOP, "t")
        interp = IRInterpreter(module, GuestHost(module.heap_base),
                               max_fuel=1_000)
        with pytest.raises(FuelExhausted, match="block budget"):
            interp.run("main")

    def test_fuel_exhausted_is_a_trap(self):
        # so pre-existing TrapError handling (and tests) keep working
        assert issubclass(FuelExhausted, TrapError)


class TestCacheChecksums:
    def _cache(self, tmp_path):
        from repro.harness.compilecache import CompileCache
        return CompileCache(directory=str(tmp_path), use_disk=True)

    def _entry_path(self, cache, key):
        return cache._path(key)

    def test_bit_flip_detected_and_evicted(self, tmp_path):
        import os
        cache = self._cache(tmp_path)
        key = cache.key("k")
        cache.put(key, {"artifact": list(range(100))})
        cache._memory.clear()
        path = self._entry_path(cache, key)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0x40
        open(path, "wb").write(bytes(blob))
        assert cache.get(key) is None
        assert cache.stats.corruptions == 1
        assert not os.path.exists(path)

    def test_truncation_detected(self, tmp_path):
        cache = self._cache(tmp_path)
        key = cache.key("k2")
        cache.put(key, b"payload" * 50)
        cache._memory.clear()
        path = self._entry_path(cache, key)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[:len(blob) // 3])
        assert cache.get(key) is None
        assert cache.stats.corruptions == 1

    def test_clean_entry_survives_round_trip(self, tmp_path):
        cache = self._cache(tmp_path)
        key = cache.key("k3")
        cache.put(key, ("value", 42))
        cache._memory.clear()
        assert cache.get(key) == ("value", 42)
        assert cache.stats.corruptions == 0

    def test_cache_fault_point_forces_recompile(self, tmp_path):
        cache = self._cache(tmp_path)
        key = cache.key("k4")
        cache.put(key, {"big": bytes(1000)})
        cache._memory.clear()
        with faults.scope(FaultPlan({"cache": 1.0}, seed=0), "cell"):
            assert cache.get(key) is None
        assert cache.stats.corruptions == 1

    def test_legacy_unframed_entry_treated_as_corrupt(self, tmp_path):
        import pickle
        cache = self._cache(tmp_path)
        key = cache.key("k5")
        path = self._entry_path(cache, key)
        import os
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump("old-format", fh)
        assert cache.get(key) is None
        assert cache.stats.corruptions == 1


class TestTolerantSweep:
    def test_interrupt_yields_partial_results(self):
        from repro.harness.parallel import run_suite

        boom = RetryPolicy(retries=2, sleep=_raise_interrupt)
        results, _ = run_suite(
            [matmul_spec()], ["native", "chrome", "firefox"], runs=1,
            jobs=1, cache=False, tolerant=True,
            plan=FaultPlan({"syscall": 1.0}, seed=2), policy=boom)
        cells = list(results["matmul-24x26x28"].values())
        assert all(is_failure(c) for c in cells)
        assert any(c.phase == "interrupted" for c in cells)

    def test_validation_mismatch_becomes_failure(self):
        from repro.harness.runner import _validate_tolerant

        class FakeRun:
            def __init__(self, out):
                self.stdout = out

        class FakeResult:
            def __init__(self, out):
                self.run = FakeRun(out)

        results = {"native": FakeResult(b"a"), "chrome": FakeResult(b"b")}
        _validate_tolerant("m", results)
        assert not is_failure(results["native"])
        assert is_failure(results["chrome"])
        assert results["chrome"].phase == "validate"


def _raise_interrupt(_seconds):
    raise KeyboardInterrupt


class TestErrorsNeverRaw:
    def test_all_resilience_errors_are_repro_errors(self):
        for exc in (TrapError("t"), FuelExhausted("f"), CellTimeout("c"),
                    SyscallError("EIO"), CacheCorruptionError("b"),
                    WorkerCrashError("w")):
            assert isinstance(exc, ReproError)
