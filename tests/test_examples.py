"""Smoke tests: the example scripts must run to completion."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run_example(name, monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = _run_example("quickstart.py", monkeypatch, capsys)
    assert "All pipelines must agree" in out
    assert "asmjs-firefox" in out


def test_unix_in_the_browser(monkeypatch, capsys):
    out = _run_example("unix_in_the_browser.py", monkeypatch, capsys)
    assert "native" in out and "chrome" in out
    assert "legacy" in out
    assert "recopied" in out


def test_reproduce_paper(monkeypatch, capsys):
    out = _run_example("reproduce_paper.py", monkeypatch, capsys)
    assert "Step 5" in out
    assert "safety guarantees" in out


@pytest.mark.slow
def test_matmul_case_study(monkeypatch, capsys):
    out = _run_example("matmul_case_study.py", monkeypatch, capsys)
    assert "Figure 7" in out
    assert "Figure 8" in out
