"""Code generation tests: lowering engine, memfold, leafold, targets."""

from conftest import GuestHost, run_native

from repro.codegen import CHROME, FIREFOX, NATIVE, compile_native
from repro.codegen.memfold import fold_memory_ops
from repro.ir import IRInterpreter, verify_module
from repro.ir.instructions import Lea, Load, MemBinOp, Store
from repro.ir.passes import optimize_module
from repro.jit.leafold import fold_leas
from repro.mcc import compile_source
from repro.x86 import X86Machine
from repro.x86.isa import Mem


RMW = """
int data[32];
int main(void) {
    int i;
    for (i = 0; i < 32; i++) { data[i] = i; }
    for (i = 0; i < 32; i++) { data[i] += i * 3; }
    int s = 0;
    for (i = 0; i < 32; i++) { s += data[i]; }
    print_i32(s);
    return 0;
}
"""


def _run_module(module):
    host = GuestHost(module.heap_base)
    rc = IRInterpreter(module, host).run("main")
    return rc, bytes(host.output)


class TestMemfold:
    def _folded_module(self, source):
        module = compile_source(source, "t")
        optimize_module(module, level=2)
        reference = _run_module(compile_source(source, "ref"))
        count = sum(fold_memory_ops(f)
                    for f in module.functions.values())
        verify_module(module)
        return module, count, reference

    def test_rmw_pattern_folds_to_membinop(self):
        module, count, reference = self._folded_module(RMW)
        assert count > 0
        ops = [i for f in module.functions.values()
               for b in f.blocks.values() for i in b.instrs
               if isinstance(i, MemBinOp)]
        assert ops, "the += loop must fold to a memory-destination add"
        assert _run_module(module) == reference

    def test_scaled_addressing_folds(self):
        module, count, reference = self._folded_module(RMW)
        scaled = [i for f in module.functions.values()
                  for b in f.blocks.values() for i in b.instrs
                  if isinstance(i, (Load, Store, MemBinOp))
                  and i.index is not None]
        assert scaled, "array accesses must use scaled-index form"
        assert any(i.scale == 4 for i in scaled)
        assert _run_module(module) == reference

    def test_no_fold_across_aliasing_store(self):
        source = """
int a[4];
int main(void) {
    a[0] = 1;
    int x = a[0];
    a[0] = 9;          // aliasing store between load and the final store
    a[0] = x + 5;
    print_i32(a[0]);
    return 0;
}
"""
        module, _count, reference = self._folded_module(source)
        assert _run_module(module) == reference


class TestLeafold:
    def test_mul_add_folds_to_lea(self):
        module = compile_source(RMW, "t")
        optimize_module(module, level=2)
        folded = sum(fold_leas(f) for f in module.functions.values())
        assert folded > 0
        leas = [i for f in module.functions.values()
                for b in f.blocks.values() for i in b.instrs
                if isinstance(i, Lea)]
        assert any(i.scale == 4 for i in leas)
        verify_module(module)
        reference = _run_module(compile_source(RMW, "ref"))
        assert _run_module(module) == reference


class TestTargets:
    def test_native_uses_memory_operand_instructions(self):
        program, _ = compile_native(RMW, "t")
        rmw_forms = [i for f in program.functions.values()
                     for i in f.instrs
                     if i.op in ("add", "sub", "and", "or", "xor")
                     and isinstance(i.a, Mem)]
        assert rmw_forms

    def test_configs_disjoint_register_budgets(self):
        assert len(CHROME.gprs) < len(FIREFOX.gprs) < len(NATIVE.gprs)
        assert NATIVE.callee_saved and not CHROME.callee_saved
        assert CHROME.heap_base is not None and NATIVE.heap_base is None

    def test_clone_overrides_and_validates(self):
        clone = CHROME.clone("x", stack_check=False)
        assert not clone.stack_check and CHROME.stack_check
        import pytest
        with pytest.raises(AttributeError):
            CHROME.clone("y", not_a_field=1)

    def test_spilled_operand_collision_regression(self):
        # Regression for the scratch-register collision: a store whose
        # base, index, and source are all spilled must still be correct.
        source = """
int supply[64];
int main(void) {
    int a0 = 1; int a1 = 2; int a2 = 3; int a3 = 4; int a4 = 5;
    int a5 = 6; int a6 = 7; int a7 = 8; int a8 = 9; int a9 = 10;
    int i;
    for (i = 0; i < 32; i++) {
        int idx = (a0 + a3 * i) % 64;
        int val = a1 + a2 + a4 + a5 + a6 + a7 + a8 + a9 + i;
        supply[idx] = supply[idx] + val;
        a0 += val & 3;
        a1 ^= idx;
        a2 += a0 & 1;
        a4 += a1 & 1;
        a5 ^= a2;
        a6 += a4 & 7;
        a7 ^= a5 & 15;
        a8 += a6 & 3;
        a9 ^= a7 & 7;
    }
    int s = a0 + a1 + a2 + a4 + a5 + a6 + a7 + a8 + a9;
    for (i = 0; i < 64; i++) { s += supply[i] * (i + 1); }
    print_i32(s);
    return 0;
}
"""
        from conftest import run_everywhere
        run_everywhere(source)

    def test_frame_alignment_and_epilogue_balance(self):
        # Deep call chains with frames must not corrupt rsp/rbp.
        rc, out, machine = run_native("""
int depth(int n) {
    int local[6];
    int i;
    for (i = 0; i < 6; i++) { local[i] = n + i; }
    if (n == 0) { return local[3]; }
    return depth(n - 1) + local[1];
}
int main(void) { print_i32(depth(40)); return 0; }
""")
        assert rc == 0
        from repro.x86.registers import RSP
        assert machine.regs[RSP] == machine.program.stack_top
