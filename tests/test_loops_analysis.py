"""Dominator/loop analysis on synthetic CFGs (beyond frontend output)."""

from repro.ir import CondBr, Const, FuncType, Function, Jump, Return, Type
from repro.ir.loops import Loop, dominators, loop_depths, natural_loops


def _diamond():
    """entry -> (a | b) -> merge -> exit."""
    func = Function("f", FuncType((), (Type.I32,)))
    entry = func.new_block("entry")
    a = func.new_block("a")
    b = func.new_block("b")
    merge = func.new_block("merge")
    cond = func.new_vreg(Type.I32)
    from repro.ir import Move
    entry.append(Move(cond, Const(1, Type.I32)))
    entry.terminate(CondBr(cond, a.label, b.label))
    a.terminate(Jump(merge.label))
    b.terminate(Jump(merge.label))
    merge.terminate(Return(Const(0, Type.I32)))
    return func, entry, a, b, merge


def test_dominators_of_diamond():
    func, entry, a, b, merge = _diamond()
    dom = dominators(func)
    assert dom[merge.label] == {entry.label, merge.label}
    assert dom[a.label] == {entry.label, a.label}
    assert a.label not in dom[merge.label]


def test_no_loops_in_diamond():
    func, *_ = _diamond()
    assert natural_loops(func) == []
    assert all(d == 0 for d in loop_depths(func).values())


def _nested_loops():
    """entry -> outer_head <-> inner structure with two nesting levels."""
    func = Function("f", FuncType((), (Type.I32,)))
    entry = func.new_block("entry")
    outer = func.new_block("outer")
    inner = func.new_block("inner")
    inner_latch = func.new_block("inner_latch")
    outer_latch = func.new_block("outer_latch")
    done = func.new_block("done")
    cond = func.new_vreg(Type.I32)
    from repro.ir import Move
    entry.append(Move(cond, Const(1, Type.I32)))
    entry.terminate(Jump(outer.label))
    outer.terminate(CondBr(cond, inner.label, done.label))
    inner.terminate(CondBr(cond, inner_latch.label, outer_latch.label))
    inner_latch.terminate(Jump(inner.label))
    outer_latch.terminate(Jump(outer.label))
    done.terminate(Return(Const(0, Type.I32)))
    return func, outer, inner


def test_nested_natural_loops():
    func, outer, inner = _nested_loops()
    loops = natural_loops(func)
    headers = {lp.header for lp in loops}
    assert headers == {outer.label, inner.label}
    by_header = {lp.header: lp for lp in loops}
    # The inner loop body is strictly contained in the outer loop body.
    assert by_header[inner.label].body < by_header[outer.label].body
    depths = loop_depths(func)
    assert depths[inner.label] == 2
    assert depths[outer.label] == 1
    assert depths[func.entry] == 0


def test_self_loop():
    func = Function("f", FuncType((), (Type.I32,)))
    entry = func.new_block("entry")
    spin = func.new_block("spin")
    cond = func.new_vreg(Type.I32)
    from repro.ir import Move
    entry.append(Move(cond, Const(0, Type.I32)))
    entry.terminate(Jump(spin.label))
    spin.terminate(CondBr(cond, spin.label, entry.label))
    # spin -> spin is a self loop; spin -> entry is NOT a back edge
    # (entry does not dominate... it does: entry dominates everything).
    loops = natural_loops(func)
    assert any(lp.header == spin.label and lp.body == {spin.label}
               for lp in loops)


def test_loop_repr_and_size():
    loop = Loop("h", {"h", "b"}, {"b"})
    assert loop.size == 2
    assert "h" in repr(loop)
