"""Microarchitectural counter model (repro.obs.hwc) tests.

The load-bearing invariants:

* the model is purely observational: every retired counter, i-cache
  count, cycle figure, and program output is bit-identical with the
  model attached, at every tier;
* per-function hwc buckets sum EXACTLY to the whole-program totals;
* the model's own accounting is closed: retired events mirror the
  machine's counters (``retired == instructions``, ``dcache_accesses ==
  loads + stores``) and the cycle decomposition sums to the modeled
  cycle count;
* table dispatch, superinstruction fusion, and the baseline chain
  dispatcher all report the same hwc counters;
* everything is deterministic per (program, input, config).
"""

import pytest
from conftest import GuestHost

from repro.benchsuite import matmul_spec, spec_benchmark
from repro.codegen import compile_native
from repro.harness.runner import compile_benchmark, run_compiled
from repro.obs.hwc import (
    BranchHwc, BranchPredictor, HwcCounters, HwcModel, class_cycles,
    explain_benchmark, hwc_cycles, hwc_site,
)
from repro.wasm import WasmInstance
from repro.x86 import X86Machine
from repro.x86.machine_baseline import X86MachineBaseline

PROGRAM = """
int bump(int x) { return x * 3 + 1; }
int pick(int i, int v) {
    if (i % 3 == 0) { return bump(v); }
    if (i % 3 == 1) { return v - 2; }
    return v ^ 5;
}
int main(void) {
    int i; int s = 0;
    int buf[64];
    for (i = 0; i < 64; i++) { buf[i] = i * 7; }
    for (i = 0; i < 400; i++) {
        s += pick(i, buf[i & 63]);
        if (s > 100000) { s -= 100000; }
    }
    print_i32(s);
    return 0;
}
"""


def _native(hwc=None, baseline=False, tier="off"):
    program, module = compile_native(PROGRAM, "test")
    host = GuestHost(module.heap_base)
    if baseline:
        machine = X86MachineBaseline(program, host=host, hwc=hwc)
    else:
        machine = X86Machine(program, host=host, tier=tier, hwc=hwc)
    rax, _ = machine.call("main")
    return rax & 0xFFFFFFFF, bytes(host.output), machine


# -- branch predictor unit behaviour ------------------------------------------------


def test_predictor_learns_a_loop_branch():
    bp = BranchPredictor()
    site = hwc_site("f", 3)
    misses = [bp.cond(site, True) for _ in range(10)]
    # Weakly-not-taken start: the first taken outcome mispredicts, the
    # counter saturates, and the branch predicts correctly forever.
    assert misses[0] is True
    assert not any(misses[2:])


def test_predictor_mispredicts_alternation():
    bp = BranchPredictor()
    site = hwc_site("f", 4)
    outcomes = [bool(i % 2) for i in range(64)]
    misses = sum(bp.cond(site, taken) for taken in outcomes)
    assert misses >= 16   # a bimodal counter cannot learn alternation


def test_btb_tracks_last_target():
    bp = BranchPredictor()
    site = hwc_site("f", 9)
    assert bp.indirect(site, 100) is True     # cold
    assert bp.indirect(site, 100) is False    # hit
    assert bp.indirect(site, 200) is True     # retarget
    assert bp.indirect(site, 200) is False


def test_hwc_site_is_stable_and_spreads():
    assert hwc_site("main", 7) == hwc_site("main", 7)
    sites = {hwc_site("main", i) for i in range(256)}
    assert len(sites) == 256


def test_hwc_counters_merge_and_eq():
    a, b = HwcCounters(), HwcCounters()
    a.branches, a.spill_loads = 5, 2
    b.branches, b.dcache_misses = 3, 4
    a.merge(b)
    assert (a.branches, a.spill_loads, a.dcache_misses) == (8, 2, 4)
    c = HwcCounters()
    c.branches, c.spill_loads, c.dcache_misses = 8, 2, 4
    assert a == c and a != b


# -- the model never perturbs execution ---------------------------------------------


@pytest.mark.parametrize("tier", ["off", "quicken", "fuse"])
def test_retired_counters_bit_identical_with_hwc(tier):
    rax_plain, out_plain, m_plain = _native(tier=tier)
    rax_hwc, out_hwc, m_hwc = _native(hwc=HwcModel(), tier=tier)
    assert rax_plain == rax_hwc
    assert out_plain == out_hwc
    assert m_plain.perf.as_dict() == m_hwc.perf.as_dict()
    assert m_plain.icache.misses == m_hwc.icache.misses
    assert m_plain.icache.accesses == m_hwc.icache.accesses


def test_hwc_accounting_is_closed():
    model = HwcModel()
    _, _, machine = _native(hwc=model)
    report = model.report()
    report.verify()    # per-function sums == totals, field for field
    totals, perf = report.totals, machine.perf
    assert totals.retired == perf.instructions
    assert totals.dcache_accesses == perf.loads + perf.stores
    assert totals.icache_accesses == machine.icache.accesses
    assert totals.icache_misses == machine.icache.misses
    assert totals.branches <= perf.branches
    assert totals.spill_loads <= perf.loads
    assert totals.spill_stores <= perf.stores


def test_class_cycles_sum_to_hwc_cycles():
    model = HwcModel()
    _, _, machine = _native(hwc=model)
    totals = model.report().totals
    decomposed = class_cycles(machine.perf, totals)
    assert sum(decomposed.values()) == pytest.approx(
        hwc_cycles(machine.perf, totals), rel=1e-9)
    assert decomposed["base (retired instructions)"] > 0


def test_hwc_is_deterministic():
    m1 = HwcModel()
    m2 = HwcModel()
    _native(hwc=m1)
    _native(hwc=m2)
    assert m1.report() == m2.report()


def test_baseline_and_table_dispatch_report_identical_hwc():
    m_fast, m_base = HwcModel(), HwcModel()
    rax_fast, out_fast, mach_fast = _native(hwc=m_fast)
    rax_base, out_base, mach_base = _native(hwc=m_base, baseline=True)
    assert (rax_fast, out_fast) == (rax_base, out_base)
    assert mach_fast.perf.as_dict() == mach_base.perf.as_dict()
    assert m_fast.report() == m_base.report()


def test_fused_tier_reports_identical_hwc():
    m_off, m_fuse = HwcModel(), HwcModel()
    _native(hwc=m_off, tier="off")
    _native(hwc=m_fuse, tier="fuse")
    assert m_off.report() == m_fuse.report()


# -- spill accounting ---------------------------------------------------------------


def test_spills_are_tagged_on_wasm_codegen():
    spec = matmul_spec()
    compiled = compile_benchmark(spec, ["native", "chrome"])
    reports = {}
    for target in ("native", "chrome"):
        model = HwcModel()
        run_compiled(compiled, target, runs=1, hwc=model)
        reports[target] = model.report().totals
    # The Chrome pipeline's weaker allocator spills; spill traffic is
    # the paper's §5 "more loads and stores" root cause.
    assert reports["chrome"].spill_loads > 0
    assert reports["chrome"].spill_stores > 0
    assert reports["chrome"].spill_loads > reports["native"].spill_loads


# -- sampling -----------------------------------------------------------------------


def test_event_sampling_is_deterministic_and_attributed():
    m1 = HwcModel(sample_every=1000)
    m2 = HwcModel(sample_every=1000)
    _native(hwc=m1)
    _native(hwc=m2)
    r1, r2 = m1.report(), m2.report()
    assert r1.samples and r1.samples == r2.samples
    assert sum(r1.samples.values()) == r1.totals.retired // 1000
    assert set(r1.samples) <= set(r1.functions)
    assert m1.report().as_dict()["samples"] == r1.samples


def test_from_env_reads_config(monkeypatch):
    monkeypatch.setenv("REPRO_HWC_DCACHE", "2048,4")
    monkeypatch.setenv("REPRO_HWC_SAMPLE", "500")
    model = HwcModel.from_env()
    assert model.config["dcache_size"] == 2048
    assert model.dcache.ways == 4
    assert model.sample_every == 500


def test_run_result_carries_hwc_via_env(monkeypatch):
    spec = matmul_spec()
    compiled = compile_benchmark(spec, ["native"])
    plain = run_compiled(compiled, "native", runs=1)
    assert plain.run.hwc is None
    monkeypatch.setenv("REPRO_HWC", "1")
    gated = run_compiled(compiled, "native", runs=1)
    assert gated.run.hwc is not None
    gated.run.hwc.verify()
    assert plain.run.perf.as_dict() == gated.run.perf.as_dict()
    assert plain.run.cycles == gated.run.cycles


# -- interpreter branch models ------------------------------------------------------

BRANCHY = """
int f0(int x) { return x + 1; }
int f1(int x) { return x * 2; }
int (*tab[2])(int) = { f0, f1 };
int main(void) {
    int i; int s = 0;
    for (i = 0; i < 200; i++) {
        if (i % 4 == 0) { s += 3; } else { s -= 1; }
        s += tab[(i >> 4) & 1](s) & 255;
    }
    print_i32(s);
    return 0;
}
"""


def _run_wasm(hwc=None, tier="off"):
    from repro.codegen.emscripten import compile_emscripten
    wasm, ir = compile_emscripten(BRANCHY, "test")
    host = GuestHost(ir.heap_base)
    instance = WasmInstance(wasm, host=host, tier=tier, hwc=hwc)
    value = instance.invoke("main")
    return value, bytes(host.output)


def test_wasm_interpreter_branch_model():
    plain = _run_wasm()
    hwc = BranchHwc()
    traced = _run_wasm(hwc=hwc)
    assert plain == traced            # observational only
    assert hwc.branches > 200         # loop br_if + if arms
    assert hwc.indirect_branches >= 200   # call_indirect per iteration
    assert 0 < hwc.branch_misses < hwc.branches
    # The table index flips every 16 iterations, so the BTB hits in
    # between and misses only on retargets.
    assert 0 < hwc.btb_misses < hwc.indirect_branches


def test_wasm_branch_model_matches_across_tiers():
    off, fused = BranchHwc(), BranchHwc()
    out_off = _run_wasm(hwc=off, tier="off")
    out_fused = _run_wasm(hwc=fused, tier="fuse")
    assert out_off == out_fused
    # Fused br_if sites alias the unfused instruction index, so the
    # event stream (and therefore the trained PHT) is identical.
    assert off.as_dict() == fused.as_dict()


def test_ir_interpreter_branch_model():
    from repro.ir.interp import IRInterpreter
    from repro.mcc import compile_source

    module = compile_source(BRANCHY, "test")
    hwc = BranchHwc()
    host = GuestHost(module.heap_base)
    value = IRInterpreter(module, host, hwc=hwc).run("main")
    plain_host = GuestHost(module.heap_base)
    plain = IRInterpreter(module, plain_host).run("main")
    assert value == plain
    assert bytes(host.output) == bytes(plain_host.output)
    assert hwc.branches > 200
    assert 0 < hwc.branch_misses < hwc.branches


# -- gap explanation ----------------------------------------------------------------


def test_explain_decomposes_the_gap():
    explanation = explain_benchmark(matmul_spec(), target="chrome")
    explanation.check()    # per-function sums == totals, both runs
    rows = explanation.class_rows()
    native = hwc_cycles(explanation.native_run.perf,
                        explanation.native_run.hwc.totals)
    target = hwc_cycles(explanation.target_run.perf,
                        explanation.target_run.hwc.totals)
    assert sum(delta for _name, _n, _t, delta in rows) == \
        pytest.approx(target - native, rel=1e-9)
    # The paper's §5 root causes dominate: more retired instructions
    # and spill traffic.
    by_name = {name: delta for name, _n, _t, delta in rows}
    assert by_name["base (retired instructions)"] > 0
    assert by_name["spill loads"] > 0
    text = explanation.render()
    assert "event class" in text and "share of gap" in text
    assert "matmul" in text


def test_explain_runs_on_a_spec_benchmark():
    spec = spec_benchmark("429.mcf", "test")
    explanation = explain_benchmark(spec, target="chrome")
    explanation.check()
    data = explanation.as_dict()
    assert data["classes"] and data["functions"]
    assert data["hwc_cycles"]["native"] > 0
