"""Emscripten backend tests: relooper structure and module assembly."""

from conftest import compile_wasm_bytes, run_ir, run_wasm_interp

from repro.codegen.emscripten import compile_emscripten, compile_ir_to_wasm
from repro.wasm import decode_module, validate_module


def wasm_for(source):
    wasm, ir = compile_emscripten(source, "t")
    validate_module(wasm)
    return wasm, ir


def body_ops(wasm, name):
    index = wasm.export_index(name)
    func = wasm.functions[index - wasm.num_imported_funcs]
    return [i.op for i in func.body]


def test_loop_structure_uses_wasm_loop():
    wasm, _ = wasm_for("""
int main(void) {
    int i; int s = 0;
    for (i = 0; i < 10; i++) { s += i; }
    return s;
}
""")
    ops = body_ops(wasm, "main")
    assert "loop" in ops
    assert "br_if" in ops or "br" in ops


def test_if_else_structure():
    wasm, _ = wasm_for("""
int f(int x) { if (x > 0) { return 1; } else { return -1; } }
int main(void) { return f(3); }
""")
    ops = body_ops(wasm, "f")
    assert "if" in ops


def test_merge_nodes_become_blocks():
    # Two branches reconverging on shared code => a block + br structure.
    wasm, _ = wasm_for("""
int f(int x) {
    int r = 0;
    if (x > 0) { r = 1; }
    else { r = 2; }
    return r * 10;   // the merge point
}
int main(void) { return f(1); }
""")
    ops = body_ops(wasm, "f")
    assert ops.count("end") >= 1


def test_nested_loops_nest_wasm_loops():
    wasm, _ = wasm_for("""
int main(void) {
    int i; int j; int s = 0;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++)
            s += i * j;
    return s;
}
""")
    ops = body_ops(wasm, "main")
    assert ops.count("loop") == 2


def test_break_in_nested_control():
    value, out = run_wasm_interp("""
int main(void) {
    int i; int found = -1;
    for (i = 0; i < 100; i++) {
        if (i * i > 50) {
            found = i;
            break;
        }
    }
    print_i32(found);
    return 0;
}
""")
    assert out == b"8\n"


def test_externs_become_env_imports():
    wasm, _ = wasm_for('int main(void){ print_str("x\\n"); return 0; }')
    assert all(imp.module == "env" for imp in wasm.imports)
    names = {imp.name for imp in wasm.imports}
    assert "sys_write" in names


def test_function_table_and_null_stub():
    wasm, _ = wasm_for("""
int a(int x) { return x + 1; }
int b(int x) { return x + 2; }
int (*fns[2])(int) = { a, b };
int main(void) { return fns[1](5); }
""")
    assert len(wasm.table) >= 3  # null stub + a + b
    stub_index = wasm.table[0]
    stub = wasm.functions[stub_index - wasm.num_imported_funcs]
    assert stub.name == "__null_stub"
    assert [i.op for i in stub.body] == ["unreachable"]


def test_null_function_pointer_traps():
    import pytest
    from repro.errors import TrapError

    # Table index 0 is the null stub: calling through it must trap (the
    # signature check fails against the stub's void type).
    source = """
int a(int x) { return x; }
int run_at(int idx) {
    int (*fp)(int);
    fp = idx;  // integer -> function-pointer conversion
    return fp(1);
}
int main(void) { return run_at(0); }
"""
    with pytest.raises(TrapError):
        run_wasm_interp(source)

    # A valid pointer through the same path still works.
    value, out = run_wasm_interp("""
int a(int x) { return x; }
int (*keep)(int) = a;
int main(void) { print_i32(keep(4)); return 0; }
""")
    assert out == b"4\n"


def test_heap_base_exported():
    wasm, ir = wasm_for("int main(void){ return 0; }")
    exports = {e.name: e for e in wasm.exports}
    assert "__heap_base" in exports
    glob = wasm.globals[exports["__heap_base"].index]
    assert glob.init.args[0] == ir.heap_base


def test_memory_sized_from_module():
    wasm, ir = wasm_for("int main(void){ return 0; }")
    pages, maximum = wasm.memory_pages
    assert pages * 65536 >= ir.memory_size


def test_data_segments_roundtrip():
    source = 'char msg[8] = "hiya";\nint main(void){ return msg[2]; }'
    wasm, ir = wasm_for(source)
    data, _, _ = compile_wasm_bytes(source)
    decoded = decode_module(data)
    blob = b"".join(seg.data for seg in decoded.data)
    assert b"hiya" in blob


def test_wasm_matches_ir_reference_for_gnarly_cfg():
    source = """
int collatz_steps(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; }
        else { n = 3 * n + 1; }
        steps++;
        if (steps > 1000) { break; }
    }
    return steps;
}
int main(void) {
    int total = 0;
    int i;
    for (i = 1; i < 30; i++) {
        total += collatz_steps(i);
        if (total > 500) { continue; }
        total += 1;
    }
    print_i32(total);
    return 0;
}
"""
    ref_value, ref_out = run_ir(source)
    value, out = run_wasm_interp(source)
    assert out == ref_out
    assert value == (ref_value or 0) & 0xFFFFFFFF
