"""Independent register-allocation checker: valid allocations from both
allocators pass over the whole benchmark suite; corrupted ones are
caught."""

import pytest

from repro.benchsuite import (POLYBENCH_NAMES, SPEC_NAMES, matmul_spec,
                              polybench_benchmark, spec_benchmark)
from repro.codegen.target import CHROME, NATIVE
from repro.ir.passes import optimize_module
from repro.mcc import compile_source
from repro.regalloc.check import RegAllocError, check_assignment
from repro.regalloc.graph_coloring import graph_coloring
from repro.regalloc.linear_scan import linear_scan
from repro.regalloc.liveness import LivenessInfo


def _allocate(func, allocator):
    info = LivenessInfo(func)
    if allocator == "graph":
        cfg = NATIVE
        return graph_coloring(info, cfg.gprs, cfg.xmms, cfg.callee_saved)
    cfg = CHROME
    return linear_scan(info, cfg.gprs, cfg.xmms, cfg.callee_saved)


def _all_benchmark_modules():
    for name in SPEC_NAMES:
        yield name, compile_source(spec_benchmark(name, "test").source, name)
    for name in POLYBENCH_NAMES:
        yield name, compile_source(
            polybench_benchmark(name, "test").source, name)
    yield "matmul", compile_source(matmul_spec().source, "matmul")


@pytest.mark.parametrize("allocator", ["graph", "linear"])
def test_both_allocators_valid_on_full_suite(allocator):
    checked = 0
    for name, module in _all_benchmark_modules():
        optimize_module(module)
        for func in module.functions.values():
            assignment = _allocate(func, allocator)
            check_assignment(func, assignment, allocator)
            checked += 1
    assert checked > 500


def _sample_func():
    source = """
    int mix(int a, int b, int c) {
        int x = a * b;
        int y = b * c;
        int z = x + y;
        return z * a;
    }
    int main(void) { return mix(2, 3, 4); }
    """
    module = compile_source(source, "sample")
    return module.functions["mix"]


@pytest.mark.parametrize("allocator", ["graph", "linear"])
def test_corrupted_assignment_is_caught(allocator):
    func = _sample_func()
    assignment = _allocate(func, allocator)
    # Force two simultaneously live values into one register: every
    # parameter is live on entry (all three are read later), so collide
    # the first two that both got registers.
    in_regs = [p.id for p in func.params if p.id in assignment.regs]
    assert len(in_regs) >= 2, "sample must keep params in registers"
    a, b = in_regs[0], in_regs[1]
    assignment.regs[b] = assignment.regs[a]
    with pytest.raises(RegAllocError) as excinfo:
        check_assignment(func, assignment, allocator)
    message = str(excinfo.value)
    assert allocator in message
    assert "mix" in message
    assert "share register" in message


def test_checker_counts_runs():
    from repro.obs import metrics
    registry = metrics.enable()
    try:
        func = _sample_func()
        check_assignment(func, _allocate(func, "graph"), "graph")
        counters = registry.as_dict()["counters"]
        assert counters.get("analysis.regalloc_checks", 0) == 1
    finally:
        metrics.disable()


def test_coalesced_move_is_exempt():
    """A move whose source and destination share a register is legal —
    that's coalescing, not a conflict — so a valid graph allocation of a
    move-heavy function must pass."""
    source = """
    int chain(int a) {
        int b = a;
        int c = b;
        int d = c;
        return d;
    }
    int main(void) { return chain(5); }
    """
    module = compile_source(source, "coalesce")
    func = module.functions["chain"]
    optimize_module(module)
    for allocator in ("graph", "linear"):
        check_assignment(func, _allocate(func, allocator), allocator)
