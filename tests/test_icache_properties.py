"""Property tests for the L1 i-cache model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.x86.icache import ICache


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                max_size=200))
def test_misses_never_exceed_accesses(addresses):
    cache = ICache(size=1024, ways=4)
    for addr in addresses:
        cache.fetch(addr, 4)
        cache._last_line = -1
    assert 0 <= cache.misses <= cache.accesses


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1,
                max_size=100))
def test_repeating_a_trace_in_cache_capacity_hits(addresses):
    """A working set that fits entirely in the cache never misses on the
    second pass."""
    cache = ICache(size=64 * 1024, ways=16)  # huge: everything fits
    for addr in addresses:
        cache.fetch(addr, 4)
        cache._last_line = -1
    first_pass = cache.misses
    for addr in addresses:
        cache.fetch(addr, 4)
        cache._last_line = -1
    assert cache.misses == first_pass


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1 << 20))
def test_fetch_within_one_line_counts_once(addr):
    cache = ICache(size=2048, ways=4)
    line_start = addr & ~63
    cache.fetch(line_start, 4)
    for offset in range(0, 60, 4):
        cache.fetch(line_start + offset, 4)
    assert cache.accesses == 1


def test_misses_monotone_in_working_set():
    """More distinct lines than capacity => more misses on cycling."""

    def misses_for(num_lines):
        cache = ICache(size=1024, ways=4)  # 16 lines capacity
        for _ in range(5):
            for i in range(num_lines):
                cache.fetch(i * 64, 4)
                cache._last_line = -1
        return cache.misses

    fits = misses_for(8)
    exact = misses_for(16)
    thrash = misses_for(24)
    assert fits <= exact <= thrash
    assert fits == 8          # cold misses only
    assert thrash > 24        # capacity misses on every pass


def test_reset_clears_state():
    cache = ICache(size=1024, ways=4)
    cache.fetch(0, 4)
    cache.fetch(4096, 4)
    cache.reset()
    assert cache.accesses == cache.misses == 0
    cache.fetch(0, 4)
    assert cache.misses == 1
