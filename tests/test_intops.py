"""Property-based tests of the shared two's-complement semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import intops

i32s = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
u32s = st.integers(min_value=0, max_value=2 ** 32 - 1)
u64s = st.integers(min_value=0, max_value=2 ** 64 - 1)


@given(u32s)
def test_signed32_roundtrip(x):
    assert intops.signed32(x) & 0xFFFFFFFF == x


@given(u64s)
def test_signed64_roundtrip(x):
    assert intops.signed64(x) & intops.MASK64 == x


@given(i32s, i32s)
def test_div_s_matches_c_semantics(a, b):
    if b == 0:
        return
    ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
    q = intops.signed32(intops.div_s(ua, ub, 32))
    r = intops.signed32(intops.rem_s(ua, ub, 32))
    # Division identity and truncation toward zero.
    assert (q * b + r) & 0xFFFFFFFF == a & 0xFFFFFFFF
    if a % b != 0:
        assert abs(q) == abs(a) // abs(b)
    assert r == 0 or (r < 0) == (a < 0)


@given(u32s, u32s)
def test_div_u_identity(a, b):
    if b == 0:
        return
    q = intops.div_u(a, b, 32)
    r = intops.rem_u(a, b, 32)
    assert q * b + r == a
    assert 0 <= r < b


@given(u32s, st.integers(min_value=0, max_value=255))
def test_shifts_mask_count(a, count):
    assert intops.shl(a, count, 32) == intops.shl(a, count % 32, 32)
    assert intops.shr_u(a, count, 32) == intops.shr_u(a, count % 32, 32)
    assert intops.shr_s(a, count, 32) == intops.shr_s(a, count % 32, 32)


@given(u32s)
def test_shr_s_preserves_sign(a):
    result = intops.shr_s(a, 31, 32)
    assert result in (0, 0xFFFFFFFF)
    assert (result == 0xFFFFFFFF) == (a >= 0x80000000)


@given(u32s, st.integers(min_value=0, max_value=31))
def test_rotl_rotr_inverse(a, count):
    assert intops.rotr(intops.rotl(a, count, 32), count, 32) == a


@given(u32s)
def test_clz_ctz_popcnt_consistency(a):
    clz = intops.clz(a, 32)
    ctz = intops.ctz(a, 32)
    pop = intops.popcnt(a, 32)
    assert 0 <= clz <= 32 and 0 <= ctz <= 32 and 0 <= pop <= 32
    if a == 0:
        assert clz == ctz == 32 and pop == 0
    else:
        assert clz == 32 - a.bit_length()
        assert (a >> ctz) & 1 == 1
        assert pop == bin(a).count("1")


@given(st.floats(allow_nan=False, allow_infinity=False,
                 min_value=-2.0 ** 31 + 1, max_value=2.0 ** 31 - 1))
def test_trunc_f64_truncates_toward_zero(x):
    result = intops.signed32(intops.trunc_f64(x, 32, True))
    assert result == int(x)


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_f64_bits_roundtrip(x):
    assert intops.bits_f64(intops.f64_bits(x)) == x
