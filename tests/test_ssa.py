"""SSA mid-end: construction/destruction round trips, the new
optimization passes (GVN, SCCP, strength reduction), and end-to-end
equivalence of the SSA pipeline across targets and tiers."""

import copy

import pytest

from repro.benchsuite import matmul_source, polybench_spec
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp, CondBr, Jump, Move, Phi, Return,
)
from repro.ir.interp import IRInterpreter
from repro.ir.passes import (
    PassBlameError, eliminate_dead_code, global_value_numbering,
    optimize_module, reduce_strength, run_ssa_midend,
    sparse_conditional_constant_propagation,
)
from repro.ir.ssa import construct_ssa, destruct_ssa, split_critical_edges
from repro.ir.types import FuncType, Type
from repro.ir.values import Const
from repro.ir.verify import VerifyError, set_verify_ir, verify_function
from repro.mcc import compile_source
from repro.tier import set_tier

from conftest import GuestHost, run_engine, run_ir, run_native


def _interp(module, entry="main"):
    host = GuestHost(module.heap_base)
    value = IRInterpreter(module, host).run(entry)
    return value, bytes(host.output)


def _icount(module):
    return sum(f.instruction_count() for f in module.functions.values())


# -- round trip --------------------------------------------------------------------

ROUNDTRIP_KERNELS = ["gemm", "durbin", "cholesky", "mvt", "trisolv"]


@pytest.mark.parametrize("name", ROUNDTRIP_KERNELS)
def test_roundtrip_preserves_semantics(name):
    """construct -> destruct with no optimization in between is
    observation-identical to never entering SSA, and both forms verify."""
    spec = polybench_spec(name, "test")
    module = compile_source(spec.source, name)
    reference = _interp(copy.deepcopy(module))

    phis = 0
    for func in module.functions.values():
        phis += construct_ssa(func)
        verify_function(func, module)
        assert func.ssa
        destruct_ssa(func)
        verify_function(func, module)
        assert not func.ssa
    assert phis > 0, "kernels with loops must need phis"
    assert _interp(module) == reference


def test_ssa_pipeline_is_deterministic():
    """Two fresh compiles of the same source through the SSA pipeline
    produce structurally identical IR — the property the compile cache
    and bit-identical reports rest on."""
    def build():
        module = compile_source(matmul_source(6, 5, 4), "matmul")
        optimize_module(module, level=2, ssa=True)
        lines = []
        for name, func in module.functions.items():
            for block in func.block_order():
                lines.append(f"{name}/{block.label}:")
                lines.extend(repr(i) for i in block.all_instrs())
        return lines

    assert build() == build()


def test_trivial_phis_are_removed():
    """A phi whose incomings all carry the same value disappears during
    destruction instead of materializing copies."""
    from repro.ir.ssa import remove_trivial_phis

    func = Function("f", FuncType([Type.I32], [Type.I32]))
    p = func.new_vreg(Type.I32, "p")
    func.params.append(p)
    entry = func.new_block("entry")
    left = func.new_block("left")
    right = func.new_block("right")
    join = func.new_block("join")
    entry.terminate(CondBr(p, left.label, right.label))
    left.terminate(Jump(join.label))
    right.terminate(Jump(join.label))
    x = func.new_vreg(Type.I32, "x")
    join.instrs.append(Phi(x, {left.label: p, right.label: p}))
    join.terminate(Return(x))
    func.ssa = True
    assert remove_trivial_phis(func) == 1
    assert func.blocks[join.label].instrs == []
    assert func.blocks[join.label].term.value == p


def test_construct_places_phis_at_merges():
    module = compile_source(matmul_source(4, 4, 4), "matmul")
    func = module.functions["matmul"]
    construct_ssa(func)
    phis = [i for b in func.blocks.values() for i in b.instrs
            if isinstance(i, Phi)]
    assert phis, "matmul's loop nests need phis"
    preds = func.predecessors()
    for block in func.blocks.values():
        seen_nonphi = False
        for instr in block.instrs:
            if isinstance(instr, Phi):
                assert not seen_nonphi, "phis must form a block prefix"
                assert set(instr.incoming) == set(preds[block.label])
            else:
                seen_nonphi = True


def test_ssa_form_is_single_assignment():
    module = compile_source(matmul_source(4, 4, 4), "matmul")
    for func in module.functions.values():
        construct_ssa(func)
        seen = set()
        for block in func.blocks.values():
            for instr in block.all_instrs():
                for reg in instr.defs():
                    assert reg.id not in seen
                    seen.add(reg.id)


def test_split_critical_edges():
    """A CondBr into a multi-pred block is a critical edge; after
    splitting none remain."""
    func = Function("f", FuncType([Type.I32], [Type.I32]))
    func.params.append(func.new_vreg(Type.I32, "p"))
    entry = func.new_block("entry")
    side = func.new_block("side")
    join = func.new_block("join")
    entry.terminate(CondBr(func.params[0], side.label, join.label))
    side.terminate(Jump(join.label))
    join.terminate(Return(Const(0, Type.I32)))
    assert split_critical_edges(func) == 1
    preds = func.predecessors()
    for label, block in func.blocks.items():
        succs = block.successors()
        if len(set(succs)) > 1:
            for succ in succs:
                assert len(preds[succ]) == 1, \
                    f"critical edge {label}->{succ} survived"


def test_loc_survives_the_round_trip():
    """Source locations drive `repro lint`; renaming must not lose
    them.  Every non-synthetic loc present before SSA is still present
    after the round trip."""
    spec = polybench_spec("gemm", "test")
    module = compile_source(spec.source, "gemm")
    func = module.functions["main"]

    def locs(f):
        out = set()
        for block in f.blocks.values():
            for instr in block.all_instrs():
                loc = getattr(instr, "loc", None)
                if loc is not None and not getattr(instr, "synthetic",
                                                   False):
                    out.add(loc)
        return out

    before = locs(func)
    assert before, "frontend must annotate source lines"
    construct_ssa(func)
    destruct_ssa(func)
    assert locs(func) >= before


# -- the verifier's SSA mode -------------------------------------------------------

def test_verifier_rejects_double_assignment_in_ssa():
    module = compile_source(matmul_source(4, 4, 4), "matmul")
    func = module.functions["matmul"]
    construct_ssa(func)
    # Re-assign an already-defined register.
    block = func.blocks[func.entry]
    target = None
    for b in func.blocks.values():
        for instr in b.instrs:
            if instr.defs():
                target = instr.defs()[0]
                break
        if target:
            break
    block.instrs.append(Move(target, Const(0, target.ty)))
    with pytest.raises(VerifyError, match="second assignment|single"):
        verify_function(func, module)


def test_verifier_rejects_phi_outside_ssa():
    func = Function("f", FuncType([], [Type.I32]))
    entry = func.new_block("entry")
    dst = func.new_vreg(Type.I32, "x")
    entry.append(Phi(dst, {"entry": Const(0, Type.I32)}))
    entry.terminate(Return(dst))
    with pytest.raises(VerifyError, match="phi outside SSA"):
        verify_function(func)


def test_verifier_rejects_phi_pred_mismatch():
    module = compile_source(matmul_source(4, 4, 4), "matmul")
    func = module.functions["matmul"]
    construct_ssa(func)
    phi = next(i for b in func.blocks.values() for i in b.instrs
               if isinstance(i, Phi))
    label, value = next(iter(phi.incoming.items()))
    phi.incoming["bogus_pred"] = value
    with pytest.raises(VerifyError, match="phi"):
        verify_function(func, module)


def test_broken_ssa_pass_is_blamed_by_name():
    """--verify-ir pass blaming: a deliberately broken SSA pass is
    named in the diagnostic."""
    from repro.ir.passmanager import (
        FunctionAnalysisManager, FunctionPass, _run_pass,
    )

    class BreakSSAPass(FunctionPass):
        name = "break-ssa"

        def run(self, func, module, fam):
            for block in func.blocks.values():
                for instr in block.instrs:
                    if instr.defs() and not isinstance(instr, Phi):
                        dup = Move(instr.defs()[0],
                                   Const(0, instr.defs()[0].ty))
                        block.instrs.append(dup)
                        return True
            return False

    module = compile_source(matmul_source(4, 4, 4), "matmul")
    func = module.functions["matmul"]
    construct_ssa(func)
    set_verify_ir(True)
    with pytest.raises(PassBlameError, match="break-ssa"):
        _run_pass(BreakSSAPass(), func, module, FunctionAnalysisManager())


# -- the new passes ----------------------------------------------------------------

def _binop_func(make_body):
    func = Function("f", FuncType([Type.I32, Type.I32], [Type.I32]))
    a = func.new_vreg(Type.I32, "a")
    b = func.new_vreg(Type.I32, "b")
    func.params.extend([a, b])
    entry = func.new_block("entry")
    ret = make_body(func, entry, a, b)
    entry.terminate(Return(ret))
    return func


def test_gvn_removes_redundant_expression():
    def body(func, entry, a, b):
        x = func.new_vreg(Type.I32, "x")
        y = func.new_vreg(Type.I32, "y")
        z = func.new_vreg(Type.I32, "z")
        entry.append(BinOp(x, "add", a, b))
        entry.append(BinOp(y, "add", b, a))      # commutes with x
        entry.append(BinOp(z, "xor", x, y))      # becomes xor x, x
        return z

    func = _binop_func(body)
    func.ssa = True
    assert global_value_numbering(func)
    verify_function(func)
    adds = [i for i in func.blocks["entry0"].instrs
            if isinstance(i, BinOp) and i.op == "add"]
    assert len(adds) == 1


def test_gvn_scopes_to_the_dominator_tree():
    """The same expression in two sibling branches is NOT redundant —
    neither occurrence dominates the other."""
    func = Function("f", FuncType([Type.I32], [Type.I32]))
    p = func.new_vreg(Type.I32, "p")
    func.params.append(p)
    entry = func.new_block("entry")
    left = func.new_block("left")
    right = func.new_block("right")
    x = func.new_vreg(Type.I32, "x")
    y = func.new_vreg(Type.I32, "y")
    left.append(BinOp(x, "mul", p, p))
    right.append(BinOp(y, "mul", p, p))
    entry.terminate(CondBr(p, left.label, right.label))
    left.terminate(Return(x))
    right.terminate(Return(y))
    func.ssa = True
    assert not global_value_numbering(func)
    verify_function(func)


def test_sccp_beats_pessimistic_folding():
    """x enters a loop as 0 and is only ever reassigned x (identity
    through a phi); SCCP proves the branch on x is never taken."""
    source = """
    int main(void) {
      int x;
      int acc;
      int i;
      x = 0;
      acc = 0;
      for (i = 0; i < 10; i++) {
        if (x != 0) { acc = acc + 100; }
        x = x * 2;          /* 0 * 2 == 0: stays 0 through the phi */
        acc = acc + 1;
      }
      return acc;
    }
    """
    module = compile_source(source, "t")
    func = module.functions["main"]
    construct_ssa(func)
    sparse_conditional_constant_propagation(func)
    verify_function(func, module)
    destruct_ssa(func)
    verify_function(func, module)
    value, _ = _interp(module)
    assert value == 10


def test_sccp_prunes_constant_branches():
    source = """
    int main(void) {
      int flag;
      flag = 1;
      if (flag) { return 42; }
      return 7;
    }
    """
    module = compile_source(source, "t")
    func = module.functions["main"]
    construct_ssa(func)
    assert sparse_conditional_constant_propagation(func)
    verify_function(func, module)
    condbrs = [b for b in func.blocks.values()
               if isinstance(b.term, CondBr)]
    assert not condbrs
    destruct_ssa(func)
    assert _interp(module)[0] == 42


def test_sccp_unmodeled_def_is_overdefined():
    # Regression: an instruction SCCP does not model (here a ``lea``
    # from the JIT cleanup) must lower its def to overdefined.  Left at
    # TOP, the branch condition derived from it stays unknown, no flow
    # edge is added, and the live successor blocks get deleted as
    # unreachable.
    from repro.ir.instructions import Lea
    from repro.ir.interp import Host
    from repro.ir.module import Module

    func = Function("f", FuncType([Type.I32], [Type.I32]))
    a = func.new_vreg(Type.I32, "a")
    func.params.append(a)
    addr = func.new_vreg(Type.I32, "addr")
    cond = func.new_vreg(Type.I32, "cond")
    out = func.new_vreg(Type.I32, "out")
    entry = func.new_block("entry")
    yes = func.new_block("yes")
    no = func.new_block("no")
    join = func.new_block("join")
    entry.append(Lea(addr, a, index=a, scale=4))
    entry.append(BinOp(cond, "lt_s", addr, Const(100, Type.I32)))
    entry.terminate(CondBr(cond, yes.label, no.label))
    yes.terminate(Jump(join.label))
    no.terminate(Jump(join.label))
    join.append(Phi(out, {yes.label: Const(1, Type.I32),
                          no.label: Const(2, Type.I32)}))
    join.terminate(Return(out))
    module = Module("t")
    module.add_function(func)
    construct_ssa(func)
    sparse_conditional_constant_propagation(func)
    verify_function(func, module)
    assert set(func.blocks) >= {yes.label, no.label, join.label}, \
        "reachable blocks must survive SCCP"
    destruct_ssa(func)
    assert IRInterpreter(module, Host()).run("f", (10,)) == 1
    assert IRInterpreter(module, Host()).run("f", (1000,)) == 2


def test_strength_reduction_rewrites():
    def body(func, entry, a, b):
        m = func.new_vreg(Type.I32, "m")
        d = func.new_vreg(Type.I32, "d")
        r = func.new_vreg(Type.I32, "r")
        s = func.new_vreg(Type.I32, "s")
        out = func.new_vreg(Type.I32, "out")
        entry.append(BinOp(m, "mul", a, Const(8, Type.I32)))
        entry.append(BinOp(d, "div_u", m, Const(16, Type.I32)))
        entry.append(BinOp(r, "rem_u", d, Const(32, Type.I32)))
        entry.append(BinOp(s, "div_s", r, Const(4, Type.I32)))  # kept
        entry.append(BinOp(out, "or", s, b))
        return out

    func = _binop_func(body)
    before = func.instruction_count()
    assert reduce_strength(func)
    assert func.instruction_count() == before, "rewrites are 1-for-1"
    ops = [i.op for i in func.blocks["entry0"].instrs
           if isinstance(i, BinOp)]
    assert ops == ["shl", "shr_u", "and", "div_s", "or"]
    shl = func.blocks["entry0"].instrs[0]
    assert shl.rhs == Const(3, Type.I32)
    verify_function(func)


def test_strength_reduction_semantics():
    """mul/div_u/rem_u by powers of two compute the same values after
    reduction, including at type boundaries (a high-bit-set operand is
    a large unsigned value)."""
    from repro.ir.interp import Host
    from repro.ir.module import Module

    def build():
        func = _binop_func(lambda f, entry, a, b: _strength_body(
            f, entry, a, b))
        module = Module("t")
        module.add_function(func)
        return module

    def _strength_body(func, entry, a, b):
        m = func.new_vreg(Type.I32, "m")
        d = func.new_vreg(Type.I32, "d")
        r = func.new_vreg(Type.I32, "r")
        t = func.new_vreg(Type.I32, "t")
        out = func.new_vreg(Type.I32, "out")
        entry.append(BinOp(m, "mul", a, Const(16, Type.I32)))
        entry.append(BinOp(d, "div_u", b, Const(8, Type.I32)))
        entry.append(BinOp(r, "rem_u", b, Const(4, Type.I32)))
        entry.append(BinOp(t, "add", m, d))
        entry.append(BinOp(out, "add", t, r))
        return out

    plain, reduced = build(), build()
    assert reduce_strength(reduced.functions["f"])
    for a, b in [(0, 0), (1, 1), (7, 9), (-1, -1), (123456, 2**31),
                 (-5, 2**31 - 1), (2**31 - 1, -8)]:
        want = IRInterpreter(plain, Host()).run("f", (a, b))
        got = IRInterpreter(reduced, Host()).run("f", (a, b))
        assert got == want, f"a={a} b={b}: {got} != {want}"


def test_midend_keeps_dead_phi_free():
    """After the full SSA mid-end there are no unused phi results."""
    module = compile_source(matmul_source(6, 5, 4), "matmul")
    for func in module.functions.values():
        run_ssa_midend(func, module)
        eliminate_dead_code(func)
        verify_function(func, module)
        assert not func.ssa


# -- pipeline equivalence across targets and tiers ---------------------------------

PIPELINE_KERNELS = ["gemm", "bicg", "gesummv"]


@pytest.mark.parametrize("name", PIPELINE_KERNELS)
def test_ssa_pipeline_matches_reference_output(name):
    """optimize_module with the SSA mid-end produces bit-identical
    observable behaviour to the legacy pipeline."""
    spec = polybench_spec(name, "test")
    base = compile_source(spec.source, name)
    m_off = optimize_module(copy.deepcopy(base), level=2, ssa=False)
    m_on = optimize_module(copy.deepcopy(base), level=2, ssa=True)
    assert _interp(m_on) == _interp(m_off)
    assert _icount(m_on) <= _icount(m_off), \
        "the SSA mid-end must never grow the program"


@pytest.mark.parametrize("tier", ["off", "quicken", "fuse"])
def test_ssa_on_native_and_jit_tiers(tier, monkeypatch):
    """matmul runs bit-identically (return code, stdout, trap-free)
    under the SSA pipeline on native and both JIT engines at every
    execution tier."""
    from repro.jit.engine import CHROME_ENGINE, FIREFOX_ENGINE

    monkeypatch.delenv("REPRO_SSA", raising=False)
    source = matmul_source(8, 7, 6)
    set_tier(tier)
    try:
        ref, ref_out = run_ir(source)
        rc, out, _ = run_native(source)
        assert (rc, out) == ((ref or 0) & 0xFFFFFFFF, ref_out)
        for engine in (CHROME_ENGINE, FIREFOX_ENGINE):
            rc, out, _ = run_engine(source, engine)
            assert (rc, out) == ((ref or 0) & 0xFFFFFFFF, ref_out), \
                f"{engine.name} diverged at tier {tier}"
    finally:
        set_tier(None)


def test_trap_text_identical_with_ssa(monkeypatch):
    """A trapping program traps with the same message whether or not
    the SSA mid-end ran."""
    from repro.errors import TrapError

    source = """
    int main(void) {
      int d;
      int i;
      d = 0;
      /* opaque: keep SCCP from proving d == 0 and folding */
      for (i = 0; i < 3; i++) { d = d - i + i; }
      return 7 / d;
    }
    """
    messages = {}
    for flag, label in (("0", "off"), ("1", "on")):
        monkeypatch.setenv("REPRO_SSA", flag)
        module = optimize_module(compile_source(source, "t"), level=2)
        with pytest.raises(TrapError) as exc:
            _interp(module)
        messages[label] = str(exc.value)
    assert messages["on"] == messages["off"]


def test_perfcounters_deterministic_under_ssa():
    """Two identical SSA-pipeline compiles execute with identical
    retired-instruction counts (the determinism rail for reports)."""
    source = matmul_source(6, 6, 6)
    runs = []
    for _ in range(2):
        rc, out, machine = run_native(source)
        runs.append((rc, out, machine.perf.instructions))
    assert runs[0] == runs[1]
