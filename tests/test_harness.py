"""Harness tests: stats, runner orchestration, Browsix-SPEC session."""

import pytest

from repro.benchsuite import spec_benchmark
from repro.browser import chrome
from repro.harness import (
    BenchmarkSpec, BrowsixSpecSession, ValidationError, compile_benchmark,
    geomean, mean, median, run_benchmark, run_compiled, stderr,
)


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_stderr_of_constant_is_zero(self):
        assert stderr([5.0, 5.0, 5.0]) == 0.0
        assert stderr([5.0]) == 0.0

    def test_stderr_scales_with_spread(self):
        tight = stderr([1.0, 1.01, 0.99])
        wide = stderr([1.0, 2.0, 0.5])
        assert wide > tight > 0

    def test_geomean(self):
        assert abs(geomean([2.0, 8.0]) - 4.0) < 1e-12
        assert geomean([]) == 0.0

    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5


class TestRunner:
    @pytest.fixture(scope="class")
    def spec(self):
        return spec_benchmark("462.libquantum", "test")

    def test_compile_produces_all_targets(self, spec):
        compiled = compile_benchmark(spec, ("native", "chrome",
                                            "firefox"))
        assert set(compiled.programs) == {"native", "chrome", "firefox"}
        assert compiled.wasm_bytes[:4] == b"\x00asm"
        assert compiled.compile_seconds["native"] > 0

    def test_run_compiled_reports_times_and_counters(self, spec):
        compiled = compile_benchmark(spec, ("native",))
        result = run_compiled(compiled, "native", runs=5)
        assert len(result.times) == 5
        assert result.mean_seconds > 0
        assert result.stderr_seconds >= 0
        assert result.perf.instructions > 100

    def test_measurement_noise_is_deterministic_per_benchmark(self, spec):
        compiled = compile_benchmark(spec, ("native",))
        a = run_compiled(compiled, "native", runs=5)
        b = run_compiled(compiled, "native", runs=5)
        assert a.times == b.times  # seeded by (benchmark, target)

    def test_run_benchmark_validates_outputs(self, spec):
        results = run_benchmark(spec, targets=("native", "chrome"),
                                runs=1)
        assert results["native"].run.stdout == \
            results["chrome"].run.stdout

    def test_validation_error_on_mismatch(self, monkeypatch, spec):
        results = run_benchmark(spec, targets=("native", "chrome"),
                                runs=1, validate=False)
        # Force a mismatch through the private check to prove it bites.
        results["chrome"].run.stdout = b"corrupted"
        from repro.analysis.experiments import SuiteData
        data = SuiteData([], [])
        data.results = {spec.name: {
            "native": results["native"], "chrome": results["chrome"]}}
        with pytest.raises(AssertionError):
            data._validate()


class TestBrowsixSpecSession:
    def test_full_session_lifecycle(self):
        spec = spec_benchmark("401.bzip2", "test")
        compiled = compile_benchmark(spec, ("native", "chrome"))

        session = BrowsixSpecSession(chrome(), spec).launch()
        result = session.run(compiled.wasm_bytes)
        assert result.exit_code == 0

        native = run_compiled(compiled, "native", runs=1)
        assert session.validate(native.run.stdout)

        archive = session.collect()
        assert archive["stdout"] == native.run.stdout
        assert "out.bz" in archive["files"]
        assert archive["perf"].instructions > 0
        session.kill()
        assert session.kernel is None
