"""CLI tests (`python -m repro ...`)."""

import pytest

from repro.cli import main

PROGRAM = """
int main(void) {
    int i; int s = 0;
    for (i = 0; i < 12; i++) { s += i * i; }
    print_i32(s);
    return 0;
}
"""

IO_PROGRAM = """
char buf[32];
int main(void) {
    int fd = sys_open("words.txt", 0);
    int n = sys_read(fd, buf, 32);
    sys_close(fd);
    print_i32(n);
    return 0;
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


def test_run_native(program_file, capsys):
    assert main(["run", program_file]) == 0
    assert capsys.readouterr().out == "506\n"


def test_run_with_stats(program_file, capsys):
    assert main(["run", program_file, "--target", "firefox",
                 "--stats"]) == 0
    captured = capsys.readouterr()
    assert captured.out == "506\n"
    assert "instrs" in captured.err


def test_run_stages_files(tmp_path, capsys):
    prog = tmp_path / "io.c"
    prog.write_text(IO_PROGRAM)
    data = tmp_path / "words.txt"
    data.write_bytes(b"hello cli")
    assert main(["run", str(prog), "--file", str(data)]) == 0
    assert capsys.readouterr().out == "9\n"


def test_compare_all_pipelines(program_file, capsys):
    assert main(["compare", program_file]) == 0
    out = capsys.readouterr().out
    for target in ("native", "chrome", "firefox", "asmjs-chrome",
                   "asmjs-firefox"):
        assert target in out
    assert "identical" in out


def test_disasm(program_file, capsys):
    assert main(["disasm", program_file, "--function", "main"]) == 0
    out = capsys.readouterr().out
    assert "---- main (native) ----" in out
    assert "ret" in out


def test_wat(program_file, capsys):
    assert main(["wat", program_file]) == 0
    out = capsys.readouterr().out
    assert out.startswith("(module")
    # The dumped WAT parses back.
    from repro.wasm import parse_wat, validate_module
    validate_module(parse_wat(out))


def test_bench_known_benchmark(capsys):
    assert main(["bench", "durbin", "--size", "test", "--runs", "2"]) == 0
    out = capsys.readouterr().out
    assert "durbin" in out and "native" in out


def test_bench_unknown_benchmark(capsys):
    assert main(["bench", "nonesuch"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_report_static_artifacts(capsys):
    assert main(["report", "table3"]) == 0
    assert "perf event" in capsys.readouterr().out


def test_report_unknown(capsys):
    assert main(["report", "fig99"]) == 2


def test_report_spec_figure_at_test_size(capsys):
    assert main(["report", "fig4", "--size", "test", "--runs", "1"]) == 0
    assert "Browsix" in capsys.readouterr().out
