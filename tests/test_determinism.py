"""Determinism: the entire toolchain is reproducible bit for bit."""

import os
import subprocess
import sys

from conftest import compile_wasm_bytes, run_native

import repro
from repro.jit import CHROME_ENGINE

SOURCE = """
int main(void) {
    int i; int acc = 1;
    for (i = 0; i < 64; i++) { acc = acc * 33 + i; }
    print_i32(acc);
    return 0;
}
"""


def test_wasm_bytes_deterministic():
    a, _, _ = compile_wasm_bytes(SOURCE)
    b, _, _ = compile_wasm_bytes(SOURCE)
    assert a == b


def test_jit_codegen_deterministic():
    data, _, _ = compile_wasm_bytes(SOURCE)
    prog_a = CHROME_ENGINE.compile_bytes(data)
    prog_b = CHROME_ENGINE.compile_bytes(data)
    listing_a = [f.listing() for f in prog_a.functions.values()]
    listing_b = [f.listing() for f in prog_b.functions.values()]
    assert listing_a == listing_b


def test_perf_counters_deterministic():
    _, _, m1 = run_native(SOURCE)
    _, _, m2 = run_native(SOURCE)
    assert m1.perf.as_dict() == m2.perf.as_dict()


def test_benchmark_times_stable_across_processes():
    """The harness's synthesized measurement noise must be seeded stably,
    not with Python's per-process randomized hash()."""
    script = (
        "from repro.benchsuite import spec_benchmark\n"
        "from repro.harness.runner import compile_benchmark, run_compiled\n"
        "c = compile_benchmark(spec_benchmark('462.libquantum', 'test'),"
        " ('native',))\n"
        "r = run_compiled(c, 'native', runs=3)\n"
        "print([f'{t:.12e}' for t in r.times])\n"
    )
    # The child process gets a minimal environment, so point it at the
    # repro package explicitly (the parent may be running from src/).
    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    outputs = set()
    for seed in ("1", "2"):
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin",
                 "PYTHONPATH": src_dir},
            capture_output=True, text=True, cwd="/root/repo")
        assert proc.returncode == 0, proc.stderr
        outputs.add(proc.stdout.strip())
    assert len(outputs) == 1, outputs
