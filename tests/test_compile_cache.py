"""The content-addressed compile cache: hits, misses, invalidation."""

import hashlib

import pytest

from repro.benchsuite import polybench_benchmark
from repro.harness import compilecache
from repro.harness.compilecache import CompileCache
from repro.harness.runner import compile_benchmark

TARGETS = ("native", "chrome")


@pytest.fixture
def cache(tmp_path):
    return CompileCache(directory=str(tmp_path))


def test_miss_then_memory_hit(cache):
    spec = polybench_benchmark("trisolv", "test")
    compile_benchmark(spec, TARGETS, cache=cache)
    assert cache.stats.hits == 0
    assert cache.stats.misses > 0
    assert cache.stats.stores == cache.stats.misses
    first_misses = cache.stats.misses

    compile_benchmark(spec, TARGETS, cache=cache)
    assert cache.stats.memory_hits == first_misses
    assert cache.stats.misses == first_misses  # no new misses


def test_disk_hit_across_cache_instances(tmp_path):
    spec = polybench_benchmark("trisolv", "test")
    warm = CompileCache(directory=str(tmp_path))
    compile_benchmark(spec, TARGETS, cache=warm)

    # A fresh instance has an empty memory tier: all hits come from disk.
    cold = CompileCache(directory=str(tmp_path))
    compile_benchmark(spec, TARGETS, cache=cold)
    assert cold.stats.misses == 0
    assert cold.stats.disk_hits == warm.stats.misses


def test_cached_artifacts_equal_fresh(cache):
    spec = polybench_benchmark("trisolv", "test")
    fresh = compile_benchmark(spec, TARGETS, cache=False)
    compile_benchmark(spec, TARGETS, cache=cache)     # populate
    cached = compile_benchmark(spec, TARGETS, cache=cache)
    assert cache.stats.hits > 0

    # The wasm module must be byte-identical, not just equivalent.
    assert hashlib.sha256(cached.wasm_bytes).hexdigest() == \
        hashlib.sha256(fresh.wasm_bytes).hexdigest()
    for target in TARGETS:
        a = fresh.programs[target]
        b = cached.programs[target]
        assert [f.listing() for f in a.functions.values()] == \
            [f.listing() for f in b.functions.values()]


def test_key_invalidates_on_flags(cache):
    spec = polybench_benchmark("trisolv", "test")
    base = cache.key("native", spec.source, spec.name, spec.memory_size,
                     ("opt", 2), ("unroll", True))
    other_opt = cache.key("native", spec.source, spec.name,
                          spec.memory_size, ("opt", 1), ("unroll", True))
    other_pipe = cache.key("emscripten", spec.source, spec.name,
                           spec.memory_size, ("opt", 2), ("unroll", True))
    assert base != other_opt
    assert base != other_pipe
    # Same inputs, same key (content addressing is deterministic).
    assert base == cache.key("native", spec.source, spec.name,
                             spec.memory_size, ("opt", 2),
                             ("unroll", True))


def test_key_invalidates_on_toolchain_version(cache, monkeypatch):
    spec = polybench_benchmark("trisolv", "test")
    parts = ("native", spec.source, spec.name, spec.memory_size,
             ("opt", 2), ("unroll", True))
    before = cache.key(*parts)
    # Simulate a compiler edit: the fingerprint changes, so every key
    # changes and the old artifacts can never be served.
    monkeypatch.setattr(compilecache, "_FINGERPRINT", "deadbeef" * 8)
    after = cache.key(*parts)
    assert before != after


def test_typed_keys_distinguish_types(cache):
    assert cache.key(1) != cache.key("1")
    assert cache.key(1) != cache.key(1.0)
    assert cache.key(None) != cache.key("")
    assert cache.key(("a", "b")) != cache.key("ab")


def test_cache_false_disables(cache):
    spec = polybench_benchmark("trisolv", "test")
    compiled = compile_benchmark(spec, ("native",), cache=False)
    assert "native" in compiled.programs
    assert cache.stats.lookups == 0


def test_repro_no_cache_env(monkeypatch):
    monkeypatch.setattr(compilecache, "_ENABLED", None)
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert not compilecache.is_enabled()
    assert compilecache.resolve_cache(None) is None
    monkeypatch.delenv("REPRO_NO_CACHE")
    assert compilecache.is_enabled()
