"""Optimizer pass tests: specific transformations + semantics preservation."""

import pytest

from conftest import GuestHost, run_ir

from repro.ir import (
    BinOp, CondBr, Const, IRInterpreter, Jump, Move, Return, Type,
    verify_module,
)
from repro.ir.loops import dominators, loop_depths, natural_loops
from repro.ir.passes import (
    collapse_defs, eliminate_dead_code, fold_constants, hoist_invariants,
    inline_calls, localize_temps, optimize_module, propagate_copies,
    rotate_loops, simplify_cfg, unroll_loops,
)
from repro.mcc import compile_source

FIB = """
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void) { print_i32(fib(15)); return 0; }
"""

LOOPY = """
int data[50];
int main(void) {
    int i; int j;
    for (i = 0; i < 50; i++) { data[i] = i * 3; }
    int sum = 0;
    for (i = 0; i < 10; i++)
        for (j = 0; j < 50; j++)
            sum += data[j] * (i + 1);
    print_i32(sum);
    return 0;
}
"""

PROGRAMS = [FIB, LOOPY]


def _run(module):
    host = GuestHost(module.heap_base)
    rc = IRInterpreter(module, host).run("main")
    return rc, bytes(host.output)


def _reference(source):
    return _run(compile_source(source, "ref"))


@pytest.mark.parametrize("source", PROGRAMS)
@pytest.mark.parametrize("level,unroll", [(1, False), (2, False), (2, True)])
def test_optimize_module_preserves_semantics(source, level, unroll):
    expected = _reference(source)
    module = compile_source(source, "opt")
    optimize_module(module, level=level, unroll=unroll)
    verify_module(module)
    assert _run(module) == expected


def test_constant_folding_folds_arithmetic():
    module = compile_source(
        "int main(void) { return 2 * 3 + 4; }", "t")
    func = module.functions["main"]
    for _ in range(3):  # fold/propagate to a fixpoint
        fold_constants(func)
        propagate_copies(func)
    # After folding, main should return a constant 10.
    rets = [b.term for b in func.blocks.values()
            if isinstance(b.term, Return)]
    assert any(isinstance(r.value, Const) and r.value.value == 10
               for r in rets)


def test_constant_folding_resolves_constant_branches():
    module = compile_source(
        "int main(void) { if (1 < 2) { return 7; } return 8; }", "t")
    func = module.functions["main"]
    fold_constants(func)
    propagate_copies(func)
    fold_constants(func)
    terms = [b.term for b in func.blocks.values()]
    assert not any(isinstance(t, CondBr) for t in terms)


def test_dce_removes_unused_pure_code():
    module = compile_source("""
int main(void) {
    int unused = 5 * 7;
    int also_unused = unused + 2;
    return 3;
}
""", "t")
    func = module.functions["main"]
    propagate_copies(func)
    eliminate_dead_code(func)
    assert all(not isinstance(i, BinOp) for b in func.blocks.values()
               for i in b.instrs)


def test_dce_keeps_calls():
    module = compile_source("""
int g = 0;
int bump(void) { g++; return g; }
int main(void) { bump(); print_i32(g); return 0; }
""", "t")
    expected = _reference("""
int g = 0;
int bump(void) { g++; return g; }
int main(void) { bump(); print_i32(g); return 0; }
""")
    for func in module.functions.values():
        eliminate_dead_code(func)
    assert _run(module) == expected


def test_inline_small_function():
    source = """
int sq(int x) { return x * x; }
int main(void) { print_i32(sq(6) + sq(2)); return 0; }
"""
    expected = _reference(source)
    module = compile_source(source, "t")
    count = inline_calls(module, threshold=20)
    assert count >= 2
    from repro.ir.instructions import Call
    main = module.functions["main"]
    callees = [i.callee for b in main.blocks.values() for i in b.instrs
               if isinstance(i, Call)]
    assert "sq" not in callees
    verify_module(module)
    assert _run(module) == expected


def test_inline_skips_recursive():
    module = compile_source(FIB, "t")
    inline_calls(module, threshold=1000)
    from repro.ir.instructions import Call
    fib = module.functions["fib"]
    callees = [i.callee for b in fib.blocks.values() for i in b.instrs
               if isinstance(i, Call)]
    assert "fib" in callees


def test_rotation_reduces_loop_branches():
    source = """
int main(void) {
    int i; int s = 0;
    for (i = 0; i < 100; i++) { s += i; }
    print_i32(s);
    return 0;
}
"""
    expected = _reference(source)
    module = compile_source(source, "t")
    func = module.functions["main"]
    rotated = rotate_loops(func)
    assert rotated >= 1
    simplify_cfg(func)
    verify_module(module)
    assert _run(module) == expected


def test_unroll_duplicates_loop_and_preserves_behaviour():
    expected = _reference(LOOPY)
    module = compile_source(LOOPY, "t")
    optimize_module(module, level=2, unroll=False)
    before = module.instruction_count()
    for func in module.functions.values():
        if unroll_loops(func, factor=4):
            localize_temps(func)
        simplify_cfg(func)
    verify_module(module)
    assert module.instruction_count() > before
    assert _run(module) == expected


def test_licm_hoists_invariant_computation():
    source = """
int main(void) {
    int i; int s = 0;
    int a = 17; int b = 4;
    for (i = 0; i < 10; i++) {
        s += a * b + i;
    }
    print_i32(s);
    return 0;
}
"""
    expected = _reference(source)
    module = compile_source(source, "t")
    func = module.functions["main"]
    fold_constants(func)
    propagate_copies(func)
    collapse_defs(func)
    moved = hoist_invariants(func)
    verify_module(module)
    assert _run(module) == expected
    # a*b is constant-foldable here, so LICM may or may not find work;
    # the key property is preservation.  Use a non-foldable variant too:
    source2 = source.replace("int a = 17;", "int a = fetch();") \
        .replace("int main", "int fetch(void) { return 17; }\nint main")
    expected2 = _reference(source2)
    module2 = compile_source(source2, "t")
    func2 = module2.functions["main"]
    propagate_copies(func2)
    collapse_defs(func2)
    moved2 = hoist_invariants(func2)
    assert moved2 >= 1
    verify_module(module2)
    assert _run(module2) == expected2


def test_licm_does_not_hoist_loop_varying():
    # Regression for the def-blocks bug: a loop-carried variable must not
    # be treated as invariant.
    source = """
int main(void) {
    int i; int s = 0;
    for (i = 0; i < 5; i++) { s += i * 4; }
    print_i32(s);
    return 0;
}
"""
    expected = _reference(source)
    module = compile_source(source, "t")
    optimize_module(module, level=2)
    verify_module(module)
    assert _run(module) == expected


def test_simplifycfg_removes_unreachable_blocks():
    module = compile_source("""
int main(void) {
    return 1;
    print_i32(99);
    return 2;
}
""", "t")
    func = module.functions["main"]
    simplify_cfg(func)
    assert len(func.blocks) == len(func.reachable_blocks())


def test_collapse_defs_removes_move():
    module = compile_source(
        "int main(void) { int a = 3 + 4; int b = a; return b; }", "t")
    func = module.functions["main"]
    before = func.instruction_count()
    propagate_copies(func)
    collapse_defs(func)
    eliminate_dead_code(func)
    assert func.instruction_count() < before


def test_natural_loop_detection():
    module = compile_source(LOOPY, "t")
    func = module.functions["main"]
    loops = natural_loops(func)
    assert len(loops) == 3  # init loop + two nested sum loops
    depths = loop_depths(func)
    assert max(depths.values()) == 2


def test_dominators_entry_dominates_all():
    module = compile_source(LOOPY, "t")
    func = module.functions["main"]
    dom = dominators(func)
    for label, doms in dom.items():
        assert func.entry in doms
