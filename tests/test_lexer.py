"""Lexer unit tests."""

import pytest

from repro.errors import CompileError
from repro.mcc.lexer import preprocess, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


def test_keywords_and_identifiers():
    toks = kinds("int foo while whilex")
    assert toks == [("keyword", "int"), ("ident", "foo"),
                    ("keyword", "while"), ("ident", "whilex")]


def test_integer_literals():
    toks = kinds("0 42 0x1F 0xff")
    assert [v for _, v in toks] == [0, 42, 31, 255]


def test_long_literal_suffix():
    toks = kinds("5L 5l")
    assert toks == [("long", 5), ("long", 5)]


def test_float_literals():
    toks = kinds("1.5 0.25 2. 1e3 1.5e-2")
    assert toks[0] == ("float", 1.5)
    assert toks[1] == ("float", 0.25)
    assert toks[2] == ("float", 2.0)
    assert toks[3] == ("float", 1000.0)
    assert toks[4] == ("float", 0.015)


def test_char_literals():
    toks = kinds(r"'a' '\n' '\0' '\\'")
    assert [v for _, v in toks] == [97, 10, 0, 92]


def test_string_literals_with_escapes():
    toks = kinds(r'"hi\n" "a\tb"')
    assert toks == [("string", "hi\n"), ("string", "a\tb")]


def test_operators_maximal_munch():
    toks = kinds("a<<=b >>= == <= >= && || ++ -- ->")
    values = [v for k, v in toks if k == "op"]
    assert values == ["<<=", ">>=", "==", "<=", ">=", "&&", "||",
                      "++", "--", "->"]


def test_comments_are_skipped():
    toks = kinds("a // line comment\n b /* block\n comment */ c")
    assert [v for _, v in toks] == ["a", "b", "c"]


def test_unterminated_block_comment():
    with pytest.raises(CompileError):
        tokenize("/* never closed")


def test_unterminated_string():
    with pytest.raises(CompileError):
        tokenize('"oops')


def test_unexpected_character():
    with pytest.raises(CompileError):
        tokenize("int a @ b;")


def test_line_numbers():
    toks = tokenize("a\nb\n  c")
    assert toks[0].line == 1
    assert toks[1].line == 2
    assert toks[2].line == 3
    assert toks[2].col == 3


def test_preprocess_define():
    out = preprocess("#define N 10\nint a[N];")
    assert "int a[10];" in out


def test_preprocess_nested_defines():
    out = preprocess("#define A 4\n#define B (A * 2)\nint x = B;")
    assert "int x = ((4) * 2);".replace("(4)", "(4 * 2)") or True
    assert "4" in out and "#define" not in out


def test_preprocess_define_without_value_defaults_to_one():
    out = preprocess("#define FLAG\nint x = FLAG;")
    assert "int x = 1;" in out


def test_preprocess_does_not_touch_partial_matches():
    out = preprocess("#define N 10\nint NOPE = 1;")
    assert "NOPE" in out
