"""``repro lint`` tests: seeded-bug fixtures, JSON round-trip, exit
codes, and the analysis counters."""

import json
import os

import pytest

from repro.cli import main
from repro.mcc.lint import (LintFinding, format_findings, lint_file,
                            lint_source)

FIXTURES = os.path.join(os.path.dirname(__file__), "..", "examples", "lint")

#: fixture -> exact (line, severity, check) triples, in output order.
EXPECTED = {
    "uninit.mc": [
        (3, "error", "uninitialized-use"),
        (11, "warning", "uninitialized-use"),
    ],
    "dead_store.mc": [
        (2, "warning", "dead-store"),
        (8, "warning", "dead-store"),
        (9, "warning", "dead-store"),
    ],
    "unreachable.mc": [
        (3, "warning", "unreachable-code"),
        (13, "warning", "unreachable-code"),
    ],
    "const_oob.mc": [
        (4, "error", "range-oob"),
        (9, "error", "range-oob"),
    ],
    "range_oob.mc": [
        (9, "warning", "range-oob"),
        (13, "error", "range-oob"),
        (17, "error", "shift-range"),
        (21, "warning", "shift-range"),
    ],
    "missing_return.mc": [
        (1, "error", "missing-return"),
    ],
    "const_branch.mc": [
        (3, "note", "constant-branch"),
        (10, "note", "constant-branch"),
    ],
    "clean.mc": [],
}


def _fixture(name):
    return os.path.join(FIXTURES, name)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_fixture_findings(name):
    findings = lint_file(_fixture(name))
    got = [(f.line, f.severity, f.check) for f in findings]
    assert got == EXPECTED[name]


def test_messages_name_the_variable():
    findings = lint_file(_fixture("uninit.mc"))
    assert "variable 'x' is used uninitialized" in findings[0].message
    assert "variable 'y' may be used uninitialized" in findings[1].message


def test_const_oob_reports_index_and_length():
    findings = lint_file(_fixture("const_oob.mc"))
    assert findings[0].message == \
        "index 8 is out of bounds for array of length 8"
    assert findings[1].message == \
        "index -1 is out of bounds for array of length 4"


def test_format_includes_file_line_severity_check():
    finding = lint_file(_fixture("missing_return.mc"))[0]
    text = finding.format()
    assert text.startswith(f"{_fixture('missing_return.mc')}:1: error: ")
    assert text.endswith("[missing-return]")


def test_json_round_trip():
    for name in sorted(EXPECTED):
        for finding in lint_file(_fixture(name)):
            data = json.loads(json.dumps(finding.as_dict()))
            back = LintFinding.from_dict(data)
            assert back.as_dict() == finding.as_dict()
            assert back.format() == finding.format()


def test_compile_error_becomes_finding():
    findings = lint_source("int main(void) { return }", "bad.mc")
    assert len(findings) == 1
    assert findings[0].severity == "error"
    assert findings[0].check == "compile"


def test_findings_sorted_by_line():
    for name in sorted(EXPECTED):
        lines = [f.line for f in lint_file(_fixture(name))]
        assert lines == sorted(lines)


def test_format_findings_summary_line():
    text = format_findings(lint_file(_fixture("uninit.mc")))
    assert text.splitlines()[-1] == "2 finding(s): 1 error(s), 1 warning(s)"


# -- CLI surface -----------------------------------------------------------

def test_cli_exit_one_on_errors(capsys):
    assert main(["lint", _fixture("uninit.mc")]) == 1
    out = capsys.readouterr().out
    assert "uninit.mc:3: error:" in out


def test_cli_exit_zero_on_warnings_only(capsys):
    assert main(["lint", _fixture("dead_store.mc")]) == 0
    assert main(["lint", _fixture("clean.mc")]) == 0


def test_cli_json_output_round_trips(capsys):
    assert main(["lint", "--json", _fixture("const_oob.mc")]) == 1
    data = json.loads(capsys.readouterr().out)
    got = [(f["line"], f["severity"], f["check"]) for f in data]
    assert got == EXPECTED["const_oob.mc"]
    for entry in data:
        assert LintFinding.from_dict(entry).as_dict() == entry


def test_cli_multiple_files(capsys):
    assert main(["lint", _fixture("clean.mc"),
                 _fixture("missing_return.mc")]) == 1
    out = capsys.readouterr().out
    assert "missing_return.mc:1:" in out


# -- counters --------------------------------------------------------------

def test_lint_increments_analysis_counter():
    from repro.obs import metrics
    registry = metrics.enable()
    try:
        lint_file(_fixture("uninit.mc"))
        counters = registry.as_dict()["counters"]
        assert counters.get("analysis.lints_emitted", 0) >= 2
    finally:
        metrics.disable()
