"""Property tests: wasm interpreter numerics agree with the shared
two's-complement reference (repro.ir.intops) and with the IR evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrapError
from repro.ir import intops
from repro.ir.interp import eval_binop
from repro.ir.types import Type
from repro.wasm import (
    WasmFuncType, WasmFunction, WasmInstance, WasmInstr, WasmModule,
)
from repro.wasm.module import WasmExport

_I = WasmInstr

u32s = st.integers(min_value=0, max_value=2 ** 32 - 1)
u64s = st.integers(min_value=0, max_value=2 ** 64 - 1)

_I32_BINOPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "shr_s",
               "shr_u", "rotl", "rotr", "div_s", "div_u", "rem_s",
               "rem_u", "eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u",
               "le_s", "le_u", "ge_s", "ge_u"]


_CMP_OPS = {"eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s", "le_u",
            "ge_s", "ge_u", "lt", "le", "gt", "ge"}


def _make_binop_module(op: str, prefix: str = "i32") -> WasmInstance:
    module = WasmModule("prop")
    result = "i32" if op in _CMP_OPS else prefix
    ti = module.type_index(WasmFuncType((prefix, prefix), (result,)))
    body = [_I("local.get", 0), _I("local.get", 1), _I(f"{prefix}.{op}")]
    module.functions.append(WasmFunction(ti, [], body, "f"))
    module.exports.append(WasmExport("f", "func", 0))
    return WasmInstance(module)


_INSTANCES = {}


def _run_op(prefix, op, a, b):
    key = (prefix, op)
    if key not in _INSTANCES:
        _INSTANCES[key] = _make_binop_module(op, prefix)
    return _INSTANCES[key].invoke("f", [a, b])


@settings(max_examples=40, deadline=None)
@given(u32s, u32s, st.sampled_from(_I32_BINOPS))
def test_i32_binops_match_ir_semantics(a, b, op):
    try:
        expected = eval_binop(op, a, b, Type.I32)
    except TrapError:
        with pytest.raises(TrapError):
            _run_op("i32", op, a, b)
        return
    if op == "div_s" and intops.signed32(a) == -(2 ** 31) \
            and intops.signed32(b) == -1:
        # wasm traps on INT_MIN / -1; the IR evaluator wraps (C UB).
        with pytest.raises(TrapError):
            _run_op("i32", op, a, b)
        return
    assert _run_op("i32", op, a, b) == expected


@settings(max_examples=25, deadline=None)
@given(u64s, u64s, st.sampled_from(["add", "sub", "mul", "shl", "shr_u",
                                    "xor", "lt_u", "ge_s"]))
def test_i64_binops_match_ir_semantics(a, b, op):
    expected = eval_binop(op, a, b, Type.I64)
    assert _run_op("i64", op, a, b) == expected


@settings(max_examples=30, deadline=None)
@given(st.floats(allow_nan=False, allow_infinity=False, width=64),
       st.floats(allow_nan=False, allow_infinity=False, width=64),
       st.sampled_from(["add", "sub", "mul", "min", "max", "copysign",
                        "lt", "le", "gt", "ge", "eq", "ne"]))
def test_f64_binops_match_ir_semantics(a, b, op):
    expected = eval_binop(op, a, b, Type.F64)
    got = _run_op("f64", op, a, b)
    if isinstance(expected, float) and expected != expected:
        assert got != got
    else:
        assert got == expected


@settings(max_examples=30, deadline=None)
@given(u32s)
def test_i32_unops_match_intops(a):
    module = WasmModule("u")
    ti = module.type_index(WasmFuncType(("i32",), ("i32",)))
    for i, op in enumerate(["clz", "ctz", "popcnt", "eqz"]):
        body = [_I("local.get", 0), _I(f"i32.{op}")]
        module.functions.append(WasmFunction(ti, [], body, op))
        module.exports.append(WasmExport(op, "func", i))
    instance = WasmInstance(module)
    assert instance.invoke("clz", [a]) == intops.clz(a, 32)
    assert instance.invoke("ctz", [a]) == intops.ctz(a, 32)
    assert instance.invoke("popcnt", [a]) == intops.popcnt(a, 32)
    assert instance.invoke("eqz", [a]) == (1 if a == 0 else 0)


@settings(max_examples=30, deadline=None)
@given(u64s)
def test_reinterpret_roundtrip(bits):
    module = WasmModule("r")
    ti = module.type_index(WasmFuncType(("i64",), ("i64",)))
    body = [_I("local.get", 0), _I("f64.reinterpret_i64"),
            _I("i64.reinterpret_f64")]
    module.functions.append(WasmFunction(ti, [], body, "rt"))
    module.exports.append(WasmExport("rt", "func", 0))
    instance = WasmInstance(module)
    result = instance.invoke("rt", [bits])
    # NaN payloads may canonicalize through the Python float; everything
    # else round-trips exactly.
    exponent = (bits >> 52) & 0x7FF
    mantissa = bits & ((1 << 52) - 1)
    if exponent == 0x7FF and mantissa:
        assert (result >> 52) & 0x7FF == 0x7FF
    else:
        assert result == bits


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
def test_extend_then_wrap_is_identity(x):
    module = WasmModule("e")
    ti = module.type_index(WasmFuncType(("i32",), ("i32",)))
    body = [_I("local.get", 0), _I("i64.extend_i32_s"),
            _I("i32.wrap_i64")]
    module.functions.append(WasmFunction(ti, [], body, "ew"))
    module.exports.append(WasmExport("ew", "func", 0))
    instance = WasmInstance(module)
    assert instance.invoke("ew", [x & 0xFFFFFFFF]) == x & 0xFFFFFFFF
