"""Observability layer tests: tracing, metrics, and profile exactness.

The load-bearing invariants:

* per-function profile buckets sum EXACTLY to the whole-program
  counters (attribution is only trustworthy if it is exact);
* enabling tracing/metrics/profiling changes no output, counter, or
  synthesized timing — observability only observes;
* the cycle model is linear in the event counts;
* ``percentile`` satisfies the usual order statistics properties.
"""

import json
import math

import pytest
from conftest import GuestHost, compile_wasm_bytes

from repro import obs
from repro.benchsuite import matmul_spec
from repro.codegen import compile_native
from repro.harness.compilecache import CompileCache
from repro.harness.runner import compile_benchmark, run_compiled
from repro.harness.stats import p50, p95, p99, percentile
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.profile import (
    PROFILE_FIELDS, MachineProfile, WasmProfile, profile_benchmark,
)
from repro.wasm import WasmInstance, decode_module
from repro.x86 import X86Machine
from repro.x86.perf import EVENT_TABLE, PerfCounters

PROGRAM = """
int square(int x) {
    int j; int acc = 0;
    for (j = 0; j < x; j++) {
        acc += x * j;
        if (acc > 10000) { acc -= 10000; }
        acc += j / 3;
        acc -= j / 5;
        acc += (j * 7) / 11;
        if (acc < 0) { acc += 13; }
        acc += x / 7;
    }
    return acc;
}
int main(void) {
    int i; int s = 0;
    for (i = 0; i < 25; i++) { s += square(i); }
    print_i32(s);
    return 0;
}
"""


@pytest.fixture(autouse=True)
def _observability_off():
    """Never leak an enabled tracer/registry into another test."""
    yield
    obs.disable_tracing()
    obs.disable_metrics()


def _run_native(profile=None):
    program, module = compile_native(PROGRAM, "test")
    host = GuestHost(module.heap_base)
    machine = X86Machine(program, host=host, profile=profile)
    rax, _ = machine.call("main")
    return rax & 0xFFFFFFFF, bytes(host.output), machine


# -- span tracing -------------------------------------------------------------------


def test_tracer_records_nested_spans():
    tracer = obs_trace.Tracer()
    with tracer.span("outer"):
        with tracer.span("inner", {"k": 1}):
            pass
    assert [e[0] for e in tracer.events] == ["inner", "outer"]
    names_by_depth = {e[0]: e[3] for e in tracer.events}
    assert names_by_depth == {"outer": 0, "inner": 1}
    assert tracer.phases() == ["outer", "inner"]  # first-start order
    assert tracer.total_seconds() >= 0.0


def test_span_marks_errors():
    tracer = obs_trace.Tracer()
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    (name, _s, _e, _d, args) = tracer.events[0]
    assert name == "doomed"
    assert args["error"] == "ValueError"


def test_global_span_is_null_when_disabled():
    assert obs_trace.current() is None
    assert obs.span("anything", k=1) is obs_trace.NULL_SPAN
    tracer = obs.enable_tracing()
    with obs.span("real", k=1):
        pass
    assert obs_trace.current() is tracer
    assert tracer.events[0][0] == "real"
    obs.disable_tracing()
    assert obs.span("again") is obs_trace.NULL_SPAN


def test_chrome_export_is_valid_trace_event_json():
    tracer = obs_trace.Tracer()
    with tracer.span("phase.a", {"module": "m", "obj": object()}):
        with tracer.span("phase.b"):
            pass
    doc = json.loads(json.dumps(tracer.to_chrome()))
    events = doc["traceEvents"]
    assert events[0]["ph"] == "M"          # process_name metadata
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {"phase.a", "phase.b"}
    for event in complete:
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        assert event["pid"] == 1 and event["tid"] == 1
    # Non-primitive args are stringified, never structural.
    (a,) = [e for e in complete if e["name"] == "phase.a"]
    assert isinstance(a["args"]["obj"], str)


def test_full_pipeline_trace_covers_phases():
    obs.enable_tracing()
    spec = matmul_spec(8)
    compiled = compile_benchmark(spec, ("native", "chrome"), cache=False)
    run_compiled(compiled, "chrome", runs=1)
    phases = obs_trace.current().phases()
    expected = {
        "frontend.parse", "frontend.irgen", "opt.cleanup",
        "codegen.lower", "regalloc", "wasm.encode", "wasm.validate",
        "jit.translate", "kernel.boot", "execute",
    }
    assert expected <= set(phases)
    assert len(phases) >= 8


def test_tracer_span_reentrancy():
    """The same span name can be open multiple times at once (recursive
    phases); depth bookkeeping survives nesting and exceptions."""
    tracer = obs_trace.Tracer()

    def recurse(n):
        with tracer.span("phase"):
            if n:
                recurse(n - 1)

    recurse(3)
    assert tracer.depth == 0
    phase_events = [e for e in tracer.events if e[0] == "phase"]
    assert len(phase_events) == 4
    # Innermost activation completes first, at the greatest depth.
    assert [e[3] for e in phase_events] == [3, 2, 1, 0]
    # An exception inside a span must unwind the depth counter too.
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    assert tracer.depth == 0
    # The tracer stays usable after the unwind, at depth 0.
    with tracer.span("after"):
        pass
    assert tracer.events[-1][3] == 0


def test_global_span_reenters_after_disable():
    tracer = obs.enable_tracing()
    with obs.span("a"):
        with obs.span("a"):       # reentrant on the same name
            pass
    obs.disable_tracing()
    assert obs.span("ignored") is obs_trace.NULL_SPAN
    assert [e[0] for e in tracer.events] == ["a", "a"]
    assert {e[3] for e in tracer.events} == {0, 1}


# -- percentiles --------------------------------------------------------------------


def test_percentile_order_statistics():
    values = [5.0, 1.0, 4.0, 2.0, 3.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 5.0
    assert percentile(values, 50) == 3.0
    assert percentile(values, 25) == 2.0
    assert percentile(values, 62.5) == pytest.approx(3.5)
    assert values == [5.0, 1.0, 4.0, 2.0, 3.0]  # input not mutated
    assert percentile([], 99) == 0.0
    assert percentile([7.0], 95) == 7.0
    with pytest.raises(ValueError):
        percentile(values, 101)
    with pytest.raises(ValueError):
        percentile(values, -1)


def test_percentile_shortcuts_and_monotonicity():
    values = [float(i) for i in range(101)]
    assert p50(values) == 50.0
    assert p95(values) == 95.0
    assert p99(values) == 99.0
    samples = [percentile(values, p) for p in range(0, 101, 5)]
    assert samples == sorted(samples)


def test_histogram_percentile_edge_cases():
    empty = obs_metrics.Histogram("empty")
    assert empty.count == 0 and empty.mean == 0.0
    assert empty.percentile(50) == 0.0
    data = empty.as_dict()
    assert data["p50"] == data["p95"] == data["p99"] == 0.0
    assert data["min"] is None and data["max"] is None

    single = obs_metrics.Histogram("single")
    single.observe(42.0)
    for p in (0, 50, 95, 99, 100):
        assert single.percentile(p) == 42.0
    data = single.as_dict()
    assert data["min"] == data["max"] == data["mean"] == 42.0

    equal = obs_metrics.Histogram("equal")
    for _ in range(100):
        equal.observe(7.5)
    for p in (0, 1, 50, 99, 100):
        assert equal.percentile(p) == 7.5
    data = equal.as_dict()
    assert data["p50"] == data["p95"] == data["p99"] == 7.5
    assert data["count"] == 100 and data["sum"] == pytest.approx(750.0)


# -- metrics ------------------------------------------------------------------------


def test_metrics_null_sink_by_default():
    registry = obs.get_registry()
    assert not registry.enabled
    assert registry.counter("x") is obs_metrics.NULL_INSTRUMENT
    registry.counter("x").inc()
    registry.histogram("h").observe(1.0)
    assert registry.as_dict() == {}
    assert registry.summary_lines() == []


def test_metrics_registry_records():
    registry = obs.enable_metrics()
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(2.5)
    for value in (1.0, 2.0, 3.0, 4.0):
        registry.histogram("h").observe(value)
    data = registry.as_dict()
    assert data["counters"]["c"] == 5
    assert data["gauges"]["g"] == 2.5
    hist = data["histograms"]["h"]
    assert hist["count"] == 4 and hist["sum"] == 10.0
    assert hist["min"] == 1.0 and hist["max"] == 4.0
    assert hist["p50"] == pytest.approx(2.5)
    assert any("c: 5" in line for line in registry.summary_lines())
    obs.disable_metrics()
    assert obs.get_registry() is obs_metrics.NULL_REGISTRY


def test_kernel_syscall_metrics():
    registry = obs.enable_metrics()
    spec = matmul_spec(8)
    compiled = compile_benchmark(spec, ("native",), cache=False)
    run_compiled(compiled, "native", runs=1)
    counters = registry.as_dict()["counters"]
    assert counters["kernel.syscalls"] >= 1
    assert any(name.startswith("kernel.syscall.") and
               name != "kernel.syscalls" for name in counters)
    hist = registry.as_dict()["histograms"]["kernel.syscall.cycles"]
    assert hist["count"] == counters["kernel.syscalls"]


def test_compile_cache_metrics():
    registry = obs.enable_metrics()
    cache = CompileCache(use_disk=False)
    key = cache.key("pipeline", "source")
    assert cache.get(key) is None
    cache.put(key, {"artifact": 1})
    assert cache.get(key) == {"artifact": 1}
    cache.clear_memory()
    counters = registry.as_dict()["counters"]
    assert counters["cache.misses"] == 1
    assert counters["cache.stores"] == 1
    assert counters["cache.memory_hits"] == 1
    assert counters["cache.evictions"] == 1
    line = cache.stats.summary_line()
    assert "1 hits" in line and "1 misses" in line


# -- the cycle model ----------------------------------------------------------------


def _counters(**values):
    counters = PerfCounters()
    for field, value in values.items():
        setattr(counters, field, value)
    return counters


def test_cycle_model_is_linear():
    # I-cache misses are a cache-model input, passed as a parameter (the
    # counter itself lives on RunResult / the hwc model, not on the
    # retired-event PerfCounters).
    a = _counters(instructions=1000, loads=300, stores=100, branches=80,
                  muls=20, divs=4, calls=11)
    b = _counters(instructions=777, loads=123, stores=45, branches=67,
                  fdivs=8, fpu_ops=90, calls=2)
    merged = PerfCounters()
    merged.merge(a)
    merged.merge(b)
    assert merged.cycles(7 + 1) == pytest.approx(
        a.cycles(7) + b.cycles(1), rel=1e-12)
    # Scaling every event count by k scales cycles by k.
    k = 13
    scaled = PerfCounters()
    for _ in range(k):
        scaled.merge(a)
    assert scaled.cycles(k * 7) == pytest.approx(k * a.cycles(7),
                                                 rel=1e-12)
    assert PerfCounters().cycles() == 0.0


# -- profile attribution ------------------------------------------------------------


def test_machine_profile_totals_are_exact():
    profile = MachineProfile(opcodes=True, blocks=True)
    rax, out, machine = _run_native(profile)
    assert rax == 0
    assert {"main", "square"} <= set(profile.functions)
    totals = profile.totals()
    for field, _label in PROFILE_FIELDS:
        if field == "icache_misses":
            counted = machine.icache.misses   # cache model, not retired
        else:
            counted = getattr(machine.perf, field)
        assert getattr(totals, field) == counted, field
    # Per-opcode and per-block instruction counts partition each
    # function's retired instructions.
    for name, counters in profile.functions.items():
        assert sum(profile.opcode_instrs[name].values()) == \
            counters.instructions, name
        assert sum(profile.block_instrs[name].values()) == \
            counters.instructions, name
    hot = profile.hot_functions()
    assert hot[0][1].instructions == \
        max(c.instructions for c in profile.functions.values())


def test_profiling_does_not_perturb_execution():
    rax_plain, out_plain, machine_plain = _run_native(None)
    profile = MachineProfile(opcodes=True, blocks=True)
    rax_prof, out_prof, machine_prof = _run_native(profile)
    assert rax_plain == rax_prof
    assert out_plain == out_prof
    for field in PerfCounters.__slots__:
        assert getattr(machine_plain.perf, field) == \
            getattr(machine_prof.perf, field), field


def test_wasm_interp_profile():
    data, _wasm, ir = compile_wasm_bytes(PROGRAM)
    module = decode_module(data, "test")

    plain_host = GuestHost(ir.heap_base)
    WasmInstance(module, host=plain_host).invoke("main")

    profile = WasmProfile()
    host = GuestHost(ir.heap_base)
    WasmInstance(module, host=host, profile=profile).invoke("main")

    assert bytes(host.output) == bytes(plain_host.output)
    assert profile.total_instrs() > 0
    assert any("square" in name for name in profile.functions)
    for name, count in profile.functions.items():
        assert sum(profile.opcode_instrs[name].values()) == count, name
    assert profile.hot_opcodes()
    assert profile.total_instrs() == \
        sum(count for _op, count in profile.hot_opcodes())


def test_profile_benchmark_attribution_matches_whole_program():
    comparison = profile_benchmark(matmul_spec(8), target="chrome",
                                   cache=False)
    comparison.verify_totals()   # exactness, both builds
    rows = comparison.function_rows()
    assert any(name == "matmul" for name, _n, _t in rows)
    table = comparison.render_table()
    assert "matmul" in table and "native -> chrome" in table
    events = comparison.render_events()
    for event, _raw, _summary in EVENT_TABLE:
        assert event in events
    annotated = comparison.annotate()
    assert ";; matmul:" in annotated.replace("     ;;", ";;")
    assert "perf annotate" in annotated


def test_verify_totals_detects_mismatch():
    comparison = profile_benchmark(matmul_spec(8), target="chrome",
                                   cache=False)
    comparison.target_profile.bucket("matmul").instructions += 1
    with pytest.raises(AssertionError):
        comparison.verify_totals()


# -- the invisibility invariant -----------------------------------------------------


def test_enabling_observability_changes_nothing():
    """Tracing + metrics + profiling on: identical results, counters,
    and synthesized timings versus the fully disabled path."""
    spec = matmul_spec(8)
    compiled = compile_benchmark(spec, ("native", "chrome"), cache=False)
    baseline = {target: run_compiled(compiled, target, runs=3)
                for target in ("native", "chrome")}

    obs.enable_tracing()
    obs.enable_metrics()
    observed = {}
    for target in ("native", "chrome"):
        profile = MachineProfile(opcodes=True, blocks=True)
        observed[target] = run_compiled(compiled, target, runs=3,
                                        profile=profile)
    obs.disable_tracing()
    obs.disable_metrics()

    for target in ("native", "chrome"):
        base, seen = baseline[target], observed[target]
        assert seen.run.stdout == base.run.stdout
        assert seen.run.exit_code == base.run.exit_code
        assert seen.times == base.times            # bit-identical noise
        for field in PerfCounters.__slots__:
            assert getattr(seen.run.perf, field) == \
                getattr(base.run.perf, field), (target, field)
        assert seen.run.overhead_cycles == base.run.overhead_cycles
        assert seen.run.syscalls == base.run.syscalls
