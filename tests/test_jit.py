"""JIT engine tests: wasm->IR translation + engine codegen properties."""

from conftest import compile_wasm_bytes, run_engine, run_ir

from repro.codegen.target import CHROME, FIREFOX
from repro.jit import (
    CHROME_2017, CHROME_ENGINE, ENGINES_BY_YEAR, FIREFOX_ENGINE, wasm_to_ir,
)
from repro.wasm import decode_module
from repro.x86.isa import Mem
from repro.x86.registers import R15, RBX

MATMUL = """
#define N 8
int A[N][N]; int B[N][N]; int C[N][N];
void matmul(void) {
    int i; int j; int k;
    for (i = 0; i < N; i++)
        for (k = 0; k < N; k++)
            for (j = 0; j < N; j++)
                C[i][j] += A[i][k] * B[k][j];
}
int main(void) {
    int i; int j;
    for (i = 0; i < N; i++)
        for (j = 0; j < N; j++) { A[i][j] = i + j; B[i][j] = i - j; }
    matmul();
    int s = 0;
    for (i = 0; i < N; i++) for (j = 0; j < N; j++) s += C[i][j];
    print_i32(s);
    return 0;
}
"""

CALLS = """
int helper(int a, int b, int c) {
    int acc = a;
    int i;
    for (i = 0; i < b; i++) { acc = acc * 3 + c + i; acc %= 100003; }
    return acc;
}
int main(void) {
    int total = 0;
    int i;
    for (i = 0; i < 10; i++) { total += helper(i, 5, total); }
    print_i32(total % 10007);
    return 0;
}
"""

INDIRECT = """
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int (*ops[2])(int) = { inc, dec };
int main(void) {
    int v = 10;
    int i;
    for (i = 0; i < 9; i++) { v = ops[i % 2](v); }
    print_i32(v);
    return 0;
}
"""


def _program(source, engine):
    data, _, _ = compile_wasm_bytes(source)
    return engine.compile_bytes(data)


def test_translate_roundtrip_preserves_semantics():
    # wasm -> IR -> interpret must match the original reference.
    from conftest import GuestHost
    from repro.ir import IRInterpreter

    ref_value, ref_out = run_ir(MATMUL)
    data, _, _ = compile_wasm_bytes(MATMUL)
    ir = wasm_to_ir(decode_module(data))
    host = GuestHost(ir.heap_base)
    value = IRInterpreter(ir, host).run("main")
    assert bytes(host.output) == ref_out
    assert (value or 0) & 0xFFFFFFFF == (ref_value or 0) & 0xFFFFFFFF


def test_engines_execute_correctly():
    for engine in (CHROME_ENGINE, FIREFOX_ENGINE):
        rc, out, _ = run_engine(MATMUL, engine)
        assert rc == 0 and out
    ref = run_ir(CALLS)
    for engine in (CHROME_ENGINE, FIREFOX_ENGINE):
        rc, out, _ = run_engine(CALLS, engine)
        assert out == ref[1]


def test_stack_check_emitted_per_function():
    program = _program(CALLS, CHROME_ENGINE)
    func = program.functions["helper"]
    comments = [i.comment for i in func.raw]
    assert any("stack overflow check" in c for c in comments)


def test_native_has_no_stack_check():
    from repro.codegen import compile_native
    program, _ = compile_native(CALLS, "t")
    comments = [i.comment for i in program.functions["helper"].raw]
    assert not any("stack overflow" in c for c in comments)


def test_indirect_call_checks_emitted():
    program = _program(INDIRECT, CHROME_ENGINE)
    comments = [i.comment for f in program.functions.values()
                for i in f.raw]
    assert any("table bounds check" in c for c in comments)
    assert any("signature check" in c for c in comments)


def test_heap_base_register_used_for_memory_access():
    def heap_accesses(program, base_reg):
        count = 0
        for func in program.functions.values():
            for ins in func.instrs:
                for op in (ins.a, ins.b):
                    if isinstance(op, Mem) and op.base == base_reg:
                        count += 1
        return count

    chrome = _program(MATMUL, CHROME_ENGINE)
    firefox = _program(MATMUL, FIREFOX_ENGINE)
    assert heap_accesses(chrome, RBX) > 10      # V8: rbx = heap base
    assert heap_accesses(firefox, R15) > 10     # SpiderMonkey: r15


def test_reserved_registers_never_allocated():
    program = _program(MATMUL, CHROME_ENGINE)
    from repro.x86.registers import R10, R13
    # r13 is reserved (GC roots); it must never appear as an operand.
    for func in program.functions.values():
        for ins in func.instrs:
            for op in (ins.a, ins.b):
                reg = getattr(op, "reg", None)
                assert reg != R13
                if isinstance(op, Mem):
                    assert op.base != R13 and op.index != R13


def test_chrome_emits_loop_entry_jumps_firefox_does_not():
    chrome = _program(MATMUL, CHROME_ENGINE)
    firefox = _program(MATMUL, FIREFOX_ENGINE)

    def entry_jumps(program):
        return sum(
            1 for f in program.functions.values() for i in f.raw
            if i.op == "label" and str(i.a).startswith("jentry_"))

    assert entry_jumps(chrome) > 0
    assert entry_jumps(firefox) == 0


def test_vintage_engines_are_slower():
    data, _, _ = compile_wasm_bytes(MATMUL)
    from repro.x86 import X86Machine
    from conftest import GuestHost

    cycles = {}
    for engine in (CHROME_2017, CHROME_ENGINE):
        program = engine.compile_bytes(data)
        machine = X86Machine(program, host=GuestHost(program.heap_base))
        machine.call("main")
        cycles[engine.name] = machine.perf.cycles()
    assert cycles["chrome-2017"] > cycles["chrome"]


def test_engines_by_year_registry():
    assert set(ENGINES_BY_YEAR) == {2017, 2018, 2019}
    for year, (chrome, firefox) in ENGINES_BY_YEAR.items():
        assert chrome.year == year and firefox.year == year


def test_code_alignment_pads_jit_targets():
    chrome = _program(MATMUL, CHROME_ENGINE)
    from repro.codegen import compile_native
    native, _ = compile_native(MATMUL, "t")
    assert chrome.code_alignment == CHROME.code_alignment == 32
    assert native.code_alignment == 1
