"""Shared test helpers: compile-and-run across every pipeline."""

from __future__ import annotations

import os

import pytest

# IR verification between optimization passes is on by default in the
# test suite (export REPRO_VERIFY_IR=0 to opt out, e.g. when timing).
if os.environ.get("REPRO_VERIFY_IR", "") == "":
    from repro.ir.verify import set_verify_ir
    set_verify_ir(True)

from repro.codegen import compile_native
from repro.codegen.emscripten import compile_emscripten
from repro.errors import TrapError
from repro.ir import CollectingHost, IRInterpreter
from repro.jit import CHROME_ENGINE, FIREFOX_ENGINE
from repro.mcc import compile_source
from repro.wasm import WasmInstance, encode_module
from repro.x86 import X86Machine


class GuestHost(CollectingHost):
    """CollectingHost that also serves sys_heap_base."""

    def __init__(self, heap_base: int):
        super().__init__()
        self.heap_base = heap_base

    def call(self, env, name, args):
        if name == "sys_heap_base":
            return self.heap_base
        return super().call(env, name, args)


def run_ir(source: str, entry: str = "main"):
    """Compile + interpret the IR; returns (return value, stdout bytes)."""
    module = compile_source(source, "test")
    host = GuestHost(module.heap_base)
    value = IRInterpreter(module, host).run(entry)
    return value, bytes(host.output)


def run_native(source: str, entry: str = "main",
               max_instructions: int = 50_000_000):
    program, module = compile_native(source, "test")
    host = GuestHost(module.heap_base)
    machine = X86Machine(program, host=host,
                         max_instructions=max_instructions)
    rax, xmm0 = machine.call(entry)
    return rax & 0xFFFFFFFF, bytes(host.output), machine


def compile_wasm_bytes(source: str):
    wasm, ir = compile_emscripten(source, "test")
    return encode_module(wasm), wasm, ir


def run_wasm_interp(source: str, entry: str = "main"):
    wasm, ir = compile_emscripten(source, "test")
    host = GuestHost(ir.heap_base)
    instance = WasmInstance(wasm, host=host)
    value = instance.invoke(entry)
    return value, bytes(host.output)


def run_engine(source: str, engine, entry: str = "main",
               max_instructions: int = 50_000_000):
    data, wasm, ir = compile_wasm_bytes(source)
    program = engine.compile_bytes(data)
    host = GuestHost(program.heap_base)
    machine = X86Machine(program, host=host,
                         max_instructions=max_instructions)
    rax, xmm0 = machine.call(entry)
    return rax & 0xFFFFFFFF, bytes(host.output), machine


def run_everywhere(source: str, entry: str = "main"):
    """Run through all five pipelines; assert identical observable
    behaviour; returns (return code, stdout)."""
    from repro.asmjs import ASMJS_CHROME, ASMJS_FIREFOX

    ref_value, ref_out = run_ir(source, entry)
    ref_rc = (ref_value or 0) & 0xFFFFFFFF

    rc, out, _ = run_native(source, entry)
    assert (rc, out) == (ref_rc, ref_out), "native mismatch"

    value, out = run_wasm_interp(source, entry)
    assert ((value or 0) & 0xFFFFFFFF, out) == (ref_rc, ref_out), \
        "wasm interpreter mismatch"

    for engine in (CHROME_ENGINE, FIREFOX_ENGINE, ASMJS_CHROME,
                   ASMJS_FIREFOX):
        rc, out, _ = run_engine(source, engine, entry)
        assert (rc, out) == (ref_rc, ref_out), f"{engine.name} mismatch"
    return ref_rc, ref_out


@pytest.fixture
def everywhere():
    return run_everywhere
