"""JIT engines on *foreign* WebAssembly — hand-written WAT modules that
exercise translator paths our Emscripten backend never emits (br_table,
select, local.tee, value-carrying blocks)."""

import pytest

from repro.jit import CHROME_ENGINE, FIREFOX_ENGINE
from repro.wasm import WasmInstance, encode_module, parse_wat, validate_module
from repro.x86 import X86Machine


def run_both_ways(wat: str, export: str, args):
    """Run a WAT module in the interpreter and through a JIT; both must
    agree."""
    module = parse_wat(wat)
    validate_module(module)
    expected = WasmInstance(module).invoke(export, args)
    results = {"interp": expected}
    for engine in (CHROME_ENGINE, FIREFOX_ENGINE):
        program = engine.compile_bytes(encode_module(module))
        machine = X86Machine(program)
        rax, xmm0 = machine.call(export, args)
        results[engine.name] = rax & 0xFFFFFFFF
        assert rax & 0xFFFFFFFF == expected & 0xFFFFFFFF, engine.name
    return expected


def test_select():
    wat = """
(module
  (memory 1)
  (func $pick (param i32) (result i32)
    i32.const 111
    i32.const 222
    local.get 0
    select)
  (export "pick" (func $pick)))
"""
    assert run_both_ways(wat, "pick", [1]) == 111
    assert run_both_ways(wat, "pick", [0]) == 222


def test_local_tee():
    wat = """
(module
  (memory 1)
  (func $f (param i32) (result i32) (local i32)
    local.get 0
    i32.const 5
    i32.add
    local.tee 1
    local.get 1
    i32.mul)
  (export "f" (func $f)))
"""
    assert run_both_ways(wat, "f", [3]) == 64  # (3+5)^2


def test_br_table_dispatch():
    wat = """
(module
  (memory 1)
  (func $route (param i32) (result i32)
    block
      block
        block
          local.get 0
          br_table 0 1 2
        end
        i32.const 100
        return
      end
      i32.const 200
      return
    end
    i32.const 300)
  (export "route" (func $route)))
"""
    assert run_both_ways(wat, "route", [0]) == 100
    assert run_both_ways(wat, "route", [1]) == 200
    assert run_both_ways(wat, "route", [2]) == 300
    assert run_both_ways(wat, "route", [9]) == 300  # default


def test_block_result_through_jit():
    wat = """
(module
  (memory 1)
  (func $f (param i32) (result i32)
    block (result i32)
      local.get 0
      i32.const 10
      i32.mul
    end
    i32.const 1
    i32.add)
  (export "f" (func $f)))
"""
    assert run_both_ways(wat, "f", [4]) == 41


def test_br_with_value_from_block():
    wat = """
(module
  (memory 1)
  (func $f (param i32) (result i32)
    block (result i32)
      local.get 0
      i32.eqz
      if
        i32.const 77
        br 1
      end
      i32.const 88
    end)
  (export "f" (func $f)))
"""
    assert run_both_ways(wat, "f", [0]) == 77
    assert run_both_ways(wat, "f", [5]) == 88


def test_nested_loops_with_early_exit():
    wat = """
(module
  (memory 1)
  (func $find (param i32) (result i32) (local i32 i32)
    block
      loop
        local.get 1
        i32.const 10
        i32.ge_s
        br_if 1
        local.get 1
        local.get 1
        i32.mul
        local.get 0
        i32.ge_s
        if
          br 2
        end
        local.get 1
        i32.const 1
        i32.add
        local.set 1
        br 0
      end
    end
    local.get 1)
  (export "find" (func $find)))
"""
    assert run_both_ways(wat, "find", [26]) == 6   # first n with n^2 >= 26
    assert run_both_ways(wat, "find", [1000]) == 10


def test_unreachable_traps_in_jit():
    from repro.errors import TrapError

    wat = """
(module
  (memory 1)
  (func $boom (result i32)
    unreachable)
  (export "boom" (func $boom)))
"""
    module = parse_wat(wat)
    program = CHROME_ENGINE.compile_bytes(encode_module(module))
    with pytest.raises(TrapError, match="unreachable"):
        X86Machine(program).call("boom")


def test_memory_ops_through_jit():
    wat = """
(module
  (memory 1)
  (func $store_load (param i32 i32) (result i32)
    local.get 0
    local.get 1
    i32.store 2 0
    local.get 0
    i32.load16_u 1 0)
  (export "store_load" (func $store_load)))
"""
    assert run_both_ways(wat, "store_load", [64, 0x12345678]) == 0x5678
