"""Chaos tests: sweeps under injected faults always complete, produce
deterministic failure manifests, and leave clean cells bit-identical.

Also extends the decoder fuzz to *execution*: a corrupted module that
slips past validation must still fail (or finish) under a small fuel
budget with a ReproError — never a raw Python exception or a hang.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import GuestHost, compile_wasm_bytes

from repro.benchsuite import polybench_benchmark
from repro.errors import ReproError
from repro.harness.parallel import run_suite
from repro.resilience import FaultPlan, RetryPolicy, is_failure
from repro.wasm import WasmInstance, decode_module, validate_module

SUBSET = ["trisolv", "bicg", "mvt"]
TARGETS = ["native", "chrome", "firefox"]
MIX = FaultPlan.parse("trap:0.3,syscall:0.2,fuel:0.1,cache:0.2", seed=1234)
NO_SLEEP = RetryPolicy(retries=2, sleep=lambda s: None)


def _suite():
    return [polybench_benchmark(name, "test") for name in SUBSET]


def _manifest(results):
    """The failure manifest: everything that should be seed-stable."""
    rows = []
    for name, by_target in results.items():
        for target, cell in by_target.items():
            if is_failure(cell):
                rows.append((name, target, cell.status, cell.phase,
                             cell.error_type, cell.attempts,
                             cell.injected, cell.message))
            else:
                rows.append((name, target, "OK", tuple(cell.times)))
    return rows


def _chaos_run(plan=MIX, jobs=1):
    results, _ = run_suite(_suite(), TARGETS, runs=2, jobs=jobs,
                           cache=False, tolerant=True, plan=plan,
                           policy=NO_SLEEP)
    return results


class TestChaosSweep:
    def test_sweep_completes_full_matrix(self):
        results = _chaos_run()
        assert list(results) == SUBSET
        for name in SUBSET:
            assert list(results[name]) == TARGETS
            for cell in results[name].values():
                assert is_failure(cell) or cell.times

    def test_mix_actually_injects(self):
        failures = [c for by_t in _chaos_run().values()
                    for c in by_t.values() if is_failure(c)]
        assert failures, "chaos mix injected nothing; rates/seed broken"
        assert all(f.injected for f in failures)

    def test_manifest_deterministic_per_seed(self):
        assert _manifest(_chaos_run()) == _manifest(_chaos_run())

    def test_different_seed_different_manifest(self):
        other = FaultPlan(MIX.rates, seed=4321)
        assert _manifest(_chaos_run()) != _manifest(_chaos_run(other))

    def test_clean_cells_bit_identical_to_uninjected_run(self):
        clean, _ = run_suite(_suite(), TARGETS, runs=2, jobs=1,
                             cache=False)
        chaos = _chaos_run()
        compared = 0
        for name in SUBSET:
            for target in TARGETS:
                cell = chaos[name][target]
                if is_failure(cell):
                    continue
                ref = clean[name][target]
                assert cell.times == ref.times
                assert cell.run.stdout == ref.run.stdout
                assert cell.perf.as_dict() == ref.perf.as_dict()
                compared += 1
        assert compared, "every cell failed; cannot compare clean cells"

    def test_no_failures_without_plan(self):
        results, _ = run_suite(_suite()[:1], TARGETS, runs=1, jobs=1,
                               cache=False, tolerant=True)
        assert not any(is_failure(c)
                       for c in results[SUBSET[0]].values())


class TestChaosCLI:
    def test_bench_partial_success_exit_code(self, capsys):
        from repro.cli import main
        rc = main(["bench", "trisolv", "--jobs", "1", "--runs", "1",
                   "--inject", "trap:0.45,syscall:0.2", "--inject-seed",
                   "6", "--no-cache"])
        out = capsys.readouterr()
        assert rc in (0, 1, 3)
        if rc in (1, 3):
            assert "FAILED" in out.err
            assert "repro bench" in out.err
        if rc == 3:
            assert "ERROR" in out.out or "TIMEOUT" in out.out

    def test_bench_all_failed_exit_code(self, capsys):
        from repro.cli import main
        rc = main(["bench", "matmul", "--jobs", "1", "--runs", "1",
                   "--inject", "trap:1.0", "--no-cache"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.count("FAILED") == 3

    def test_bad_inject_grammar_is_usage_error(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit) as exc:
            main(["bench", "matmul", "--inject", "warp:0.5"])
        assert exc.value.code == 2
        assert "warp" in capsys.readouterr().err

    def test_report_json_carries_failures_block(self, tmp_path, capsys):
        import json
        from repro.cli import main
        out = tmp_path / "fig3a.json"
        rc = main(["report", "fig3a", "--runs", "1", "--jobs", "1",
                   "--no-cache", "--json", str(out),
                   "--inject", "trap:0.25", "--inject-seed", "5"])
        capsys.readouterr()
        if rc == 1:  # every benchmark failed: nothing rendered, no JSON
            return
        payload = json.loads(out.read_text())
        assert "failures" in payload and "partial" in payload
        assert payload["partial"] == bool(payload["failures"])
        for failure in payload["failures"]:
            assert failure["inject"] == "trap:0.25"
            assert failure["inject_seed"] == 5
            assert failure["repro"].startswith("repro bench")


# -- execution fuzz ----------------------------------------------------------------

_DATA, _, _IR = compile_wasm_bytes("""
int helper(int x) { return x * 3 + 1; }
int main(void) {
    int i; int s = 0;
    for (i = 0; i < 5; i++) { s += helper(i); }
    print_i32(s);
    return 0;
}
""")


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=8, max_value=len(_DATA) - 1),
       st.integers(min_value=0, max_value=255))
def test_corrupted_module_execution_never_escapes(position, value):
    corrupted = bytearray(_DATA)
    corrupted[position] = value
    try:
        module = decode_module(bytes(corrupted))
        validate_module(module)
        instance = WasmInstance(module, host=GuestHost(_IR.heap_base),
                                max_fuel=5_000)
        instance.invoke("main")
    except ReproError:
        return  # decoder, validator, or interpreter failed cleanly
    except Exception as exc:  # noqa: BLE001 - the point of the test
        raise AssertionError(
            f"byte {position}={value} leaked {type(exc).__name__}: {exc}")
