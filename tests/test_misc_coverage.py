"""Coverage for corners not exercised elsewhere: link errors, registry
factories, perf-counter utilities, machine float ops, IR module layout."""

import pytest

from repro.benchsuite import all_factories
from repro.benchsuite.registry import spec_benchmark
from repro.errors import LinkError, TrapError
from repro.ir import Module, Type
from repro.wasm import (
    WasmFuncType, WasmFunction, WasmInstance, WasmInstr, WasmModule,
)
from repro.wasm.module import WasmExport, WasmImport
from repro.x86.perf import PerfCounters

_I = WasmInstr


class TestWasmEmbedding:
    def _module_with_import(self):
        module = WasmModule("m")
        ti = module.type_index(WasmFuncType(("i32",), ("i32",)))
        module.imports.append(WasmImport("env", "mystery", "func", ti))
        body = [_I("local.get", 0), _I("call", 0)]
        module.functions.append(WasmFunction(ti, [], body, "f"))
        module.exports.append(WasmExport("f", "func", 1))
        return module

    def test_unresolved_import_raises_link_error(self):
        instance = WasmInstance(self._module_with_import())
        with pytest.raises(LinkError):
            instance.invoke("f", [1])

    def test_host_resolves_import(self):
        class Host:
            def call(self, env, name, args):
                assert name == "mystery"
                return args[0] * 10

        instance = WasmInstance(self._module_with_import(), host=Host())
        assert instance.invoke("f", [7]) == 70

    def test_missing_export(self):
        instance = WasmInstance(self._module_with_import())
        with pytest.raises(LinkError):
            instance.invoke("nonexistent")


class TestRegistry:
    def test_all_factories_build_and_are_distinct(self):
        factories = all_factories()
        assert len(factories) == 38
        names = set()
        for factory in factories:
            spec = factory.build("test")
            assert spec.source
            names.add(spec.name)
        assert len(names) == 38

    def test_unknown_spec_raises(self):
        with pytest.raises(KeyError):
            spec_benchmark("999.nothing")


class TestPerfCounters:
    def test_merge_adds_fields(self):
        a, b = PerfCounters(), PerfCounters()
        a.instructions, a.loads = 10, 3
        b.instructions, b.stores = 5, 2
        a.merge(b)
        assert a.instructions == 15
        assert a.loads == 3 and a.stores == 2

    def test_as_dict_includes_cycles_and_seconds(self):
        perf = PerfCounters()
        perf.instructions = 1000
        data = perf.as_dict(icache_misses=0)
        assert data["cycles"] == pytest.approx(perf.cycles())
        assert data["seconds"] > 0
        # Without the cache-model input, only retired events appear.
        assert "cycles" not in perf.as_dict()

    def test_event_lookup_matches_fields(self):
        perf = PerfCounters()
        perf.loads = 42
        assert perf.event("all-loads-retired") == 42
        with pytest.raises(KeyError):
            perf.event("not-an-event")
        # Cache-model events moved off PerfCounters: resolved via
        # RunResult.event, which folds in the machine's i-cache.
        with pytest.raises(KeyError):
            perf.event("L1-icache-load-misses")


class TestIRModuleLayout:
    def test_place_data_and_bss_do_not_overlap(self):
        module = Module("m", memory_size=1 << 16, stack_size=1 << 12)
        a = module.place_data(b"abc", "a")
        b = module.reserve_bss(100, "b")
        c = module.place_data(b"xyz", "c")
        assert a < b < c
        assert b >= a + 3
        assert c >= b + 100
        memory = module.initial_memory()
        assert memory[a:a + 3] == b"abc"
        assert memory[c:c + 3] == b"xyz"

    def test_stack_region_is_above_heap(self):
        module = Module("m", memory_size=1 << 16, stack_size=1 << 12)
        module.reserve_bss(1000)
        assert module.heap_base < module.stack_limit
        assert module.stack_top == 1 << 16

    def test_table_index_reserves_null_slot(self):
        module = Module("m")
        idx = module.table_index("f")
        assert idx == 1
        assert module.table[0] == ""
        assert module.table_index("f") == 1  # stable

    def test_duplicate_function_rejected(self):
        from repro.ir import FuncType, Function
        module = Module("m")
        module.add_function(Function("f", FuncType((), ())))
        with pytest.raises(ValueError):
            module.add_function(Function("f", FuncType((), ())))

    def test_conflicting_extern_rejected(self):
        from repro.ir import FuncType
        module = Module("m")
        module.declare_extern("e", FuncType((Type.I32,), ()))
        module.declare_extern("e", FuncType((Type.I32,), ()))  # same: ok
        with pytest.raises(ValueError):
            module.declare_extern("e", FuncType((), ()))


class TestMachineFloatOps:
    def _run(self, build):
        from repro.x86 import Instr, Mem, Reg, X86Machine, X86Program
        from repro.x86.registers import XMM0, xmm

        program = X86Program("t", 1 << 16)
        func = program.new_function("f")
        build(program, func, Instr, Reg, Mem, xmm)
        func.emit(Instr("movsd", Reg(XMM0), Reg(xmm(1))))
        func.emit(Instr("ret"))
        program.layout()
        machine = X86Machine(program)
        _, result = machine.call("f", setup_regs=False)
        return result

    def test_minsd_maxsd(self):
        def build(program, func, Instr, Reg, Mem, xmm):
            a = program.f64_constant(2.0)
            b = program.f64_constant(-3.0)
            func.emit(Instr("movsd", Reg(xmm(1)), Mem(disp=a, size=8)))
            func.emit(Instr("minsd", Reg(xmm(1)), Mem(disp=b, size=8)))

        assert self._run(build) == -3.0

    def test_xorpd_negates_via_sign_mask(self):
        def build(program, func, Instr, Reg, Mem, xmm):
            a = program.f64_constant(5.5)
            mask = program.add_rodata(
                (0x8000000000000000).to_bytes(8, "little"))
            func.emit(Instr("movsd", Reg(xmm(1)), Mem(disp=a, size=8)))
            func.emit(Instr("xorpd", Reg(xmm(1)), Mem(disp=mask, size=8)))

        assert self._run(build) == -5.5

    def test_sqrtsd_of_negative_is_nan(self):
        def build(program, func, Instr, Reg, Mem, xmm):
            a = program.f64_constant(-1.0)
            func.emit(Instr("movsd", Reg(xmm(2)), Mem(disp=a, size=8)))
            func.emit(Instr("sqrtsd", Reg(xmm(1)), Reg(xmm(2))))

        result = self._run(build)
        assert result != result

    def test_cvttsd2si_overflow_traps(self):
        from repro.x86 import Instr, Mem, Reg, X86Machine, X86Program
        from repro.x86.registers import RAX, xmm

        program = X86Program("t", 1 << 16)
        a = program.f64_constant(1e30)
        func = program.new_function("f")
        func.emit(Instr("movsd", Reg(xmm(1)), Mem(disp=a, size=8)))
        func.emit(Instr("cvttsd2si", Reg(RAX, 4), Reg(xmm(1)), size=4))
        func.emit(Instr("ret"))
        program.layout()
        with pytest.raises(TrapError):
            X86Machine(program).call("f", setup_regs=False)
