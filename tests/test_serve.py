"""The benchmark service: admission, backpressure, breakers, drain."""

import json
import pickle
import urllib.error
import urllib.request

import pytest

from repro import obs

from repro.errors import (
    CacheCorruptionError, CellTimeout, CompileError, FuelExhausted,
    LinkError, SyscallError, TrapError, ValidationError, WorkerCrashError,
    classify,
)
from repro.resilience import RetryPolicy
from repro.serve import (
    AdmissionController, BenchService, BreakerBoard, CircuitBreaker,
    JobStore, RpcError, ServeConfig, TokenBucket, serve_in_thread,
)
from repro.serve import jobs as J


@pytest.fixture(autouse=True)
def fresh_metrics():
    """Each test gets its own registry; never leak one across tests."""
    obs.enable_metrics()
    yield
    obs.disable_metrics()


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- token bucket --------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_dry(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.allow("c")[0] for _ in range(3)] == [True] * 3
        ok, retry_after = bucket.allow("c")
        assert not ok and retry_after == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.allow("c")[0]
        assert not bucket.allow("c")[0]
        clock.advance(0.5)   # one token back at 2/s
        assert bucket.allow("c")[0]

    def test_clients_are_independent(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.allow("a")[0]
        assert not bucket.allow("a")[0]
        assert bucket.allow("b")[0]

    def test_retry_after_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        bucket.allow("c")
        _, retry_after = bucket.allow("c")
        clock.advance(retry_after)
        assert bucket.allow("c")[0]

    def test_rate_zero_disables(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=FakeClock())
        assert all(bucket.allow("c")[0] for _ in range(100))


# -- circuit breaker -----------------------------------------------------------------

class TestCircuitBreaker:
    def _breaker(self, clock):
        return CircuitBreaker(threshold=3, reset_after=10.0, clock=clock)

    def test_trips_after_threshold_permanent_failures(self):
        breaker = self._breaker(FakeClock())
        for _ in range(2):
            breaker.record_failure(permanent=True)
            assert breaker.allow()[0]
        breaker.record_failure(permanent=True)
        ok, retry_after = breaker.allow()
        assert not ok and 0 < retry_after <= 10.0
        assert breaker.trips == 1

    def test_transient_failures_never_count(self):
        breaker = self._breaker(FakeClock())
        for _ in range(10):
            breaker.record_failure(permanent=False)
        assert breaker.state == "closed" and breaker.allow()[0]

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure(permanent=True)
        clock.advance(10.5)
        assert breaker.allow()[0]          # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()[0]      # everyone else held

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure(permanent=True)
        clock.advance(10.5)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.failures == 0

    def test_probe_failure_reopens_for_full_reset(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure(permanent=True)
        clock.advance(10.5)
        breaker.allow()
        breaker.record_failure(permanent=True)
        assert breaker.state == "open" and breaker.trips == 2
        clock.advance(9.0)
        assert not breaker.allow()[0]

    def test_success_resets_consecutive_count(self):
        breaker = self._breaker(FakeClock())
        breaker.record_failure(permanent=True)
        breaker.record_failure(permanent=True)
        breaker.record_success()
        breaker.record_failure(permanent=True)
        assert breaker.state == "closed"


# -- admission control ---------------------------------------------------------------

def _admission(clock, max_depth=3, max_wait=0.0, max_age=60.0,
               rate=0.0):
    store = JobStore(clock=clock)
    controller = AdmissionController(
        store, TokenBucket(rate, 5.0, clock=clock),
        BreakerBoard(3, 10.0, clock=clock), max_depth=max_depth,
        max_wait=max_wait, max_age=max_age, workers=1)
    return store, controller


def _submit(store, controller, priority=0, deadline_s=None,
            client="c", benchmark="bm", target="native"):
    job = store.create(client, benchmark, target, "test", "baseline",
                       3, priority, deadline_s, ref=None)
    decision = controller.admit(job)
    if decision is not None:
        store.transition(job, J.SHED, decision.message,
                         error=decision.as_dict())
    return job, decision


class TestAdmission:
    def test_sheds_when_full_with_structured_answer(self):
        store, controller = _admission(FakeClock(), max_depth=2)
        for _ in range(2):
            _, decision = _submit(store, controller)
            assert decision is None
        job, decision = _submit(store, controller)
        assert decision.code == "overloaded"
        assert decision.retry_after > 0
        assert job.state == J.SHED and job.terminal

    def test_high_priority_preempts_lowest(self):
        store, controller = _admission(FakeClock(), max_depth=2)
        low, _ = _submit(store, controller, priority=-1)
        mid, _ = _submit(store, controller, priority=0)
        high, decision = _submit(store, controller, priority=1)
        assert decision is None
        assert low.state == J.EVICTED
        assert low.error["code"] == "preempted"
        assert mid.state == J.QUEUED and high.state == J.QUEUED
        # and the queue pops in priority order
        assert controller.pop_next() is high
        assert controller.pop_next() is mid

    def test_no_preemption_among_equals(self):
        store, controller = _admission(FakeClock(), max_depth=1)
        first, _ = _submit(store, controller, priority=0)
        _, decision = _submit(store, controller, priority=0)
        assert decision.code == "overloaded"
        assert first.state == J.QUEUED

    def test_estimated_wait_sheds(self):
        store, controller = _admission(FakeClock(), max_depth=100,
                                       max_wait=1.0)
        for _ in range(8):   # saturate the EMA at ~2s per cell
            controller.observe_cell_seconds(2.0)
        _submit(store, controller)
        _, decision = _submit(store, controller)
        assert decision is not None and decision.code == "overloaded"
        assert "estimated queue wait" in decision.message

    def test_stale_low_priority_evicted(self):
        clock = FakeClock()
        store, controller = _admission(clock, max_age=5.0)
        low, _ = _submit(store, controller, priority=-1)
        normal, _ = _submit(store, controller, priority=0)
        clock.advance(6.0)
        controller.evict_stale(clock())
        assert low.state == J.EVICTED and low.error["code"] == "stale"
        assert normal.state == J.QUEUED

    def test_expired_deadline_evicted_not_started(self):
        clock = FakeClock()
        store, controller = _admission(clock)
        job, _ = _submit(store, controller, deadline_s=2.0)
        clock.advance(3.0)
        controller.evict_stale(clock())
        assert job.state == J.EVICTED
        assert job.error["code"] == "deadline"

    def test_draining_rejects_everything(self):
        store, controller = _admission(FakeClock())
        controller.draining = True
        _, decision = _submit(store, controller)
        assert decision.code == "draining"

    def test_rate_limit_surfaces_as_shed(self):
        clock = FakeClock()
        store, controller = _admission(clock, max_depth=10, rate=1.0)
        for _ in range(5):   # burst
            _, decision = _submit(store, controller, client="hot")
            assert decision is None
        _, decision = _submit(store, controller, client="hot")
        assert decision.code == "rate_limited"
        assert decision.retry_after > 0

    def test_open_breaker_fails_fast(self):
        store, controller = _admission(FakeClock())
        key = ("bm", "native", "baseline")
        for _ in range(3):
            controller.breakers.record(key, success=False, permanent=True)
        _, decision = _submit(store, controller)
        assert decision.code == "circuit_open"

    def test_requeue_keeps_rank(self):
        store, controller = _admission(FakeClock(), max_depth=10)
        first, _ = _submit(store, controller)
        second, _ = _submit(store, controller)
        popped = controller.pop_next()
        assert popped is first
        controller.requeue(first)   # worker crashed; same seq
        assert controller.pop_next() is first
        assert controller.pop_next() is second


# -- retry jitter (satellite: seeded full-jitter backoff) ----------------------------

class TestRetryJitter:
    def test_default_schedule_unchanged(self):
        policy = RetryPolicy(retries=3, base_delay=0.05, max_delay=2.0)
        assert [policy.delay(a) for a in range(4)] == \
            [0.05, 0.1, 0.2, 0.4]

    def test_same_seed_same_schedule(self):
        a = RetryPolicy(jitter=1.0, seed=42)
        b = RetryPolicy(jitter=1.0, seed=42)
        assert [a.delay(i) for i in range(5)] == \
            [b.delay(i) for i in range(5)]

    def test_different_seeds_desynchronize(self):
        a = RetryPolicy(jitter=1.0, seed=1)
        b = RetryPolicy(jitter=1.0, seed=2)
        assert [a.delay(i) for i in range(5)] != \
            [b.delay(i) for i in range(5)]

    def test_delay_is_pure_function(self):
        policy = RetryPolicy(jitter=0.5, seed=9)
        assert policy.delay(3) == policy.delay(3)

    def test_jitter_bounds(self):
        policy = RetryPolicy(jitter=1.0, seed=7, base_delay=0.1,
                             max_delay=2.0)
        for attempt in range(8):
            backoff = min(0.1 * 2 ** attempt, 2.0)
            assert 0.0 <= policy.delay(attempt) <= backoff

    def test_jitter_clamped(self):
        assert RetryPolicy(jitter=5.0).jitter == 1.0
        assert RetryPolicy(jitter=-1.0).jitter == 0.0

    def test_as_dict_round_trip(self):
        policy = RetryPolicy(retries=1, jitter=0.5, seed=3)
        clone = RetryPolicy(sleep=None, **policy.as_dict())
        assert clone.delay(2) == policy.delay(2)


# -- taxonomy pickling (satellite: classify survives the worker pipe) ----------------

TAXONOMY_SAMPLES = [
    CompileError("unexpected token", 3, 7),
    TrapError("unreachable executed"),
    ValidationError("type mismatch at br_if"),
    LinkError("missing import env.sys_write"),
    FuelExhausted("out of fuel after 5000000 instructions"),
    CellTimeout("cell exceeded 30s"),
    SyscallError("EIO", "read"),
    SyscallError("ENOENT", "open"),
    CacheCorruptionError("checksum mismatch"),
    WorkerCrashError("worker died"),
]


class TestTaxonomyPickling:
    @pytest.mark.parametrize(
        "exc", TAXONOMY_SAMPLES,
        ids=lambda e: f"{type(e).__name__}:{e.args[0][:16]}")
    def test_classify_identical_after_round_trip(self, exc):
        before = classify(exc)
        after = classify(pickle.loads(pickle.dumps(exc)))
        assert after == before

    def test_transient_eio_stays_transient(self):
        # The regression this guards: default Exception pickling
        # replays ``args`` (the formatted message) through __init__,
        # turning errno_name into the whole message — and a transient
        # EIO into a permanent failure across the worker pipe.
        exc = pickle.loads(pickle.dumps(SyscallError("EIO", "read")))
        assert exc.errno_name == "EIO" and exc.syscall == "read"
        assert exc.transient

    def test_injected_flag_survives(self):
        exc = SyscallError("EIO", "write")
        exc.injected = True
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.injected and classify(clone).injected

    def test_compile_error_location_survives(self):
        clone = pickle.loads(pickle.dumps(
            CompileError("bad type", 12, 4)))
        assert (clone.line, clone.col) == (12, 4)
        assert "at 12:4" in str(clone)

    def test_round_trip_through_real_pipe(self):
        # The actual boundary: a child process sends every taxonomy
        # sample back over a multiprocessing pipe, as shard workers do.
        import multiprocessing as mp
        ctx = mp.get_context("fork")
        parent, child = ctx.Pipe()

        def _echo(conn):
            while True:
                obj = conn.recv()
                if obj is None:
                    break
                conn.send(obj)

        proc = ctx.Process(target=_echo, args=(child,))
        proc.start()
        try:
            for exc in TAXONOMY_SAMPLES:
                parent.send(exc)
                back = parent.recv()
                assert classify(back) == classify(exc), type(exc).__name__
            parent.send(None)
        finally:
            proc.join(10)
            if proc.is_alive():
                proc.kill()


# -- the service end-to-end ----------------------------------------------------------

def _config(**kwargs):
    defaults = dict(workers=1, queue_depth=8, max_wait=0.0, max_age=60.0,
                    rate=0.0, burst=5.0, breaker_threshold=3,
                    breaker_reset=15.0, retries=1, runs=2, grace=30.0)
    defaults.update(kwargs)
    return ServeConfig(**defaults)


@pytest.fixture
def service(fresh_metrics):
    svc = BenchService(_config())
    yield svc
    svc.drain(grace=20.0)


class TestBenchService:
    def test_submit_runs_to_done(self, service):
        reply = service.rpc("submit", {"benchmark": "matmul-8x8x8",
                                       "target": "native", "client": "t"})
        status = service.rpc("wait", {"job_id": reply["job_id"],
                                      "timeout_s": 60.0})
        assert status["state"] == "done"
        result = status["result"]
        assert result["times"] and len(result["times"]) == 2
        assert result["exit_code"] == 0

    def test_memo_hit_is_bit_identical(self, service):
        params = {"benchmark": "matmul-8x8x8", "target": "native",
                  "client": "t"}
        first = service.rpc("wait", {
            "job_id": service.rpc("submit", params)["job_id"],
            "timeout_s": 60.0})
        second = service.rpc("wait", {
            "job_id": service.rpc("submit", params)["job_id"],
            "timeout_s": 60.0})
        assert second["memo_hit"] and not first["memo_hit"]
        for key in ("times", "mean_seconds", "instructions",
                    "stdout_sha256"):
            assert second["result"][key] == first["result"][key]

    def test_unknown_benchmark_rejected(self, service):
        with pytest.raises(RpcError) as err:
            service.rpc("submit", {"benchmark": "no-such-benchmark",
                                   "client": "t"})
        assert err.value.data["code"] == "unknown_benchmark"

    def test_unknown_method_rejected(self, service):
        with pytest.raises(RpcError) as err:
            service.rpc("frobnicate", {})
        assert err.value.code == -32601

    def test_cancel_queued_job(self, service):
        # Saturate the single worker, then cancel the queued follower.
        first = service.rpc("submit", {"benchmark": "matmul-12x12x12",
                                       "target": "chrome", "client": "t"})
        second = service.rpc("submit", {"benchmark": "matmul-13x13x13",
                                        "target": "chrome", "client": "t"})
        reply = service.rpc("cancel", {"job_id": second["job_id"]})
        status = service.rpc("wait", {"job_id": first["job_id"],
                                      "timeout_s": 60.0})
        assert status["state"] == "done"
        if reply["cancelled"]:   # unless the dispatcher won the race
            assert reply["state"] == "cancelled"

    def test_every_accepted_job_terminal_after_drain(self):
        svc = BenchService(_config(workers=2))
        ids = [svc.rpc("submit", {"benchmark": f"matmul-{n}x{n}x{n}",
                                  "target": "native",
                                  "client": "t"})["job_id"]
               for n in (6, 7, 8, 9)]
        summary = svc.drain(grace=30.0)
        assert summary["non_terminal"] == []
        assert summary["orphan_workers"] == 0
        states = {jid: svc.rpc("result", {"job_id": jid})["state"]
                  for jid in ids}
        assert all(state in ("done", "failed", "evicted")
                   for state in states.values()), states

    def test_drain_is_idempotent(self, service):
        first = service.drain(grace=10.0)
        second = service.drain(grace=10.0)
        assert first["drained"] and second["drained"]

    def test_submissions_after_drain_shed(self, service):
        service.drain(grace=10.0)
        with pytest.raises(RpcError) as err:
            service.rpc("submit", {"benchmark": "matmul-8x8x8",
                                   "client": "t"})
        assert err.value.data["code"] == "draining"

    def test_worker_crash_requeues_then_completes(self):
        # Shoot the worker mid-cell: the job must come back DONE on a
        # respawned worker, never lost.
        svc = BenchService(_config(workers=1, retries=2))
        try:
            reply = svc.rpc("submit", {"benchmark": "matmul-10x10x10",
                                       "target": "chrome", "client": "t"})
            deadline = svc.clock() + 30.0
            killed = False
            while svc.clock() < deadline and not killed:
                with svc.store.lock:
                    for record in svc.executor.inflight.values():
                        record["worker"]["proc"].kill()
                        killed = True
            status = svc.rpc("wait", {"job_id": reply["job_id"],
                                      "timeout_s": 60.0})
            assert status["state"] == "done"
            assert svc.metrics.counter("serve.worker_respawns").value >= 1
        finally:
            svc.drain(grace=20.0)


# -- the HTTP front-end --------------------------------------------------------------

@pytest.fixture
def http_service(fresh_metrics):
    svc = BenchService(_config(workers=1))
    httpd, thread = serve_in_thread(svc)
    yield svc, httpd.server_address[1]
    svc.drain(grace=20.0)
    httpd.shutdown()
    httpd.server_close()


def _rpc(port, method, params, timeout=60.0):
    body = json.dumps({"jsonrpc": "2.0", "id": 1, "method": method,
                       "params": params}).encode()
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/rpc", data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def _get(port, path, timeout=10.0):
    try:
        resp = urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=timeout)
        return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestHttpFrontend:
    def test_healthz_and_readyz(self, http_service):
        _, port = http_service
        assert _get(port, "/healthz")[0] == 200
        status, body = _get(port, "/readyz")
        assert status == 200 and body["status"] == "ready"

    def test_submit_wait_over_http(self, http_service):
        _, port = http_service
        reply = _rpc(port, "submit", {"benchmark": "matmul-8x8x8",
                                      "target": "native", "client": "h"})
        job_id = reply["result"]["job_id"]
        status = _rpc(port, "wait", {"job_id": job_id,
                                     "timeout_s": 60.0})
        assert status["result"]["state"] == "done"

    def test_event_stream_replays_lifecycle(self, http_service):
        _, port = http_service
        reply = _rpc(port, "submit", {"benchmark": "matmul-8x8x8",
                                      "target": "native", "client": "h"})
        job_id = reply["result"]["job_id"]
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/jobs/{job_id}/events",
                timeout=60.0) as resp:
            lines = [json.loads(line)
                     for line in resp.read().decode().splitlines()]
        assert lines[0]["state"] == "queued"
        assert lines[-1]["terminal"] is True
        assert lines[-1]["state"] in ("done", "failed")

    def test_rpc_error_is_structured(self, http_service):
        _, port = http_service
        reply = _rpc(port, "submit", {"benchmark": "nope", "client": "h"})
        assert reply["error"]["data"]["code"] == "unknown_benchmark"

    def test_parse_error_is_minus_32700(self, http_service):
        _, port = http_service
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/rpc", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10.0)
        assert json.loads(err.value.read())["error"]["code"] == -32700

    def test_readyz_flips_503_when_draining(self, http_service):
        svc, port = http_service
        svc.drain(grace=10.0)
        status, body = _get(port, "/readyz")
        assert status == 503 and body["status"] == "draining"


# -- report --json serve block -------------------------------------------------------

def test_report_json_has_serve_block(service, tmp_path, capsys):
    from repro.cli import main

    reply = service.rpc("submit", {"benchmark": "matmul-8x8x8",
                                   "target": "native", "client": "r"})
    service.rpc("wait", {"job_id": reply["job_id"], "timeout_s": 60.0})
    out = tmp_path / "report.json"
    assert main(["report", "table3", "--json", str(out)]) == 0
    capsys.readouterr()
    serve = json.loads(out.read_text())["serve"]
    assert serve["submitted"] >= 1 and serve["done"] >= 1
    assert set(serve["rejections"]) == {"overloaded", "rate_limited",
                                        "circuit_open", "draining"}
    assert "p99" in serve["queue_wait"]
