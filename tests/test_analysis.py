"""Analysis-layer tests: relative metrics, table rendering, drivers."""

import pytest

from repro.analysis import (
    COUNTER_FIELDS, fig3b, fig4, fig7, relative_counter, relative_time,
    render_table, spec_data, table1, table3, table4,
)
from repro.benchsuite import spec_benchmark


@pytest.fixture(scope="module")
def small_data():
    benchmarks = [spec_benchmark(n, "test")
                  for n in ("429.mcf", "462.libquantum")]
    return spec_data("test", benchmarks=benchmarks, runs=2)


def test_render_table_alignment():
    text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], "T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert all(len(line) == len(lines[1]) for line in lines[1:])


def test_relative_time_native_is_one(small_data):
    for name in small_data.results:
        assert relative_time(small_data.results, name, "native") == 1.0
        assert relative_time(small_data.results, name, "chrome") > 0


def test_relative_counter_fields_cover_table3(small_data):
    events = {name for name, _raw, _s in table3()[0]}
    fields = {e for e, _f in COUNTER_FIELDS}
    # Table 3 uses 'branches-retired'; fig9 uses the long form.
    assert len(fields) == len(COUNTER_FIELDS) == 7
    for event, field in COUNTER_FIELDS:
        for name in small_data.results:
            value = relative_counter(small_data.results, name, "chrome",
                                     field)
            assert value > 0


def test_table1_summary_consistent_with_results(small_data):
    summary, text = table1(small_data)
    assert "429.mcf" in text
    assert summary["chrome_geomean"] > 0
    assert summary["chrome_median"] > 0


def test_fig3b_and_table4_agree_on_cycles(small_data):
    _per, fig_summary, _ = fig3b(small_data)
    tab_summary, _ = table4(small_data)
    # fig3b measures wall time (cpu + syscall overhead); table4's
    # cpu-cycles is the dominant component — they should be close.
    assert abs(fig_summary["chrome_geomean"]
               - tab_summary["cpu-cycles"]["chrome"]) < 0.25


def test_fig4_fractions_bounded(small_data):
    per_bench, mean_frac, _ = fig4(small_data)
    assert all(0.0 <= v < 1.0 for v in per_bench.values())
    assert 0.0 <= mean_frac < 1.0


def test_fig7_listings_contain_both_pipelines():
    stats, text = fig7(ni=6, nk=6, nj=6)
    assert "Clang pipeline" in text
    assert "Chrome pipeline" in text
    assert stats["native_instrs"] > 10
    assert stats["chrome_instrs"] > stats["native_instrs"]


def test_suitedata_validation_catches_divergence(small_data):
    # Sanity: collected data passed validation at construction.
    for name, by_target in small_data.results.items():
        outs = {r.run.stdout for r in by_target.values()}
        assert len(outs) == 1
