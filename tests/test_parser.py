"""Parser unit tests."""

import pytest

from repro.errors import CompileError
from repro.mcc import parse
from repro.mcc import astnodes as ast
from repro.mcc.types_c import (
    ArrayType, DOUBLE, FunctionCType, INT, PointerType, StructType,
)


def first_decl(source):
    return parse(source).decls[0]


def test_function_definition():
    fn = first_decl("int add(int a, int b) { return a + b; }")
    assert isinstance(fn, ast.FuncDef)
    assert fn.name == "add"
    assert fn.param_names == ["a", "b"]
    assert fn.ftype.ret == INT
    assert len(fn.body.stmts) == 1


def test_void_parameter_list():
    fn = first_decl("int main(void) { return 0; }")
    assert fn.param_names == []


def test_prototype_declaration():
    fn = first_decl("extern int sys_write(int fd, char *buf, int len);")
    assert fn.body is None
    assert isinstance(fn.ftype.params[1], PointerType)


def test_global_array_multidim():
    decl = first_decl("double A[3][4];")
    assert isinstance(decl.ctype, ArrayType)
    assert decl.ctype.length == 3
    assert decl.ctype.element.length == 4
    assert decl.ctype.size == 3 * 4 * 8


def test_global_with_const_expr_size():
    decl = first_decl("#define N 4\nint a[N * 2 + 1];")
    assert decl.ctype.length == 9


def test_struct_definition_and_layout():
    program = parse("struct P { int x; char c; double w; };")
    struct = program.structs["P"]
    assert struct.complete
    assert struct.fields["x"][0] == 0
    assert struct.fields["c"][0] == 4
    assert struct.fields["w"][0] == 8   # aligned to 8
    assert struct.size == 16


def test_function_pointer_declarator():
    decl = first_decl("int (*handler)(int, int);")
    assert isinstance(decl.ctype, PointerType)
    assert isinstance(decl.ctype.pointee, FunctionCType)
    assert len(decl.ctype.pointee.params) == 2


def test_function_pointer_array():
    decl = first_decl("int (*ops[4])(int);")
    assert isinstance(decl.ctype, ArrayType)
    assert decl.ctype.length == 4
    assert isinstance(decl.ctype.element.pointee, FunctionCType)


def test_precedence_mul_over_add():
    fn = first_decl("int f(int a, int b, int c) { return a + b * c; }")
    ret = fn.body.stmts[0]
    assert isinstance(ret.value, ast.Binary)
    assert ret.value.op == "+"
    assert ret.value.rhs.op == "*"


def test_ternary_and_assignment_right_assoc():
    fn = first_decl("void f(int a, int b) { a = b = a ? 1 : 2; }")
    expr = fn.body.stmts[0].expr
    assert isinstance(expr, ast.Assign)
    assert isinstance(expr.value, ast.Assign)
    assert isinstance(expr.value.value, ast.Cond)


def test_cast_vs_parenthesized_expression():
    fn = first_decl("double f(int x) { return (double)x + (x); }")
    expr = fn.body.stmts[0].value
    assert isinstance(expr.lhs, ast.Cast)


def test_sizeof_type():
    fn = first_decl("int f(void) { return sizeof(double); }")
    node = fn.body.stmts[0].value
    assert isinstance(node, ast.SizeofType)
    assert node.target_type == DOUBLE


def test_for_with_declaration_init():
    fn = first_decl("int f(void) { int s = 0; "
                    "for (int i = 0; i < 4; i++) s += i; return s; }")
    loop = fn.body.stmts[1]
    assert isinstance(loop, ast.For)
    assert isinstance(loop.init, ast.Block)


def test_switch_with_cases_and_default():
    fn = first_decl("""
int f(int x) {
    switch (x) {
    case 1: return 10;
    case 2: break;
    default: return -1;
    }
    return 0;
}
""")
    sw = fn.body.stmts[0]
    assert isinstance(sw, ast.Switch)
    assert [v for v, _ in sw.cases] == [1, 2]
    assert sw.default is not None


def test_duplicate_case_rejected_by_typer():
    from repro.mcc import typecheck
    program = parse("int f(int x) { switch (x) { case 1: break; "
                    "case 1: break; } return 0; }")
    with pytest.raises(CompileError):
        typecheck(program)


def test_multiple_declarators_split():
    fn = first_decl("void f(void) { int a, b, c; a = b = c = 1; }")
    decls = [s for s in fn.body.stmts if isinstance(s, ast.VarDecl)]
    assert [d.name for d in decls] == ["a", "b", "c"]


def test_missing_semicolon_is_error():
    with pytest.raises(CompileError):
        parse("int f(void) { return 0 }")


def test_do_while():
    fn = first_decl("int f(void) { int i = 0; do { i++; } while (i < 3);"
                    " return i; }")
    assert isinstance(fn.body.stmts[1], ast.DoWhile)


def test_pointer_member_access_chain():
    src = """
struct Node { int value; struct Node *next; };
int f(struct Node *n) { return n->next->value; }
"""
    fn = parse(src).decls[0]
    ret = fn.body.stmts[0]
    assert isinstance(ret.value, ast.Member)
    assert ret.value.arrow
