"""Dataflow framework tests: solver behaviour, canned analyses, and
identity against the older per-module implementations."""

from repro.benchsuite import (POLYBENCH_NAMES, SPEC_NAMES, matmul_spec,
                              polybench_benchmark, spec_benchmark)
from repro.dataflow import (VARYING, constness, definite_assignment,
                            dominators, liveness, reaching_definitions)
from repro.ir import (BinOp, CondBr, Const, FuncType, Function, Jump,
                      Move, Return, Type)
from repro.ir.loops import dominators as loops_dominators
from repro.ir.passes import optimize_module
from repro.mcc import compile_source
from repro.regalloc.liveness import block_liveness


def _diamond():
    """entry -> (left | right) -> join; %t defined only on the left."""
    func = Function("f", FuncType([Type.I32], [Type.I32]))
    func.params.append(func.new_vreg(Type.I32, "p"))
    entry = func.new_block("entry")
    left = func.new_block("left")
    right = func.new_block("right")
    join = func.new_block("join")
    t = func.new_vreg(Type.I32, "t")
    entry.terminate(CondBr(func.params[0], left.label, right.label))
    left.append(Move(t, Const(1, Type.I32)))
    left.terminate(Jump(join.label))
    right.terminate(Jump(join.label))
    join.terminate(Return(t))
    return func, t


def _loop():
    """entry -> head <-> body, head -> exit; %i is a loop counter."""
    func = Function("g", FuncType([Type.I32], [Type.I32]))
    func.params.append(func.new_vreg(Type.I32, "n"))
    entry = func.new_block("entry")
    head = func.new_block("head")
    body = func.new_block("body")
    exit_ = func.new_block("exit")
    i = func.new_vreg(Type.I32, "i")
    cond = func.new_vreg(Type.I32, "c")
    entry.append(Move(i, Const(0, Type.I32)))
    entry.terminate(Jump(head.label))
    head.append(BinOp(cond, "lt_s", i, func.params[0]))
    head.terminate(CondBr(cond, body.label, exit_.label))
    body.append(BinOp(i, "add", i, Const(1, Type.I32)))
    body.terminate(Jump(head.label))
    exit_.terminate(Return(i))
    return func, i


def _all_benchmark_modules():
    for name in SPEC_NAMES:
        yield name, compile_source(spec_benchmark(name, "test").source, name)
    for name in POLYBENCH_NAMES:
        yield name, compile_source(
            polybench_benchmark(name, "test").source, name)
    yield "matmul", compile_source(matmul_spec().source, "matmul")


def _reference_liveness(func):
    """Naive chaotic-iteration liveness, deliberately independent of the
    worklist solver (different traversal order, mutable sets)."""
    use, defs = {}, {}
    for block in func.blocks.values():
        u, d = set(), set()
        for instr in block.all_instrs():
            for reg in instr.uses():
                if reg.id not in d:
                    u.add(reg.id)
            for reg in instr.defs():
                d.add(reg.id)
        use[block.label], defs[block.label] = u, d
    live_in = {label: set() for label in func.blocks}
    live_out = {label: set() for label in func.blocks}
    changed = True
    while changed:
        changed = False
        for label, block in func.blocks.items():
            out = set()
            for succ in block.successors():
                out |= live_in[succ]
            inn = use[label] | (out - defs[label])
            if out != live_out[label] or inn != live_in[label]:
                live_out[label], live_in[label] = out, inn
                changed = True
    return live_in, live_out


# -- solver / canned analyses on hand-built CFGs ---------------------------

def test_liveness_diamond():
    func, t = _diamond()
    live_in, live_out = liveness(func)
    p = func.params[0].id
    # %t is read in join before any write along the right path, so it is
    # (may-)live all the way up through right into the entry.
    assert live_in["entry0"] == {p, t.id}
    assert t.id in live_in["right2"]      # used in join, not defined here
    assert t.id not in live_in["left1"]   # defined before any use
    assert live_in["join3"] == {t.id}
    assert live_out["join3"] == set()


def test_liveness_loop_counter_live_around_backedge():
    func, i = _loop()
    live_in, live_out = liveness(func)
    assert i.id in live_in["head1"]
    assert i.id in live_out["body2"]


def test_definite_assignment_join_is_intersection():
    func, t = _diamond()
    assigned = definite_assignment(func)
    assert t.id not in assigned["join3"]       # only one path defines it
    assert func.params[0].id in assigned["join3"]


def test_reaching_definitions_sites():
    func, i = _loop()
    reaching = reaching_definitions(func)
    sites = {site for site in reaching["head1"] if site[0] == i.id}
    # Both the entry init and the body increment reach the loop head.
    assert {s[1] for s in sites} == {"entry0", "body2"}
    # Parameters reach as (id, None, -1).
    assert (func.params[0].id, None, -1) in reaching["head1"]


def test_dominators_diamond():
    func, _ = _diamond()
    dom = dominators(func)
    assert dom["join3"] == {"entry0", "join3"}
    assert dom["left1"] == {"entry0", "left1"}


def test_constness_merges_conflicting_values_to_varying():
    func = Function("h", FuncType([Type.I32], [Type.I32]))
    func.params.append(func.new_vreg(Type.I32, "p"))
    entry = func.new_block("entry")
    left = func.new_block("left")
    right = func.new_block("right")
    join = func.new_block("join")
    a = func.new_vreg(Type.I32, "a")
    b = func.new_vreg(Type.I32, "b")
    entry.append(Move(b, Const(7, Type.I32)))
    entry.terminate(CondBr(func.params[0], left.label, right.label))
    left.append(Move(a, Const(1, Type.I32)))
    left.terminate(Jump(join.label))
    right.append(Move(a, Const(2, Type.I32)))
    right.terminate(Jump(join.label))
    join.terminate(Return(a))
    facts = constness(func)
    assert facts["join3"][a.id] == VARYING       # 1 vs 2
    assert facts["join3"][b.id] == (7, Type.I32)  # same on both paths
    assert facts["join3"][func.params[0].id] == VARYING


def test_unreachable_blocks_keep_optimistic_facts():
    func, t = _diamond()
    dead = func.new_block("dead")
    dead.terminate(Return(Const(0, Type.I32)))
    assigned = definite_assignment(func)
    # Unreachable block keeps the optimistic "everything assigned" fact.
    assert t.id in assigned["dead4"]
    assert "dead4" not in dominators(func)


# -- identity against the existing implementations -------------------------

def test_dominators_match_loops_module_on_benchmarks():
    checked = 0
    for _, module in _all_benchmark_modules():
        for func in module.functions.values():
            assert dominators(func) == loops_dominators(func), func.name
            checked += 1
    assert checked > 500


def test_block_liveness_identity_on_full_benchmark_suite():
    """Satellite (a): the allocators' ``block_liveness`` — now a wrapper
    over the dataflow framework — agrees with an independent reference
    implementation on every function of every benchmark, before and
    after optimization."""
    checked = 0
    for name, module in _all_benchmark_modules():
        optimize_module(module)
        for func in module.functions.values():
            got_in, got_out = block_liveness(func)
            want_in, want_out = _reference_liveness(func)
            assert got_in == want_in, f"{name}:{func.name} live-in"
            assert got_out == want_out, f"{name}:{func.name} live-out"
            checked += 1
    assert checked > 500
