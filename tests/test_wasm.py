"""WebAssembly layer tests: binary format, validation, interpreter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from conftest import compile_wasm_bytes

from repro.errors import TrapError, ValidationError
from repro.wasm import (
    WasmFuncType, WasmFunction, WasmInstance, WasmInstr, WasmModule,
    decode_module, encode_module, validate_module,
)
from repro.wasm.binary import Reader, encode_s64, encode_u32
from repro.wasm.text import format_module

_I = WasmInstr


# -- LEB128 -------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_u32_leb_roundtrip(x):
    assert Reader(encode_u32(x)).u32() == x


@given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
def test_s64_leb_roundtrip(x):
    assert Reader(encode_s64(x)).s64() == x


@given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
def test_s32_leb_roundtrip(x):
    assert Reader(encode_s64(x)).s32() == x


def test_u32_leb_is_minimal_for_small_values():
    assert encode_u32(0) == b"\x00"
    assert encode_u32(127) == b"\x7f"
    assert encode_u32(128) == b"\x80\x01"


# -- module construction + encode/decode ----------------------------------------

def _add_module():
    module = WasmModule("add")
    ti = module.type_index(WasmFuncType(("i32", "i32"), ("i32",)))
    body = [_I("local.get", 0), _I("local.get", 1), _I("i32.add")]
    module.functions.append(WasmFunction(ti, [], body, "add"))
    from repro.wasm.module import WasmExport
    module.exports.append(WasmExport("add", "func", 0))
    return module


def test_encode_decode_roundtrip_simple():
    module = _add_module()
    data = encode_module(module)
    assert data[:4] == b"\x00asm"
    decoded = decode_module(data)
    assert len(decoded.functions) == 1
    assert [i.op for i in decoded.functions[0].body] == \
        ["local.get", "local.get", "i32.add"]
    assert decoded.export_index("add") == 0


def test_roundtrip_full_program():
    data, wasm, _ = compile_wasm_bytes(
        "int main(void){ print_i32(1 + 2); return 0; }")
    decoded = decode_module(data)
    validate_module(decoded)
    # Round-tripping again is byte-identical (canonical encoding).
    assert encode_module(decoded) == data


def test_bad_magic_rejected():
    with pytest.raises(ValidationError):
        decode_module(b"\x00abc\x01\x00\x00\x00")


def test_truncated_module_rejected():
    data, _, _ = compile_wasm_bytes("int main(void){ return 0; }")
    with pytest.raises(ValidationError):
        decode_module(data[:20])


def test_wat_rendering_mentions_key_sections():
    _, wasm, _ = compile_wasm_bytes("int main(void){ return 0; }")
    text = format_module(wasm)
    assert "(module" in text
    assert "(memory" in text
    assert '(export "main"' in text


# -- validation ----------------------------------------------------------------

def _module_with_body(body, results=("i32",), locals_=()):
    module = WasmModule("t")
    ti = module.type_index(WasmFuncType((), results))
    module.functions.append(WasmFunction(ti, list(locals_), body, "f"))
    return module


def test_validate_accepts_simple_body():
    validate_module(_module_with_body([_I("i32.const", 1)]))


def test_validate_rejects_stack_underflow():
    with pytest.raises(ValidationError):
        validate_module(_module_with_body([_I("i32.add")]))


def test_validate_rejects_type_mismatch():
    body = [_I("i32.const", 1), _I("f64.const", 2.0), _I("i32.add")]
    with pytest.raises(ValidationError):
        validate_module(_module_with_body(body))


def test_validate_rejects_bad_local_index():
    with pytest.raises(ValidationError):
        validate_module(_module_with_body([_I("local.get", 3)]))


def test_validate_rejects_bad_branch_depth():
    with pytest.raises(ValidationError):
        validate_module(_module_with_body(
            [_I("br", 5), _I("i32.const", 0)]))


def test_validate_unreachable_code_is_polymorphic():
    body = [_I("unreachable"), _I("i32.add")]
    validate_module(_module_with_body(body))


def test_validate_block_result():
    body = [_I("block", "i32"), _I("i32.const", 4), _I("end")]
    validate_module(_module_with_body(body))


def test_validate_rejects_excess_alignment():
    body = [_I("i32.const", 0), _I("i32.load", 4, 0), _I("drop"),
            _I("i32.const", 9)]
    with pytest.raises(ValidationError):
        validate_module(_module_with_body(body))


# -- interpreter -----------------------------------------------------------------

def _run_body(body, results=("i32",), locals_=(), args=()):
    module = _module_with_body(body, results, locals_)
    from repro.wasm.module import WasmExport
    module.exports.append(WasmExport("f", "func", 0))
    return WasmInstance(module).invoke("f", args)


def test_interp_arithmetic():
    assert _run_body([_I("i32.const", 6), _I("i32.const", 7),
                      _I("i32.mul")]) == 42


def test_interp_wrapping():
    assert _run_body([_I("i32.const", 2 ** 31 - 1), _I("i32.const", 1),
                      _I("i32.add")]) == 2 ** 31


def test_interp_div_by_zero_traps():
    with pytest.raises(TrapError):
        _run_body([_I("i32.const", 1), _I("i32.const", 0),
                   _I("i32.div_s")])


def test_interp_block_br():
    # br 0 out of a block skips the unreachable.
    body = [_I("block", None), _I("br", 0), _I("unreachable"), _I("end"),
            _I("i32.const", 9)]
    assert _run_body(body) == 9


def test_interp_loop_counts():
    # local 0 counts to 10 via a loop back edge.
    body = [
        _I("loop", None),
        _I("local.get", 0), _I("i32.const", 1), _I("i32.add"),
        _I("local.set", 0),
        _I("local.get", 0), _I("i32.const", 10), _I("i32.lt_s"),
        _I("br_if", 0),
        _I("end"),
        _I("local.get", 0),
    ]
    assert _run_body(body, locals_=["i32"]) == 10


def test_interp_if_else():
    body = [
        _I("local.get", 0),
        _I("if", "i32"),
        _I("i32.const", 100),
        _I("else"),
        _I("i32.const", 200),
        _I("end"),
    ]
    module = WasmModule("t")
    ti = module.type_index(WasmFuncType(("i32",), ("i32",)))
    module.functions.append(WasmFunction(ti, [], body, "f"))
    from repro.wasm.module import WasmExport
    module.exports.append(WasmExport("f", "func", 0))
    inst = WasmInstance(module)
    assert inst.invoke("f", [1]) == 100
    assert inst.invoke("f", [0]) == 200


def test_interp_memory_load_store():
    body = [
        _I("i32.const", 16), _I("i32.const", -2), _I("i32.store", 2, 0),
        _I("i32.const", 16), _I("i32.load8_u", 0, 0),
    ]
    assert _run_body(body) == 0xFE


def test_interp_oob_access_traps():
    body = [_I("i32.const", 2 ** 20), _I("i32.load", 2, 0)]
    with pytest.raises(TrapError):
        _run_body(body)


def test_interp_memory_grow_and_size():
    body = [_I("memory.size")]
    assert _run_body(body) == 1
    body = [_I("i32.const", 2), _I("memory.grow"), _I("drop"),
            _I("memory.size")]
    module = _module_with_body(body)
    module.memory_pages = (1, None)
    from repro.wasm.module import WasmExport
    module.exports.append(WasmExport("f", "func", 0))
    assert WasmInstance(module).invoke("f") == 3


def test_interp_select():
    body = [_I("i32.const", 11), _I("i32.const", 22), _I("i32.const", 0),
            _I("select")]
    assert _run_body(body) == 22


def test_interp_br_table():
    def make(n):
        return [
            _I("block", None), _I("block", None), _I("block", None),
            _I("i32.const", n),
            _I("br_table", [0, 1], 2),
            _I("end"),
            _I("i32.const", 10), _I("return"),
            _I("end"),
            _I("i32.const", 20), _I("return"),
            _I("end"),
            _I("i32.const", 30),
        ]
    assert _run_body(make(0)) == 10
    assert _run_body(make(1)) == 20
    assert _run_body(make(5)) == 30


def test_interp_call_stack_exhaustion_traps():
    module = WasmModule("t")
    ti = module.type_index(WasmFuncType((), ("i32",)))
    module.functions.append(
        WasmFunction(ti, [], [_I("call", 0)], "f"))
    from repro.wasm.module import WasmExport
    module.exports.append(WasmExport("f", "func", 0))
    with pytest.raises(TrapError):
        WasmInstance(module).invoke("f")


def test_interp_f64_ops():
    body = [_I("f64.const", 2.25), _I("f64.const", 4.0), _I("f64.mul"),
            _I("f64.sqrt")]
    assert _run_body(body, results=("f64",)) == 3.0
