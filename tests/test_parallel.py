"""Parallel suite runner: bit-identical to serial, stable ordering."""

import pytest

from repro.benchsuite import matmul_spec, polybench_benchmark
from repro.harness.parallel import (
    MAX_JOBS, default_jobs, normalize_jobs, resolve_ref, run_suite,
    shutdown_warm_pool, spec_ref,
)
from repro.harness import parallel as parallel_mod
from repro.harness.spec import BenchmarkSpec

SUBSET = ["trisolv", "bicg", "mvt", "gesummv"]
TARGETS = ["native", "chrome", "firefox"]


@pytest.fixture
def force_jobs(monkeypatch):
    """Exercise the real worker pool even on a single-CPU box."""
    monkeypatch.setenv("REPRO_FORCE_JOBS", "1")
    yield
    shutdown_warm_pool()


def _suite():
    return [polybench_benchmark(name, "test") for name in SUBSET]


def test_parallel_matches_serial_bit_for_bit(force_jobs):
    serial, _ = run_suite(_suite(), TARGETS, runs=3, jobs=1, cache=False)
    parallel, _ = run_suite(_suite(), TARGETS, runs=3, jobs=4,
                            cache=False)
    assert list(serial) == SUBSET          # suite order preserved
    assert list(parallel) == SUBSET
    for name in SUBSET:
        assert list(parallel[name]) == TARGETS
        for target in TARGETS:
            s = serial[name][target]
            p = parallel[name][target]
            assert p.times == s.times      # bit-identical, not approx
            assert p.perf.as_dict() == s.perf.as_dict()
            assert p.run.stdout == s.run.stdout


def test_parallel_compile_seconds_reported(force_jobs):
    _, compile_seconds = run_suite(_suite()[:2], ["native"], runs=1,
                                   jobs=2, cache=False)
    for name in SUBSET[:2]:
        assert compile_seconds[name]["native"] > 0


def test_warm_pool_reused_across_sweeps(force_jobs):
    """A second sweep at the same width reuses the live workers."""
    run_suite(_suite()[:2], ["native"], runs=1, jobs=2, cache=False)
    pool = parallel_mod._POOL
    assert pool is not None and pool.alive() and pool.width == 2
    pids = [w["proc"].pid for w in pool.workers]
    run_suite(_suite()[2:], ["native"], runs=1, jobs=2, cache=False)
    assert parallel_mod._POOL is pool
    assert [w["proc"].pid for w in pool.workers] == pids


def test_warm_pool_rebuilt_on_width_change(force_jobs):
    run_suite(_suite()[:2], ["native"], runs=1, jobs=2, cache=False)
    first = parallel_mod._POOL
    run_suite(_suite()[:2], ["native"], runs=1, jobs=3, cache=False)
    assert parallel_mod._POOL is not first
    assert parallel_mod._POOL.width == 3


def test_warm_pool_cell_error_propagates(force_jobs):
    bad = polybench_benchmark("trisolv", "test")
    with pytest.raises(Exception):
        run_suite([bad], ["no-such-target", "native"], runs=1, jobs=2,
                  cache=False)
    # a *cell* error leaves every worker healthy: the pool is recovered
    # (in-flight cells drained), not discarded, so the next sweep
    # reuses the very same warm workers
    pool = parallel_mod._POOL
    assert pool is not None and pool.alive()
    pids = [w["proc"].pid for w in pool.workers]
    results, _ = run_suite(_suite()[:2], ["native"], runs=1, jobs=2,
                           cache=False)
    assert set(results) == set(SUBSET[:2])
    assert parallel_mod._POOL is pool
    assert [w["proc"].pid for w in pool.workers] == pids


def test_warm_pool_discarded_on_worker_death(force_jobs):
    """A worker that actually dies mid-sweep poisons the pool: the
    sweep raises WorkerCrashError and the pool is torn down (state
    unknowable), unlike the healthy-workers cell-error path above."""
    import threading
    from repro.errors import WorkerCrashError
    run_suite(_suite()[:2], ["native"], runs=1, jobs=2, cache=False)
    pool = parallel_mod._POOL

    def _kill_workers():
        for worker in pool.workers:
            worker["proc"].kill()

    killer = threading.Timer(0.2, _kill_workers)
    killer.start()
    try:
        with pytest.raises(WorkerCrashError):
            run_suite(_suite(), ["native", "chrome", "firefox"], runs=1,
                      jobs=2, cache=False)
    finally:
        killer.cancel()
    assert parallel_mod._POOL is None
    # and the next sweep builds a fresh pool and completes
    results, _ = run_suite(_suite()[:2], ["native"], runs=1, jobs=2,
                           cache=False)
    assert set(results) == set(SUBSET[:2])


def test_warm_pool_survives_ctrl_c(force_jobs):
    """Ctrl-C mid-sweep routes through the drain path: in-flight cells
    finish, the warm pool survives, and the next sweep reuses the very
    same workers instead of re-paying the fork cost."""
    run_suite(_suite()[:2], ["native"], runs=1, jobs=2, cache=False)
    pool = parallel_mod._POOL
    pids = [w["proc"].pid for w in pool.workers]

    def interrupt(name):
        raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_suite(_suite(), ["native"], runs=1, jobs=2, cache=False,
                  progress=interrupt)
    assert parallel_mod._POOL is pool and pool.alive()
    assert [w["proc"].pid for w in pool.workers] == pids
    # and the recovered pool is immediately usable
    results, _ = run_suite(_suite()[:2], ["native"], runs=1, jobs=2,
                           cache=False)
    assert set(results) == set(SUBSET[:2])
    assert [w["proc"].pid for w in pool.workers] == pids


def test_spec_ref_round_trip():
    spec = polybench_benchmark("trisolv", "test")
    ref = spec_ref(spec)
    assert ref == ("polybench", "trisolv", "test")
    rebuilt = resolve_ref(ref)
    assert rebuilt.name == spec.name
    assert rebuilt.source == spec.source


def test_spec_ref_matmul():
    spec = matmul_spec(10, 11, 12)
    rebuilt = resolve_ref(spec_ref(spec))
    assert rebuilt.source == spec.source


def test_spec_ref_unreferencable():
    adhoc = BenchmarkSpec("adhoc", "none",
                          "int main(void){return 0;}")
    assert spec_ref(adhoc) is None


def test_adhoc_specs_run_serially_in_suite(force_jobs):
    adhoc = BenchmarkSpec(
        "adhoc", "none",
        "int main(void){ print_i32(7); return 0; }")
    results, _ = run_suite([adhoc], ["native"], runs=2, jobs=4,
                           cache=False)
    assert results["adhoc"]["native"].run.stdout == b"7\n"


def test_normalize_jobs_multi_cpu(monkeypatch):
    monkeypatch.delenv("REPRO_FORCE_JOBS", raising=False)
    monkeypatch.setattr("os.cpu_count", lambda: 8)
    assert normalize_jobs(1) == 1
    assert normalize_jobs(0) == 1
    assert normalize_jobs(6) == 6
    assert 1 <= normalize_jobs(None) <= MAX_JOBS
    assert normalize_jobs(None) == default_jobs()


def test_normalize_jobs_degrades_on_one_cpu(monkeypatch, capsys):
    """--jobs N on a 1-CPU box runs serially (with a notice) rather
    than paying fork/pickle overhead for no parallelism."""
    monkeypatch.delenv("REPRO_FORCE_JOBS", raising=False)
    monkeypatch.setattr("os.cpu_count", lambda: 1)
    monkeypatch.setattr(parallel_mod, "_DEGRADE_NOTICED", False)
    assert normalize_jobs(4, quiet=True) == 1
    assert normalize_jobs(None) == 1       # auto-select: no notice
    assert capsys.readouterr().err == ""
    assert normalize_jobs(4) == 1
    assert "running serially" in capsys.readouterr().err


def test_degrade_notice_printed_once_per_process(monkeypatch, capsys):
    """Drivers re-enter normalize_jobs once per sweep; the degrade
    notice must not repeat for every sweep of a compare/report run."""
    monkeypatch.delenv("REPRO_FORCE_JOBS", raising=False)
    monkeypatch.setattr("os.cpu_count", lambda: 1)
    monkeypatch.setattr(parallel_mod, "_DEGRADE_NOTICED", False)
    assert normalize_jobs(4) == 1
    assert "running serially" in capsys.readouterr().err
    assert normalize_jobs(4) == 1          # second sweep: silent
    assert normalize_jobs(8) == 1
    assert capsys.readouterr().err == ""


def test_normalize_jobs_force_override(monkeypatch):
    monkeypatch.setattr("os.cpu_count", lambda: 1)
    monkeypatch.setenv("REPRO_FORCE_JOBS", "1")
    assert normalize_jobs(4) == 4
