"""Parallel suite runner: bit-identical to serial, stable ordering."""

import pytest

from repro.benchsuite import matmul_spec, polybench_benchmark
from repro.harness.parallel import (
    MAX_JOBS, default_jobs, normalize_jobs, resolve_ref, run_suite,
    spec_ref,
)
from repro.harness.spec import BenchmarkSpec

SUBSET = ["trisolv", "bicg", "mvt", "gesummv"]
TARGETS = ["native", "chrome", "firefox"]


def _suite():
    return [polybench_benchmark(name, "test") for name in SUBSET]


def test_parallel_matches_serial_bit_for_bit():
    serial, _ = run_suite(_suite(), TARGETS, runs=3, jobs=1, cache=False)
    parallel, _ = run_suite(_suite(), TARGETS, runs=3, jobs=4,
                            cache=False)
    assert list(serial) == SUBSET          # suite order preserved
    assert list(parallel) == SUBSET
    for name in SUBSET:
        assert list(parallel[name]) == TARGETS
        for target in TARGETS:
            s = serial[name][target]
            p = parallel[name][target]
            assert p.times == s.times      # bit-identical, not approx
            assert p.perf.as_dict() == s.perf.as_dict()
            assert p.run.stdout == s.run.stdout


def test_parallel_compile_seconds_reported():
    _, compile_seconds = run_suite(_suite()[:2], ["native"], runs=1,
                                   jobs=2, cache=False)
    for name in SUBSET[:2]:
        assert compile_seconds[name]["native"] > 0


def test_spec_ref_round_trip():
    spec = polybench_benchmark("trisolv", "test")
    ref = spec_ref(spec)
    assert ref == ("polybench", "trisolv", "test")
    rebuilt = resolve_ref(ref)
    assert rebuilt.name == spec.name
    assert rebuilt.source == spec.source


def test_spec_ref_matmul():
    spec = matmul_spec(10, 11, 12)
    rebuilt = resolve_ref(spec_ref(spec))
    assert rebuilt.source == spec.source


def test_spec_ref_unreferencable():
    adhoc = BenchmarkSpec("adhoc", "none",
                          "int main(void){return 0;}")
    assert spec_ref(adhoc) is None


def test_adhoc_specs_run_serially_in_suite():
    adhoc = BenchmarkSpec(
        "adhoc", "none",
        "int main(void){ print_i32(7); return 0; }")
    results, _ = run_suite([adhoc], ["native"], runs=2, jobs=4,
                           cache=False)
    assert results["adhoc"]["native"].run.stdout == b"7\n"


def test_normalize_jobs():
    assert normalize_jobs(1) == 1
    assert normalize_jobs(0) == 1
    assert normalize_jobs(6) == 6
    assert 1 <= normalize_jobs(None) <= MAX_JOBS
    assert normalize_jobs(None) == default_jobs()
