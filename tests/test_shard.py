"""Sharded sweep engine: determinism under adversarial schedules.

The contract under test is the one the engine documents: the merged
suite results are bit-identical to a serial run no matter the shard
count, steal schedule, straggler re-dispatch races, or injected worker
crashes.  Chaos manifests (which cells fail, with how many attempts)
are compared against the single-pool process-per-cell scheduler, the
established baseline for ``worker``-fault determinism.
"""

import pytest

from repro.benchsuite import matmul_spec, polybench_benchmark
from repro.harness.parallel import run_suite, shutdown_warm_pool
from repro.harness.shard import (
    AUTO_SHARD_WIDTH, MAX_SHARDS, get_shard_pools, normalize_shards,
    shard_widths, shutdown_shard_pools,
)
from repro.harness import shard as shard_mod
from repro.obs import metrics as obs_metrics
from repro.resilience import FaultPlan, is_failure

SUBSET = ["trisolv", "bicg", "mvt", "gesummv"]
TARGETS = ["native", "chrome", "firefox"]


@pytest.fixture
def force_jobs(monkeypatch):
    """Exercise real shard pools even on a single-CPU box."""
    monkeypatch.setenv("REPRO_FORCE_JOBS", "1")
    yield
    shutdown_warm_pool()
    shutdown_shard_pools()


@pytest.fixture
def metrics():
    registry = obs_metrics.enable()
    yield registry
    obs_metrics.disable()


def _suite():
    return [polybench_benchmark(name, "test") for name in SUBSET]


def _skewed_suite():
    """One heavy cell in shard 0's contiguous slice forces stealing."""
    return [matmul_spec(40, 40, 40)] + _suite()


def _counter(registry, name):
    counter = registry.counters.get(name)
    return counter.value if counter is not None else 0


def _assert_identical(sharded, serial, suite):
    for spec in suite:
        for target in TARGETS:
            got = sharded[spec.name][target]
            want = serial[spec.name][target]
            assert got.times == want.times, (spec.name, target)
            assert got.perf.as_dict() == want.perf.as_dict()
            assert got.run.stdout == want.run.stdout


# -- shard shaping -----------------------------------------------------------------

def test_normalize_shards_auto():
    assert normalize_shards(None, 1) == 1
    assert normalize_shards(None, AUTO_SHARD_WIDTH - 1) == 1
    assert normalize_shards(None, AUTO_SHARD_WIDTH) == 1
    assert normalize_shards(None, 2 * AUTO_SHARD_WIDTH) == 2
    assert normalize_shards(None, 10 * AUTO_SHARD_WIDTH * MAX_SHARDS) \
        == MAX_SHARDS


def test_normalize_shards_explicit_clamped():
    assert normalize_shards(4, 8) == 4
    assert normalize_shards(16, 8) == 8      # one worker per shard min
    assert normalize_shards(99, 99) == MAX_SHARDS
    assert normalize_shards(0, 8) == 1
    assert normalize_shards(2, 1) == 1       # serial stays serial


def test_shard_widths_balanced():
    assert shard_widths(2, 4) == [2, 2]
    assert shard_widths(3, 8) == [3, 3, 2]
    assert shard_widths(2, 2) == [1, 1]
    assert sum(shard_widths(5, 17)) == 17


# -- determinism across shard counts -----------------------------------------------

def test_sharded_matches_serial_bit_for_bit(force_jobs):
    serial, _ = run_suite(_suite(), TARGETS, runs=3, jobs=1, cache=False)
    for shards in (1, 2, 8):
        sharded, _ = run_suite(_suite(), TARGETS, runs=3, jobs=8,
                               shards=shards, cache=False)
        assert list(sharded) == SUBSET       # suite order preserved
        _assert_identical(sharded, serial, _suite())


def test_sharded_compile_seconds_reported(force_jobs):
    _, compile_seconds = run_suite(_suite(), ["native"], runs=1, jobs=4,
                                   shards=2, cache=False)
    for name in SUBSET:
        assert compile_seconds[name]["native"] > 0


def test_steals_under_skew(force_jobs, metrics):
    """A skewed matrix forces idle shards to steal; results still match."""
    serial, _ = run_suite(_skewed_suite(), TARGETS, runs=2, jobs=1,
                          cache=False)
    sharded, _ = run_suite(_skewed_suite(), TARGETS, runs=2, jobs=4,
                           shards=2, cache=False)
    _assert_identical(sharded, serial, _skewed_suite())
    assert _counter(metrics, "shard.steals") > 0
    assert _counter(metrics, "shard.cells") == len(_skewed_suite()) \
        * len(TARGETS)


def test_straggler_redispatch_race(force_jobs, metrics, monkeypatch):
    """With an absurdly tight deadline every cell is a straggler;
    speculative copies race the originals and first-wins stays
    bit-identical because duplicates are deterministic."""
    monkeypatch.setenv("REPRO_STRAGGLER_FACTOR", "0.0001")
    serial, _ = run_suite(_suite(), TARGETS, runs=2, jobs=1, cache=False)
    sharded, _ = run_suite(_suite(), TARGETS, runs=2, jobs=4, shards=2,
                           cache=False)
    _assert_identical(sharded, serial, _suite())
    assert _counter(metrics, "shard.redispatches") > 0


def test_shard_pools_warm_across_sweeps(force_jobs):
    run_suite(_suite()[:2], ["native"], runs=1, jobs=4, shards=2,
              cache=False)
    pools = shard_mod._SHARDS["pools"]
    pids = [w["proc"].pid for pool in pools for w in pool.workers]
    run_suite(_suite()[2:], ["native"], runs=1, jobs=4, shards=2,
              cache=False)
    assert shard_mod._SHARDS["pools"] is pools
    assert [w["proc"].pid for pool in pools
            for w in pool.workers] == pids


def test_shard_pools_rebuilt_on_shape_change(force_jobs):
    first = get_shard_pools(2, 4)
    assert get_shard_pools(2, 4) is first
    second = get_shard_pools(3, 6)
    assert second is not first
    assert [pool.width for pool in second] == [2, 2, 2]


def test_shard_pools_survive_ctrl_c(force_jobs):
    """Ctrl-C mid-sharded-sweep drains in-flight cells and keeps every
    shard pool warm, instead of tearing the engine down."""
    run_suite(_suite()[:2], ["native"], runs=1, jobs=4, shards=2,
              cache=False)
    pools = shard_mod._SHARDS["pools"]
    pids = [w["proc"].pid for pool in pools for w in pool.workers]

    def interrupt(name):
        raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_suite(_suite(), ["native"], runs=1, jobs=4, shards=2,
                  cache=False, progress=interrupt)
    assert shard_mod._SHARDS["pools"] is pools
    assert all(w["proc"].is_alive() for pool in pools
               for w in pool.workers)
    assert [w["proc"].pid for pool in pools
            for w in pool.workers] == pids
    # and the warm pools run the next sweep to completion
    results, _ = run_suite(_suite()[:2], ["native"], runs=1, jobs=4,
                           shards=2, cache=False)
    assert set(results) == set(SUBSET[:2])


def test_shard_cell_error_keeps_pools_warm(force_jobs):
    bad = polybench_benchmark("trisolv", "test")
    with pytest.raises(Exception):
        run_suite([bad] + _suite()[:1], ["no-such-target", "native"],
                  runs=1, jobs=4, shards=2, cache=False)
    results, _ = run_suite(_suite()[:2], ["native"], runs=1, jobs=4,
                           shards=2, cache=False)
    assert set(results) == set(SUBSET[:2])


# -- chaos: injected worker crashes ------------------------------------------------

def test_worker_crashes_requeue_deterministically(force_jobs, metrics):
    """Injected worker deaths re-queue cells; survivors are bit-identical
    with serial and the failure manifest matches the single-pool
    process-per-cell scheduler exactly."""
    suite = _skewed_suite() + [polybench_benchmark("durbin", "test")]
    names = [spec.name for spec in suite]
    serial, _ = run_suite(suite, TARGETS, runs=2, jobs=1, cache=False)
    plan = lambda: FaultPlan.parse("worker:0.5", seed=11)
    baseline, _ = run_suite(suite, TARGETS, runs=2, jobs=4, shards=1,
                            cache=False, tolerant=True, plan=plan(),
                            timeout=None)
    shutdown_warm_pool()
    sharded, _ = run_suite(suite, TARGETS, runs=2, jobs=4, shards=2,
                           cache=False, tolerant=True, plan=plan(),
                           timeout=None)
    failures = 0
    for name in names:
        for target in TARGETS:
            got = sharded[name][target]
            want = baseline[name][target]
            if is_failure(want):
                failures += 1
                assert is_failure(got), (name, target)
                assert (got.phase, got.attempts) \
                    == (want.phase, want.attempts), (name, target)
            else:
                assert got.times == want.times, (name, target)
                assert got.times == serial[name][target].times
    assert failures > 0                      # the plan actually bit
    assert _counter(metrics, "shard.worker_respawns") > 0
    assert _counter(metrics, "shard.requeues") > 0


def test_worker_crash_fast_mode_raises_after_retries(force_jobs):
    """Without the tolerant flag an exhausted crash budget aborts the
    sweep, and the next sweep still works on rebuilt pools."""
    from repro.errors import WorkerCrashError
    from repro.tier import get_tier
    plan = FaultPlan.parse("worker:1.0", seed=1)
    jobs_list = [{
        "ref": ("polybench", "trisolv", "test"), "name": "trisolv",
        "target": "native", "runs": 1, "noise": 0.004,
        "max_instructions": 2_000_000_000, "use_cache": False,
        "plan": plan, "tier": get_tier(),
    }]
    from repro.harness.shard import run_sharded_jobs
    with pytest.raises(WorkerCrashError):
        run_sharded_jobs(jobs_list, 2, 4, lambda *a: None, retries=1,
                         plan=plan)
    results, _ = run_suite(_suite()[:1], ["native"], runs=1, jobs=4,
                           shards=2, cache=False)
    assert "trisolv" in results
