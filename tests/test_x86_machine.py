"""Simulated x86-64 machine unit tests."""

import pytest

from repro.errors import TrapError
from repro.x86 import ICache, Imm, Instr, Label, Mem, Reg, X86Machine, X86Program
from repro.x86.registers import (
    R8, R9, RAX, RBX, RCX, RDI, RDX, RSI, XMM0, xmm,
)

_I = Instr


def build_program(instrs, name="f", linear_size=1 << 16):
    program = X86Program("t", linear_size)
    func = program.new_function(name)
    for ins in instrs:
        if isinstance(ins, str):
            func.label(ins)
        else:
            func.emit(ins)
    program.layout()
    return program


def run(instrs, setup=None, **kwargs):
    program = build_program(list(instrs) + [_I("ret")])
    machine = X86Machine(program, **kwargs)
    if setup:
        setup(machine)
    machine.call("f", setup_regs=False)
    return machine


def test_mov_and_alu():
    m = run([
        _I("mov", Reg(RAX), Imm(10)),
        _I("mov", Reg(RBX), Imm(32)),
        _I("add", Reg(RAX), Reg(RBX)),
    ])
    assert m.regs[RAX] == 42


def test_32bit_write_zero_extends():
    m = run([
        _I("mov", Reg(RAX), Imm(-1)),
        _I("mov", Reg(RBX, 4), Reg(RAX, 4), size=4),
    ])
    assert m.regs[RBX] == 0xFFFFFFFF


def test_sub_sets_flags_for_signed_compare():
    m = run([
        _I("mov", Reg(RAX), Imm(-5)),
        _I("cmp", Reg(RAX, 4), Imm(3), size=4),
        _I("setcc", Reg(RBX), cond="l"),
        _I("setcc", Reg(RCX), cond="b"),   # unsigned: -5 is huge
    ])
    assert m.regs[RBX] == 1
    assert m.regs[RCX] == 0


def test_memory_store_load_roundtrip():
    m = run([
        _I("mov", Reg(RAX), Imm(0x11223344)),
        _I("mov", Mem(disp=0x100, size=4), Reg(RAX), size=4),
        _I("movzx", Reg(RBX, 8), Mem(disp=0x101, size=1), size=8),
    ])
    assert m.regs[RBX] == 0x33


def test_movsx_sign_extends():
    m = run([
        _I("mov", Reg(RAX), Imm(0x80)),
        _I("mov", Mem(disp=0x40, size=1), Reg(RAX), size=1),
        _I("movsx", Reg(RBX, 4), Mem(disp=0x40, size=1), size=4),
    ])
    assert m.regs[RBX] == 0xFFFFFF80


def test_scaled_index_addressing():
    def setup(m):
        m.write_mem(0x200 + 3 * 4, (99).to_bytes(4, "little"))

    m = run([
        _I("mov", Reg(RSI), Imm(3)),
        _I("mov", Reg(RAX, 4), Mem(index=RSI, scale=4, disp=0x200, size=4),
           size=4),
    ], setup=setup)
    assert m.regs[RAX] == 99


def test_rmw_memory_destination_counts_load_and_store():
    m = run([
        _I("mov", Mem(disp=0x80, size=4), Imm(5), size=4),
        _I("add", Mem(disp=0x80, size=4), Imm(7), size=4),
        _I("mov", Reg(RAX, 4), Mem(disp=0x80, size=4), size=4),
    ])
    assert m.regs[RAX] == 12
    assert m.perf.loads == 3    # RMW load + final load + ret
    assert m.perf.stores == 2   # initial store + RMW store


def test_idiv_signed():
    m = run([
        _I("mov", Reg(RAX), Imm(-7 & 0xFFFFFFFF)),
        _I("cdq"),
        _I("mov", Reg(RBX), Imm(2)),
        _I("idiv", Reg(RBX, 4), size=4),
    ])
    assert m.regs[RAX] == (-3) & 0xFFFFFFFF
    assert m.regs[RDX] == (-1) & 0xFFFFFFFF


def test_div_by_zero_traps():
    with pytest.raises(TrapError):
        run([
            _I("mov", Reg(RAX), Imm(1)),
            _I("cdq"),
            _I("mov", Reg(RBX), Imm(0)),
            _I("idiv", Reg(RBX, 4), size=4),
        ])


def test_shifts():
    m = run([
        _I("mov", Reg(RAX), Imm(0x80000000)),
        _I("sar", Reg(RAX, 4), Imm(4), size=4),
        _I("mov", Reg(RBX), Imm(0x80000000)),
        _I("shr", Reg(RBX, 4), Imm(4), size=4),
        _I("mov", Reg(RCX), Imm(3)),
        _I("shl", Reg(RCX, 4), Imm(2), size=4),
    ])
    assert m.regs[RAX] == 0xF8000000
    assert m.regs[RBX] == 0x08000000
    assert m.regs[RCX] == 12


def test_variable_shift_uses_cl():
    m = run([
        _I("mov", Reg(RAX), Imm(1)),
        _I("mov", Reg(RCX), Imm(5)),
        _I("shl", Reg(RAX, 4), Reg(RCX, 1), size=4),
    ])
    assert m.regs[RAX] == 32


def test_jcc_and_jmp():
    m = run([
        _I("mov", Reg(RAX), Imm(0)),
        _I("mov", Reg(RBX), Imm(0)),
        "loop",
        _I("add", Reg(RAX), Imm(1)),
        _I("add", Reg(RBX), Reg(RAX)),
        _I("cmp", Reg(RAX, 4), Imm(10), size=4),
        _I("jcc", Label("loop"), cond="l"),
    ])
    assert m.regs[RBX] == 55
    assert m.perf.cond_branches == 10


def test_call_and_ret():
    program = X86Program("t", 1 << 16)
    callee = program.new_function("callee")
    callee.emit(_I("mov", Reg(RAX), Imm(7)))
    callee.emit(_I("ret"))
    caller = program.new_function("caller")
    caller.emit(_I("call", Label("callee")))
    caller.emit(_I("add", Reg(RAX), Imm(1)))
    caller.emit(_I("ret"))
    program.layout()
    machine = X86Machine(program)
    rax, _ = machine.call("caller", setup_regs=False)
    assert rax == 8
    assert machine.perf.calls == 1


def test_indirect_call_through_table():
    program = X86Program("t", 1 << 16)
    target = program.new_function("target")
    target.emit(_I("mov", Reg(RAX), Imm(123)))
    target.emit(_I("ret"))
    table = program.add_call_table([("target", 0)], with_sig=False)
    caller = program.new_function("caller")
    caller.emit(_I("mov", Reg(RSI), Imm(0)))
    caller.emit(_I("callr", Mem(index=RSI, scale=8, disp=table, size=8)))
    caller.emit(_I("ret"))
    program.layout()
    machine = X86Machine(program)
    rax, _ = machine.call("caller", setup_regs=False)
    assert rax == 123


def test_indirect_call_to_garbage_traps():
    program = X86Program("t", 1 << 16)
    caller = program.new_function("caller")
    caller.emit(_I("mov", Reg(RSI), Imm(0xDEAD)))
    caller.emit(_I("callr", Reg(RSI)))
    caller.emit(_I("ret"))
    program.layout()
    with pytest.raises(TrapError):
        X86Machine(program).call("caller", setup_regs=False)


def test_float_arithmetic():
    program = X86Program("t", 1 << 16)
    a = program.f64_constant(2.5)
    b = program.f64_constant(4.0)
    func = program.new_function("f")
    func.emit(_I("movsd", Reg(xmm(1)), Mem(disp=a, size=8)))
    func.emit(_I("mulsd", Reg(xmm(1)), Mem(disp=b, size=8)))
    func.emit(_I("movsd", Reg(XMM0), Reg(xmm(1))))
    func.emit(_I("ret"))
    program.layout()
    machine = X86Machine(program)
    _, x = machine.call("f", setup_regs=False)
    assert x == 10.0


def test_ucomisd_sets_carry_for_less_than():
    program = X86Program("t", 1 << 16)
    a = program.f64_constant(1.0)
    b = program.f64_constant(2.0)
    func = program.new_function("f")
    func.emit(_I("movsd", Reg(xmm(1)), Mem(disp=a, size=8)))
    func.emit(_I("ucomisd", Reg(xmm(1)), Mem(disp=b, size=8)))
    func.emit(_I("setcc", Reg(RAX), cond="b"))
    func.emit(_I("ret"))
    program.layout()
    machine = X86Machine(program)
    rax, _ = machine.call("f", setup_regs=False)
    assert rax == 1


def test_cvt_roundtrip():
    m = run([
        _I("mov", Reg(RSI), Imm(-9)),
        _I("cvtsi2sd", Reg(xmm(2)), Reg(RSI, 4), size=4),
        _I("cvttsd2si", Reg(RAX, 4), Reg(xmm(2)), size=4),
    ])
    assert m.regs[RAX] == (-9) & 0xFFFFFFFF


def test_push_pop():
    m = run([
        _I("mov", Reg(RAX), Imm(77)),
        _I("push", Reg(RAX)),
        _I("mov", Reg(RAX), Imm(0)),
        _I("pop", Reg(RBX)),
    ])
    assert m.regs[RBX] == 77


def test_instruction_budget_guards_runaway():
    with pytest.raises(TrapError):
        run([
            "spin",
            _I("jmp", Label("spin")),
        ], max_instructions=1000)


def test_perf_counters_basic():
    m = run([
        _I("mov", Reg(RAX, 4), Mem(disp=0x10, size=4), size=4),
        _I("mov", Mem(disp=0x20, size=4), Reg(RAX), size=4),
        _I("jmp", Label("end")),
        "end",
    ])
    assert m.perf.loads == 2     # the explicit load + ret's stack pop
    assert m.perf.stores == 1
    assert m.perf.branches == 2  # jmp + ret
    assert m.perf.instructions == 4
    assert m.perf.cycles() > 0


def test_trap_message_includes_context():
    try:
        run([_I("mov", Reg(RAX, 4), Mem(disp=1 << 30, size=4), size=4)])
        assert False
    except TrapError as exc:
        assert "in f at #" in str(exc)


class TestICache:
    def test_sequential_fetch_same_line_is_filtered(self):
        cache = ICache(size=1024, ways=4)
        cache.fetch(0x100, 4)
        cache.fetch(0x104, 4)
        cache.fetch(0x108, 4)
        assert cache.accesses == 1
        assert cache.misses == 1

    def test_capacity_eviction(self):
        cache = ICache(size=256, line_size=64, ways=2)  # 2 sets
        # Touch 3 lines mapping to set 0: 0x000, 0x080, 0x100.
        for addr in (0x000, 0x080, 0x100, 0x000):
            cache.fetch(addr, 4)
            cache.invalidate_stream()
            cache._last_line = -1
        assert cache.misses == 4  # last access misses again (LRU evicted)

    def test_hit_after_fill(self):
        cache = ICache(size=1024, ways=4)
        cache.fetch(0x100, 4)
        cache._last_line = -1
        cache.fetch(0x100, 4)
        assert cache.misses == 1
        assert cache.accesses == 2

    def test_straddling_fetch_touches_two_lines(self):
        cache = ICache(size=1024, ways=4)
        cache.fetch(0x13E, 8)  # crosses the 0x140 line boundary
        assert cache.accesses == 2
