"""Differential tests: every pipeline must agree byte-for-byte.

The central invariant of the reproduction: a program compiled through the
native backend, the WebAssembly interpreter, the Chrome/Firefox JITs, and
the asm.js pipelines produces identical stdout and return codes.  These
tests sweep language features, and the benchmark differential test in
test_benchsuite.py extends the property to the full suites.
"""

import pytest

PROGRAMS = {
    "loops_and_arrays": """
int data[64];
int main(void) {
    int i;
    for (i = 0; i < 64; i++) { data[i] = (i * 37) % 19; }
    int sum = 0;
    for (i = 0; i < 64; i++) { sum = sum * 3 + data[i]; }
    print_i32(sum);
    return 0;
}
""",
    "recursion_and_longs": """
long fact(long n) { if (n < 2L) return 1L; return n * fact(n - 1L); }
int main(void) {
    print_i64(fact(20L));
    return (int)(fact(10L) % 100L);
}
""",
    "floats": """
double series(int n) {
    double s = 0.0;
    int i;
    for (i = 1; i <= n; i++) { s = s + 1.0 / (double)(i * i); }
    return s;
}
int main(void) {
    print_f64(series(50));
    print_f64(sqrt(series(100) * 6.0));
    return 0;
}
""",
    "function_pointers": """
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }
int (*ops[3])(int, int) = { add, sub, mul };
int main(void) {
    int acc = 100;
    int i;
    for (i = 0; i < 12; i++) {
        acc = ops[i % 3](acc, i + 1);
    }
    print_i32(acc);
    return 0;
}
""",
    "structs_and_pointers": """
struct Node { int value; int next; };
struct Node nodes[16];
int main(void) {
    int i;
    for (i = 0; i < 16; i++) {
        nodes[i].value = i * i;
        nodes[i].next = (i + 7) % 16;
    }
    int cursor = 0;
    int sum = 0;
    for (i = 0; i < 40; i++) {
        sum += nodes[cursor].value;
        cursor = nodes[cursor].next;
    }
    print_i32(sum);
    return 0;
}
""",
    "switch_heavy": """
int classify(int x) {
    switch (x % 7) {
    case 0: return 1;
    case 1: return x;
    case 2: return x * 2;
    case 3: x += 3;
    case 4: return x - 1;
    case 5: break;
    default: return -x;
    }
    return 1000 + x;
}
int main(void) {
    int sum = 0;
    int i;
    for (i = 0; i < 50; i++) { sum += classify(i); }
    print_i32(sum);
    return 0;
}
""",
    "division_and_shifts": """
int main(void) {
    int acc = 0;
    int i;
    for (i = 1; i < 40; i++) {
        acc += (1000000 / i) % (i + 3);
        acc ^= acc >> 3;
        acc += acc << 2;
    }
    print_i32(acc);
    long la = 123456789123L;
    print_i64(la / 1000L);
    print_i64(la % 997L);
    return 0;
}
""",
    "strings_and_heap": """
int main(void) {
    char *buf = malloc(64);
    strcpy(buf, "differential");
    int n = strlen(buf);
    print_i32(n);
    char *copy = malloc(64);
    memcpy(copy, buf, n + 1);
    print_i32(strcmp(buf, copy));
    copy[0] = 'D';
    print_i32(strcmp(buf, copy) > 0);
    print_str(copy);
    print_str("\\n");
    return 0;
}
""",
    "globals_and_char_arrays": """
char grid[8][8];
int histogram[4];
int main(void) {
    int r; int c;
    for (r = 0; r < 8; r++)
        for (c = 0; c < 8; c++)
            grid[r][c] = (char)((r * 8 + c) % 4);
    for (r = 0; r < 8; r++)
        for (c = 0; c < 8; c++)
            histogram[grid[r][c]]++;
    for (r = 0; r < 4; r++) print_i32(histogram[r]);
    return 0;
}
""",
    "mixed_arithmetic": """
int main(void) {
    int i;
    double acc = 1.0;
    long bits = 0L;
    for (i = 1; i <= 30; i++) {
        acc = acc * 1.01 + (double)i / 7.0;
        bits = (bits << 1) | (long)((int)acc & 1);
    }
    print_f64(acc);
    print_i64(bits);
    print_i32((int)(acc * 100.0) % 1000);
    return 0;
}
""",
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_all_pipelines_agree(name, everywhere):
    everywhere(PROGRAMS[name])


def test_deep_call_chain(everywhere):
    # Exercises stack checks + shadow-stack frames through deep recursion.
    everywhere("""
int walk(int depth, int acc) {
    char pad[16];
    pad[0] = (char)depth;
    if (depth == 0) { return acc + pad[0]; }
    return walk(depth - 1, acc + depth);
}
int main(void) { print_i32(walk(200, 0)); return 0; }
""")


def test_many_arguments_spill_to_stack(everywhere):
    everywhere("""
int many(int a, int b, int c, int d, int e, int f, int g, int h) {
    return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h;
}
int main(void) {
    print_i32(many(1, 2, 3, 4, 5, 6, 7, 8));
    return 0;
}
""")


def test_long_shifts_and_masks(everywhere):
    everywhere("""
int main(void) {
    long x = 0x123456789abcdefL;
    print_i64(x >> 12);
    print_i64(x << 7);
    print_i64(x & 0xffff0000L);
    long neg = -1000000007L;
    print_i64(neg >> 3);
    print_i64(neg * neg);
    print_i64(neg / 13L);
    print_i64(neg % 13L);
    return 0;
}
""")


def test_float_arguments(everywhere):
    everywhere("""
double mix(double a, double b, double c, int k) {
    return a * b - c / (double)k;
}
int main(void) {
    print_f64(mix(1.5, 2.0, 9.0, 3));
    return 0;
}
""")
