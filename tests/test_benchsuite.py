"""Benchmark suite integration tests (test-size workloads).

Every benchmark must compile through all pipelines, run, and produce
byte-identical output everywhere — the harness's ``cmp`` validation.
"""

import pytest

from repro.benchsuite import (
    FIG8_SIZES, POLYBENCH_NAMES, SPEC_NAMES, all_factories, matmul_spec,
    polybench_benchmark, spec_benchmark,
)
from repro.harness import TARGETS, run_benchmark

ALL_TARGETS = ("native", "chrome", "firefox", "asmjs-chrome",
               "asmjs-firefox")


def test_suite_inventory_matches_paper():
    assert len(POLYBENCH_NAMES) == 23
    assert len(SPEC_NAMES) == 15
    assert "429.mcf" in SPEC_NAMES and "644.nab_s" in SPEC_NAMES
    assert {f.name for f in all_factories()} == \
        set(POLYBENCH_NAMES) | set(SPEC_NAMES)


@pytest.mark.parametrize("name", SPEC_NAMES)
def test_spec_benchmark_all_pipelines_agree(name):
    spec = spec_benchmark(name, "test")
    results = run_benchmark(spec, targets=ALL_TARGETS, runs=1,
                            validate=True)
    native = results["native"]
    assert native.run.stdout, f"{name} produced no output"
    assert native.run.exit_code == 0
    for target in ALL_TARGETS:
        assert results[target].run.exit_code == 0


@pytest.mark.parametrize("name", POLYBENCH_NAMES)
def test_polybench_kernel_all_pipelines_agree(name):
    spec = polybench_benchmark(name, "test")
    results = run_benchmark(spec, targets=TARGETS, runs=1, validate=True)
    assert results["native"].run.stdout


def test_matmul_spec_agrees():
    spec = matmul_spec(8, 9, 10)
    results = run_benchmark(spec, targets=TARGETS, runs=1, validate=True)
    assert results["native"].run.exit_code == 0


def test_fig8_sizes_shape():
    for ni, nk, nj in FIG8_SIZES:
        assert nk == ni + ni // 10 and nj == ni + ni // 5


def test_spec_sizes_scale():
    small = spec_benchmark("401.bzip2", "test")
    big = spec_benchmark("401.bzip2", "ref")
    assert len(big.source) >= len(small.source)
    assert "1600" in big.source and "256" in small.source


def test_syscall_benchmarks_touch_the_kernel():
    from repro.harness.runner import compile_benchmark, run_compiled

    for name in ("401.bzip2", "464.h264ref"):
        spec = spec_benchmark(name, "test")
        assert spec.uses_syscalls
        compiled = compile_benchmark(spec, ("native",))
        result = run_compiled(compiled, "native", runs=1)
        assert result.run.syscalls > 3


def test_indirect_call_benchmarks_use_tables():
    for name in ("450.soplex", "453.povray", "482.sphinx3"):
        spec = spec_benchmark(name, "test")
        assert "(*" in spec.source  # function-pointer tables
