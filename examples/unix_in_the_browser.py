"""Unix in the browser: a file-processing utility under Browsix-Wasm.

Demonstrates the paper's §2 system layer: an unmodified Unix-style C
program (open/read/write/seek over files) compiled to WebAssembly and run
inside a simulated browser against the Browsix-Wasm kernel — and the same
program compiled natively.  Shows the syscall-overhead accounting behind
Figure 4, and the §2 BrowserFS append optimization (naive reallocation vs
4 KB growth).

Usage::

    python examples/unix_in_the_browser.py
"""

from repro.browser import NativeHost, chrome
from repro.codegen import compile_native
from repro.codegen.emscripten import compile_emscripten
from repro.kernel import GROW_CHUNKED, GROW_EXACT, Kernel, FileSystem
from repro.wasm import encode_module

# A word-frequency-ish filter: read a text file, compute per-byte
# histogram + a rolling checksum, append a report block per chunk.
SOURCE = r"""
#define CHUNK 64

char buf[CHUNK];
int histogram[256];
char report[32];

int main(void) {
    int fd = sys_open("corpus.txt", 0);
    if (fd < 0) {
        print_str("missing input\n");
        return 1;
    }
    int out = sys_open("report.bin", 64 | 512 | 1);
    int total = 0;
    int checksum = 0;
    while (1) {
        int n = sys_read(fd, buf, CHUNK);
        if (n <= 0) { break; }
        int i;
        for (i = 0; i < n; i++) {
            histogram[buf[i] & 255]++;
            checksum = checksum * 31 + buf[i];
        }
        total += n;
        // Append a small record per chunk (the BrowserFS stress pattern).
        report[0] = (char)(n & 255);
        report[1] = (char)(checksum & 255);
        sys_write(out, report, 2);
    }
    sys_close(fd);
    sys_close(out);
    print_i32(total);
    print_i32(checksum);
    int nonzero = 0;
    int i;
    for (i = 0; i < 256; i++) {
        if (histogram[i] > 0) { nonzero++; }
    }
    print_i32(nonzero);
    return 0;
}
"""

CORPUS = (b"In the beginning the Web had only JavaScript, and the "
          b"benchmarks were slow, and the developers said: let there be "
          b"bytecode. " * 24)


def make_kernel(policy: str) -> Kernel:
    kernel = Kernel(fs=FileSystem(policy=policy))
    kernel.fs.create("corpus.txt", CORPUS)
    return kernel


def main():
    native_program, _ = compile_native(SOURCE, "wordfreq")
    wasm, _ = compile_emscripten(SOURCE, "wordfreq")
    wasm_bytes = encode_module(wasm)

    kernel = make_kernel(GROW_CHUNKED)
    native = NativeHost().run_program(native_program, kernel, "wordfreq")
    print("native :", native.stdout.strip())
    print(f"         syscalls={native.syscalls} "
          f"overhead={100 * native.overhead_fraction:.2f}% of runtime")

    browser = chrome()
    kernel = make_kernel(GROW_CHUNKED)
    result = browser.run_wasm(wasm_bytes, kernel, "wordfreq")
    assert result.stdout == native.stdout
    print("chrome :", result.stdout.strip())
    print(f"         syscalls={result.syscalls} "
          f"overhead={100 * result.overhead_fraction:.2f}% of runtime "
          f"(Browsix-Wasm, optimized BrowserFS)")
    report = kernel.fs.read_file("report.bin")
    print(f"         report.bin: {len(report)} bytes via "
          f"{result.syscalls} syscalls")

    # The §2 ablation: the same run on the legacy BrowserFS that
    # reallocates the whole buffer on every append.
    kernel = make_kernel(GROW_EXACT)
    legacy = browser.run_wasm(wasm_bytes, kernel, "wordfreq")
    assert legacy.stdout == native.stdout
    print(f"legacy : overhead={100 * legacy.overhead_fraction:.2f}% "
          f"(naive buffer growth, "
          f"{kernel.fs.total_copy_traffic()} bytes recopied)")


if __name__ == "__main__":
    main()
