"""Quickstart: compile one C program through every pipeline and compare.

Runs a small program through the five pipelines the paper compares —
native (Clang-like), WebAssembly in the Chrome- and Firefox-like JITs,
and asm.js in both — plus the reference WebAssembly interpreter, then
prints execution statistics side by side.

Usage::

    python examples/quickstart.py
"""

from repro.asmjs import ASMJS_CHROME, ASMJS_FIREFOX
from repro.browser import Browser, NativeHost, chrome, firefox
from repro.codegen import compile_native
from repro.codegen.emscripten import compile_emscripten
from repro.kernel import BrowsixRuntime, Kernel
from repro.wasm import WasmInstance, encode_module

SOURCE = r"""
#define N 20

int primes[N];

int is_prime(int n) {
    int d;
    if (n < 2) { return 0; }
    for (d = 2; d * d <= n; d++) {
        if (n % d == 0) { return 0; }
    }
    return 1;
}

int main(void) {
    int found = 0;
    int candidate = 2;
    while (found < N) {
        if (is_prime(candidate)) {
            primes[found] = candidate;
            found++;
        }
        candidate++;
    }
    print_str("first primes: ");
    print_i32(primes[N - 1]);
    int i;
    int sum = 0;
    for (i = 0; i < N; i++) {
        sum += primes[i];
    }
    print_i32(sum);
    return 0;
}
"""


def main():
    # --- native (the Clang-like pipeline) -------------------------------
    native_program, _ = compile_native(SOURCE, "quickstart")
    native_result = NativeHost().run_program(native_program, Kernel(),
                                             "quickstart")

    # --- Emscripten-like pipeline: source -> optimized wasm binary ------
    wasm_module, ir = compile_emscripten(SOURCE, "quickstart")
    wasm_bytes = encode_module(wasm_module)
    print(f"wasm binary: {len(wasm_bytes)} bytes, "
          f"{wasm_module.instruction_count()} instructions")

    # --- reference semantics: the WebAssembly interpreter ---------------
    kernel = Kernel()
    process = kernel.spawn("quickstart")
    instance = WasmInstance(
        wasm_module, host=BrowsixRuntime(kernel, process, ir.heap_base))
    instance.invoke("main")
    print("interpreter stdout:", process.stdout.drain())

    # --- the browsers ----------------------------------------------------
    results = {"native": native_result}
    for browser in (chrome(), firefox(),
                    Browser("asmjs-chrome", ASMJS_CHROME),
                    Browser("asmjs-firefox", ASMJS_FIREFOX)):
        results[browser.name] = browser.run_wasm(wasm_bytes, Kernel(),
                                                 "quickstart")

    print("\nAll pipelines must agree:")
    for name, result in results.items():
        assert result.stdout == native_result.stdout, name
        print(f"  {name:16s} stdout={result.stdout!r}")

    print("\nExecution statistics (native = 1.00x):")
    base = native_result.perf
    header = (f"{'pipeline':16s} {'instructions':>14s} {'loads':>10s} "
              f"{'stores':>10s} {'time':>12s}")
    print(header)
    for name, result in results.items():
        p = result.perf
        print(f"{name:16s} {p.instructions:>10d} "
              f"({p.instructions / base.instructions:4.2f}x) "
              f"{p.loads:>6d} ({p.loads / base.loads:4.2f}x) "
              f"{p.stores:>6d} ({p.stores / base.stores:4.2f}x) "
              f"{result.total_seconds * 1e6:8.1f}us "
              f"({result.total_seconds / native_result.total_seconds:4.2f}x)")


if __name__ == "__main__":
    main()
