"""A miniature of the whole paper in one run.

Walks the paper's argument end to end on small (test-size) workloads:

1. PolyBenchC looks fine — small kernels run close to native;
2. SPEC disagrees — full applications show a substantial gap;
3. the counters say why — more loads/stores, more instructions;
4. Browsix-Wasm isn't the reason — kernel overhead is negligible;
5. and part of the gap is fixable — the §6.4 improved engine recovers
   some of it, the safety checks keep the rest.

For the full-size regeneration of every table and figure run
``pytest benchmarks/ --benchmark-only`` (see EXPERIMENTS.md).

Usage::

    python examples/reproduce_paper.py
"""

from repro.analysis import (
    fig3a, fig3b, fig4, polybench_data, spec_data, table4,
)
from repro.benchsuite import spec_benchmark
from repro.harness.runner import compile_benchmark, run_compiled
from repro.jit.engine import CHROME_TIERED


def main():
    print("== Step 1: the PolyBenchC view (small kernels) ==")
    poly = polybench_data("test", runs=2)
    _, poly_summary, text = fig3a(poly)
    print(text)

    print("\n== Step 2: the SPEC view (full applications) ==")
    spec = spec_data("test", runs=2)
    _, spec_summary, text = fig3b(spec)
    print(text)

    print(f"\nPolyBench geomean {poly_summary['chrome_geomean']:.2f}x vs "
          f"SPEC geomean {spec_summary['chrome_geomean']:.2f}x — small "
          "kernels understate the gap, the paper's core point.")

    print("\n== Step 3: why — the performance counters ==")
    _, text = table4(spec)
    print(text)

    print("\n== Step 4: it isn't Browsix — kernel overhead ==")
    _, mean_frac, text = fig4(spec)
    print(text)

    print("\n== Step 5: the fixable part (§6.4) ==")
    name = "450.soplex"
    compiled = compile_benchmark(
        spec_benchmark(name, "test"),
        ("native", "chrome", "chrome-tiered"),
        engines={"chrome-tiered": CHROME_TIERED})
    native = run_compiled(compiled, "native", runs=1)
    today = run_compiled(compiled, "chrome", runs=1)
    tiered = run_compiled(compiled, "chrome-tiered", runs=1)
    base = native.run.total_seconds
    print(f"{name}: Chrome today "
          f"{today.run.total_seconds / base:.2f}x, with better register "
          f"allocation {tiered.run.total_seconds / base:.2f}x — the "
          "remainder is the cost of WebAssembly's safety guarantees.")


if __name__ == "__main__":
    main()
