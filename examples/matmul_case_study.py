"""The paper's §5 case study: why WebAssembly matmul is slower.

Reproduces the Figure 7 comparison: compiles the matmul kernel natively
and through the Chrome-like wasm JIT, prints both x86 listings, and then
quantifies the §5.1 differences (code size, register pressure via spill
counts, extra branches) plus the Figure 8 size sweep.

Usage::

    python examples/matmul_case_study.py
"""

from repro.analysis import fig7, fig8
from repro.benchsuite import FIG8_SIZES


def main():
    stats, listings = fig7(ni=20, nk=20, nj=20)
    print(listings)
    print(f"static instruction counts: "
          f"native={stats['native_instrs']} "
          f"chrome={stats['chrome_instrs']} "
          f"({stats['chrome_instrs'] / stats['native_instrs']:.2f}x)")
    print("\nFigure 8 sweep (this takes a minute)...\n")
    per_size, text = fig8(FIG8_SIZES[:3], runs=2)
    print(text)


if __name__ == "__main__":
    main()
