"""Table 1: SPEC CPU execution times (native vs Chrome vs Firefox).

Paper: WebAssembly is 1.55x (Chrome) / 1.45x (Firefox) slower than native
at the geomean; medians 1.53x / 1.54x; peaks 2.5x / 2.08x; every
benchmark slower except 429.mcf and 433.milc.
"""

from conftest import publish

from repro.analysis import relative_time, table1

PAPER_GEOMEAN = {"chrome": 1.55, "firefox": 1.45}


def test_table1(spec_results, benchmark):
    summary, text = benchmark(table1, spec_results)
    publish("table1_spec_times", text)

    # Headline shape: a substantial slowdown in both browsers, in the
    # paper's band.
    assert 1.25 <= summary["chrome_geomean"] <= 1.9
    assert 1.25 <= summary["firefox_geomean"] <= 1.9
    assert 1.1 <= summary["chrome_median"] <= 2.0

    # The paper's two below-native benchmarks: mcf must beat native.
    mcf_chrome = relative_time(spec_results.results, "429.mcf", "chrome")
    assert mcf_chrome < 1.05, "the 429.mcf anomaly must reproduce"

    # Peak slowdowns stay within a plausible band of the paper's 2.5x.
    peaks = [relative_time(spec_results.results, b, "chrome")
             for b in spec_results.results]
    assert 1.5 <= max(peaks) <= 3.2
