"""Figure 7 / §5: the matmul code-generation case study.

Paper: Chrome's JITed matmul is 53 instructions against Clang's 28; the
JIT code spills registers to the stack, reloads them at loop tops, takes
no advantage of memory-operand addressing, and adds extra jumps — the
native code keeps everything in registers and uses ``add [mem], reg``.
"""

from conftest import publish

from repro.analysis import fig7


def test_fig7(benchmark):
    stats, text = benchmark.pedantic(fig7, kwargs=dict(ni=20, nk=20,
                                                       nj=20),
                                     rounds=1, iterations=1)
    publish("fig7_matmul_codegen", text)

    # The JIT's function is larger, as in the paper (53 vs 28
    # instructions there; the exact ratio depends on how much of the
    # paper's nop padding is counted — our listing omits pad bytes).
    assert stats["chrome_instrs"] > stats["native_instrs"] * 1.15

    # Structural properties from §5.1:
    assert "add [" in text or "add  [" in text, \
        "native code must use a read-modify-write memory operand"
    assert "jentry_" in text, \
        "Chrome's extra loop-entry jumps must be present"
    assert "[rbp-" in text.split("JITed")[1], \
        "the JIT code must spill to the frame"
