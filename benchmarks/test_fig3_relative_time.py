"""Figures 3a/3b: relative execution time, PolyBenchC and SPEC CPU.

Paper: the PolyBench kernels stay close to native (most under 1.5x, a
few worse) while SPEC shows a substantially larger gap — the paper's core
argument that small scientific kernels understate WebAssembly's cost on
real applications.
"""

from conftest import publish

from repro.analysis import fig3a, fig3b, relative_time


def test_fig3a_polybench(poly_results, benchmark):
    per_bench, summary, text = benchmark(fig3a, poly_results)
    publish("fig3a_polybench", text)
    assert 1.0 <= summary["chrome_geomean"] <= 1.6
    assert 1.0 <= summary["firefox_geomean"] <= 1.6
    # No kernel should blow out beyond the paper's ~3.5x ceiling.
    assert all(r["chrome"] < 3.5 for r in per_bench.values())


def test_fig3b_spec(spec_results, benchmark):
    per_bench, summary, text = benchmark(fig3b, spec_results)
    publish("fig3b_spec", text)
    assert 1.25 <= summary["chrome_geomean"] <= 1.9
    assert 1.25 <= summary["firefox_geomean"] <= 1.9
    # mcf runs faster than native (the paper's anomaly)...
    assert per_bench["429.mcf"]["chrome"] < 1.05
    # ...while the call/indirect-heavy benchmarks are far above native.
    assert per_bench["445.gobmk"]["chrome"] > 1.4
    assert per_bench["453.povray"]["chrome"] > 1.3


def test_spec_gap_exceeds_polybench_gap(poly_results, spec_results,
                                        benchmark):
    """The paper's headline claim: PolyBenchC understates the gap."""

    def gap_difference():
        poly = fig3a(poly_results)[1]["chrome_geomean"]
        spec = fig3b(spec_results)[1]["chrome_geomean"]
        return poly, spec

    poly, spec = benchmark(gap_difference)
    assert spec > poly
