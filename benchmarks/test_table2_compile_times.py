"""Table 2: compilation times — Clang vs the Chrome wasm JIT.

Paper: Clang is one to two orders of magnitude slower to compile each
benchmark than Chrome's JIT (4.6s vs 0.78s for namd, 15.3s vs 1.2s for
povray, ...), because the AOT compiler runs much heavier optimization.
The shape reproduced here: the native pipeline's wall-clock compile time
exceeds the JIT's for every benchmark, and strongly at the geomean.
"""

from conftest import publish

from repro.analysis import table2


def test_table2(spec_results, benchmark):
    summary, text = benchmark(table2, spec_results)
    publish("table2_compile_times", text)
    assert summary["clang_vs_chrome_geomean"] > 1.0, \
        "the AOT pipeline must be slower to compile than the JIT"

    slower = 0
    for name, compiled in spec_results.compiled.items():
        clang = compiled.compile_seconds.get("native", 0.0)
        chrome = compiled.compile_seconds.get("chrome", 0.0)
        assert clang > 0 and chrome > 0
        if clang > chrome:
            slower += 1
    assert slower >= len(spec_results.compiled) * 2 // 3
