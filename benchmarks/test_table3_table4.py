"""Tables 3 and 4: the perf-event inventory and geomean counter summary."""

from conftest import publish

from repro.analysis import table3, table4


def test_table3(benchmark):
    events, text = benchmark(table3)
    publish("table3_perf_events", text)
    names = [name for name, _raw, _summary in events]
    assert names == [
        "all-loads-retired", "all-stores-retired", "branches-retired",
        "conditional-branches", "instructions-retired", "cpu-cycles",
        "L1-icache-load-misses",
    ]


def test_table4(spec_results, benchmark):
    summary, text = benchmark(table4, spec_results)
    publish("table4_counter_geomeans", text)

    chrome = {event: v["chrome"] for event, v in summary.items()}
    # Ordering relations that hold in the paper's Table 4:
    assert chrome["all-loads-retired"] > chrome["instructions-retired"] \
        - 0.25
    assert chrome["instructions-retired"] > 1.3
    assert chrome["cpu-cycles"] <= chrome["instructions-retired"] + 0.15
    assert chrome["all-stores-retired"] > 1.1
