"""Figure 4 / §4.2.1: time spent in BROWSIX-WASM system calls.

Paper: the overhead of Browsix-Wasm is negligible — mean 0.2% of the run
time, maximum 1.2% — which is what makes the SPEC comparison valid.
"""

from conftest import publish

from repro.analysis import fig4


def test_fig4(spec_results, benchmark):
    per_bench, mean_frac, text = benchmark(fig4, spec_results, "firefox")
    publish("fig4_browsix_overhead", text)

    # Mean overhead well under 1%, no benchmark above ~2%.
    assert mean_frac < 0.01
    assert max(per_bench.values()) < 0.02

    # The I/O-heavy benchmarks dominate the overhead ranking, as in the
    # paper's figure (464.h264ref is the tallest bar).
    ranked = sorted(per_bench, key=per_bench.get, reverse=True)
    assert "464.h264ref" in ranked[:3]
    assert "401.bzip2" in ranked[:4]
