"""Shared fixtures for the experiment benchmarks.

Collecting the SPEC and PolyBench measurements is the expensive part
(every benchmark × every pipeline, executed on the simulated machine), so
it happens once per session and every figure/table derives from the same
data — mirroring how the paper derives all of §4/§6 from one measurement
campaign.

Each benchmark writes its rendered table to ``results/<artifact>.txt`` in
the repository root, so a benchmark run leaves the full set of regenerated
paper artifacts on disk.
"""

import os

import pytest

from repro.analysis import polybench_data, spec_data

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Number of timed runs per benchmark (the paper uses 5).
RUNS = 5


@pytest.fixture(scope="session")
def spec_results():
    """All SPEC proxies on all five pipelines (native, both wasm JITs,
    both asm.js pipelines)."""
    return spec_data("ref", include_asmjs=True, runs=RUNS)


@pytest.fixture(scope="session")
def poly_results():
    """All 23 PolyBench kernels on native + both wasm JITs."""
    return polybench_data("ref", runs=RUNS)


def publish(name: str, text: str) -> None:
    """Print a rendered artifact and save it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
