"""§6.4: how much of the gap is fixable? (the paper's closing advice)

The paper splits the root causes into fixable (register allocation, code
generation around loops — "solutions adopted by other JITs, such as
further optimizing hot code, are likely applicable") and inherent (the
reserved registers and the safety checks required by WebAssembly's
guarantees).

``CHROME_TIERED`` applies the fixable improvements — a graph-coloring
allocator and Firefox-style loop codegen — while keeping everything the
paper calls inherent.  This benchmark measures how much of the Chrome gap
that recovers, and how much remains: an executable version of §6.4.
"""

from conftest import publish

from repro.analysis.tables import fmt_ratio, render_table
from repro.benchsuite import spec_benchmark
from repro.harness.runner import compile_benchmark, run_compiled
from repro.harness.stats import geomean
from repro.jit.engine import CHROME_ENGINE, CHROME_TIERED

#: A representative cross-section: loops, calls, indirect calls, FP.
BENCHMARKS = ("429.mcf", "445.gobmk", "450.soplex", "462.libquantum",
              "470.lbm", "482.sphinx3")


def test_tiered_engine_closes_part_of_the_gap(benchmark):
    def run():
        rows = []
        baseline_rel, tiered_rel = [], []
        for name in BENCHMARKS:
            spec = spec_benchmark(name, "ref")
            compiled = compile_benchmark(
                spec, ("native", "chrome", "chrome-tiered"),
                engines={"chrome": CHROME_ENGINE,
                         "chrome-tiered": CHROME_TIERED})
            native = run_compiled(compiled, "native", runs=1)
            chrome = run_compiled(compiled, "chrome", runs=1)
            tiered = run_compiled(compiled, "chrome-tiered", runs=1)
            assert chrome.run.stdout == native.run.stdout
            assert tiered.run.stdout == native.run.stdout
            base = native.run.total_seconds
            baseline_rel.append(chrome.run.total_seconds / base)
            tiered_rel.append(tiered.run.total_seconds / base)
            rows.append([name, fmt_ratio(baseline_rel[-1]),
                         fmt_ratio(tiered_rel[-1])])
        return rows, geomean(baseline_rel), geomean(tiered_rel)

    rows, base_geo, tiered_geo = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    rows.append(["geomean", fmt_ratio(base_geo), fmt_ratio(tiered_geo)])
    publish("future_optimizations", render_table(
        ["Benchmark", "Chrome (today)", "Chrome + §6.4 fixes"], rows,
        "§6.4: the fixable part of the gap (slowdown vs native)"))

    # The fixable improvements must recover part of the gap...
    assert tiered_geo < base_geo
    # ...but the inherent costs (checks, reserved registers, no
    # callee-saved linkage) keep wasm measurably behind native.
    assert tiered_geo > 1.02
