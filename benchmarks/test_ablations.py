"""Ablations: each root cause from §5/§6 isolated by a config switch.

Every codegen deficiency the paper identifies is a TargetConfig flag in
this reproduction, so each can be toggled independently and its cost
measured.  The assertions check the *direction* of each effect: removing
a deficiency must not slow the engine down, and adding it must cost
something on a workload that exercises it.
"""

import pytest

from conftest import publish

from repro.analysis.tables import render_table
from repro.benchsuite import matmul_source, spec_benchmark
from repro.codegen import compile_native
from repro.codegen.emscripten import compile_emscripten
from repro.codegen.target import CHROME, NATIVE
from repro.ir import CollectingHost
from repro.jit.engine import Engine
from repro.wasm import encode_module
from repro.x86 import X86Machine
from repro.x86.registers import R13, RSI

MATMUL = matmul_source(18, 19, 20)

CALL_HEAVY = """
int work(int a, int b) {
    int acc = a * 31 + b;
    acc ^= acc >> 3;
    acc += (a - b) * 7;
    acc = acc % 100003;
    acc += (acc >> 2) * 5;
    acc ^= a * b;
    return acc;
}
int main(void) {
    int total = 0;
    int i;
    for (i = 0; i < 4000; i++) {
        total = work(total, i);
    }
    print_i32(total);
    return 0;
}
"""

INDIRECT_HEAVY = """
int f0(int x) { return x + 1; }
int f1(int x) { return x ^ 3; }
int f2(int x) { return x - 2; }
int f3(int x) { return x * 3; }
int (*table_[4])(int) = { f0, f1, f2, f3 };
int main(void) {
    int v = 1;
    int i;
    for (i = 0; i < 4000; i++) {
        v = table_[i & 3](v) & 0xffff;
    }
    print_i32(v);
    return 0;
}
"""


class _Host(CollectingHost):
    def __init__(self, heap_base):
        super().__init__()
        self.heap_base = heap_base

    def call(self, env, name, args):
        if name == "sys_heap_base":
            return self.heap_base
        return super().call(env, name, args)


def run_engine_cycles(source, config, name):
    engine = Engine(name, config)
    wasm, _ = compile_emscripten(source, name)
    program = engine.compile_bytes(encode_module(wasm))
    machine = X86Machine(program, host=_Host(program.heap_base))
    machine.call("main")
    return machine.perf


def run_native_cycles(source, unroll=True, config=None):
    program, _ = compile_native(source, "t", config=config, unroll=unroll)
    machine = X86Machine(program, host=_Host(program.heap_base))
    machine.call("main")
    return machine.perf


@pytest.fixture(scope="module")
def ablation_rows():
    return []


def test_ablation_reserved_registers(benchmark, ablation_rows):
    """§6.1.1: giving the engine back its reserved registers must reduce
    memory traffic."""
    unreserved = CHROME.clone("chrome+regs",
                              gprs=CHROME.gprs + [R13, RSI])

    def run():
        base = run_engine_cycles(MATMUL, CHROME, "chrome-base")
        more = run_engine_cycles(MATMUL, unreserved, "chrome+regs")
        return base, more

    base, more = benchmark.pedantic(run, rounds=1, iterations=1)
    ablation_rows.append(["reserved registers", f"{base.cycles():.0f}",
                          f"{more.cycles():.0f}"])
    assert more.loads <= base.loads
    assert more.cycles() <= base.cycles() * 1.02


def test_ablation_allocator(benchmark, ablation_rows):
    """§6.1.2: swapping the linear-scan allocator for graph coloring must
    not increase spill traffic."""
    graph = CHROME.clone("chrome+graph", allocator="graph")

    def run():
        lin = run_engine_cycles(MATMUL, CHROME, "chrome-lin")
        col = run_engine_cycles(MATMUL, graph, "chrome-graph")
        return lin, col

    lin, col = benchmark.pedantic(run, rounds=1, iterations=1)
    ablation_rows.append(["graph-coloring allocator",
                          f"{lin.cycles():.0f}", f"{col.cycles():.0f}"])
    assert col.loads + col.stores <= (lin.loads + lin.stores) * 1.02


def test_ablation_memory_operands(benchmark, ablation_rows):
    """§6.1.3: disabling the native backend's memory-operand and
    addressing-mode folding must cost instructions."""
    unfolded = NATIVE.clone("clang-nofold", fold_mem_ops=False,
                            fold_addressing=False)

    def run():
        folded_perf = run_native_cycles(MATMUL)
        plain_perf = run_native_cycles(MATMUL, config=unfolded)
        return folded_perf, plain_perf

    folded_perf, plain_perf = benchmark.pedantic(run, rounds=1,
                                                 iterations=1)
    ablation_rows.append(["x86 addressing modes (native)",
                          f"{folded_perf.cycles():.0f}",
                          f"{plain_perf.cycles():.0f}"])
    assert plain_perf.instructions > folded_perf.instructions


def test_ablation_stack_check(benchmark, ablation_rows):
    """§6.2.2: per-call stack-overflow checks cost loads and branches on
    call-heavy code."""
    unchecked = CHROME.clone("chrome-nostackchk", stack_check=False)

    def run():
        checked = run_engine_cycles(CALL_HEAVY, CHROME, "chrome-chk")
        plain = run_engine_cycles(CALL_HEAVY, unchecked, "chrome-nochk")
        return checked, plain

    checked, plain = benchmark.pedantic(run, rounds=1, iterations=1)
    ablation_rows.append(["stack checks", f"{checked.cycles():.0f}",
                          f"{plain.cycles():.0f}"])
    assert checked.cond_branches > plain.cond_branches
    assert checked.loads > plain.loads


def test_ablation_indirect_check(benchmark, ablation_rows):
    """§6.2.3: indirect-call table+signature checks cost two compares and
    branches per call."""
    unchecked = CHROME.clone("chrome-noindchk", indirect_check=False)

    def run():
        checked = run_engine_cycles(INDIRECT_HEAVY, CHROME, "c1")
        plain = run_engine_cycles(INDIRECT_HEAVY, unchecked, "c2")
        return checked, plain

    checked, plain = benchmark.pedantic(run, rounds=1, iterations=1)
    ablation_rows.append(["indirect-call checks",
                          f"{checked.cycles():.0f}",
                          f"{plain.cycles():.0f}"])
    assert checked.cond_branches >= plain.cond_branches + 2 * 3500
    assert checked.cycles() > plain.cycles()


def test_ablation_loop_entry_jumps(benchmark, ablation_rows):
    """§6.2.1: Chrome's extra per-loop-entry jumps cost unconditional
    branches relative to Firefox-style codegen."""
    no_jumps = CHROME.clone("chrome-nojumps", loop_entry_jumps=False)

    def run():
        jumps = run_engine_cycles(MATMUL, CHROME, "c-jmp")
        plain = run_engine_cycles(MATMUL, no_jumps, "c-nojmp")
        return jumps, plain

    jumps, plain = benchmark.pedantic(run, rounds=1, iterations=1)
    ablation_rows.append(["loop-entry jumps", f"{jumps.cycles():.0f}",
                          f"{plain.cycles():.0f}"])
    assert jumps.branches > plain.branches


def test_ablation_native_unrolling_drives_mcf_anomaly(benchmark,
                                                      ablation_rows):
    """§6.3: 429.mcf runs faster as wasm *because* the unrolled native
    loop overflows the i-cache; without unrolling the anomaly vanishes."""
    from repro.harness.runner import compile_benchmark, run_compiled
    from repro.codegen.native import compile_ir_native
    from repro.mcc import compile_source

    spec = spec_benchmark("429.mcf", "ref")

    def run():
        compiled = compile_benchmark(spec, ("native", "chrome"))
        with_unroll = run_compiled(compiled, "native", runs=1)
        chrome = run_compiled(compiled, "chrome", runs=1)

        ir = compile_source(spec.source, "mcf", memory_size=None)
        plain_prog = compile_ir_native(ir, unroll=False)
        machine = X86Machine(plain_prog, host=_Host(plain_prog.heap_base))
        machine.call("main")
        # Cycles including the i-cache model (misses live on the run /
        # machine, not on the retired-event PerfCounters).
        return ((with_unroll.run.cycles, with_unroll.run.icache_misses),
                (machine.perf.cycles(machine.icache.misses),
                 machine.icache.misses),
                (chrome.run.cycles, chrome.run.icache_misses))

    (unrolled, unrolled_miss), (plain, plain_miss), (chrome, _) = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    ablation_rows.append(["native unrolling (mcf)",
                          f"{unrolled:.0f}", f"{plain:.0f}"])
    # With unrolling, native thrashes the i-cache and wasm wins...
    assert chrome < unrolled
    # ...without it, native wins again and misses far less.
    assert chrome > plain
    assert unrolled_miss > plain_miss * 5


def test_zz_publish_ablation_table(ablation_rows, benchmark):
    text = benchmark(
        render_table, ["Ablation", "baseline cycles", "toggled cycles"],
        ablation_rows, "Ablations: each paper root cause isolated")
    publish("ablations", text)
    assert len(ablation_rows) >= 6
