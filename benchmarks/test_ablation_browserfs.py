"""§2 ablation: the BROWSERFS append optimization and legacy Browsix.

Paper: the original BrowserFS reallocated the whole file buffer on every
append; fixing it to grow by at least 4 KB cut 464.h264ref's kernel time
from 25 seconds to under 1.5 — more than an order of magnitude.  The same
pattern (one small append per macroblock) is exercised here against both
growth policies, and against the legacy Browsix syscall costs.
"""

from conftest import publish

from repro.analysis.tables import render_table
from repro.benchsuite import spec_benchmark
from repro.harness.runner import compile_benchmark
from repro.browser.browser import execute_program
from repro.kernel import (
    BrowsixRuntime, FileSystem, GROW_CHUNKED, GROW_EXACT, Kernel,
    LEGACY_BROWSIX_COSTS,
)

#: An append-heavy workload: many small writes to a growing file.
APPEND_STRESS = r"""
char record[40];
int main(void) {
    int out = sys_open("log.bin", 64 | 512 | 1);
    int i;
    for (i = 0; i < 600; i++) {
        int j;
        for (j = 0; j < 40; j++) {
            record[j] = (char)((i * 7 + j) & 255);
        }
        sys_write(out, record, 40);
    }
    sys_close(out);
    print_i32(i);
    return 0;
}
"""


def _run_with_kernel(program, kernel, name):
    process = kernel.spawn(name)
    runtime = BrowsixRuntime(kernel, process, program.heap_base)
    return execute_program(program, runtime, name), kernel


def test_browserfs_growth_policy(benchmark):
    from repro.harness.spec import BenchmarkSpec

    spec = BenchmarkSpec("append-stress", "ablation", APPEND_STRESS,
                         uses_syscalls=True)
    compiled = compile_benchmark(spec, ("chrome",))
    program = compiled.programs["chrome"]

    def run():
        fixed, fixed_kernel = _run_with_kernel(
            program, Kernel(fs=FileSystem(GROW_CHUNKED)), "fixed")
        naive, naive_kernel = _run_with_kernel(
            program, Kernel(fs=FileSystem(GROW_EXACT)), "naive")
        return fixed, fixed_kernel, naive, naive_kernel

    fixed, fixed_kernel, naive, naive_kernel = benchmark.pedantic(
        run, rounds=1, iterations=1)

    assert fixed.stdout == naive.stdout
    naive_traffic = naive_kernel.fs.total_copy_traffic()
    fixed_traffic = fixed_kernel.fs.total_copy_traffic()
    # Quadratic vs amortized reallocation: order(s) of magnitude apart.
    assert naive_traffic > fixed_traffic * 50
    assert naive.overhead_cycles > fixed.overhead_cycles * 3

    rows = [
        ["fixed (>=4KB growth)", f"{fixed_traffic}",
         f"{fixed.overhead_cycles:.0f}"],
        ["naive (exact growth)", f"{naive_traffic}",
         f"{naive.overhead_cycles:.0f}"],
    ]
    publish("ablation_browserfs", render_table(
        ["BrowserFS policy", "bytes recopied", "kernel cycles"], rows,
        "§2 ablation: BrowserFS append growth policy (h264ref pattern)"))


def test_h264ref_kernel_time_improvement(benchmark):
    """The paper's concrete claim, at reproduction scale: the optimized
    kernel spends a small fraction of the legacy kernel's time on
    464.h264ref."""
    spec = spec_benchmark("464.h264ref", "ref")
    compiled = compile_benchmark(spec, ("chrome",))
    program = compiled.programs["chrome"]

    def run():
        kernel = Kernel(fs=FileSystem(GROW_CHUNKED))
        spec.setup_kernel(kernel)
        optimized, _ = _run_with_kernel(program, kernel, "opt")

        kernel = Kernel(fs=FileSystem(GROW_EXACT),
                        costs=LEGACY_BROWSIX_COSTS,
                        optimized_pipes=False)
        spec.setup_kernel(kernel)
        legacy, _ = _run_with_kernel(program, kernel, "legacy")
        return optimized, legacy

    optimized, legacy = benchmark.pedantic(run, rounds=1, iterations=1)
    assert optimized.stdout == legacy.stdout
    ratio = legacy.overhead_cycles / optimized.overhead_cycles
    # Paper: 25s -> under 1.5s, a ~17x improvement class.
    assert ratio > 8, f"legacy/optimized kernel time ratio {ratio:.1f}"

    publish("ablation_h264_kernel_time", render_table(
        ["kernel", "overhead cycles", "% of runtime"],
        [["Browsix-Wasm (optimized)", f"{optimized.overhead_cycles:.0f}",
          f"{100 * optimized.overhead_fraction:.2f}%"],
         ["legacy Browsix", f"{legacy.overhead_cycles:.0f}",
          f"{100 * legacy.overhead_fraction:.2f}%"]],
        "464.h264ref kernel-time: optimized vs legacy Browsix"))
