"""Figures 9a-9f and 10: performance counters relative to native.

Paper (Table 4 summarizes): more loads (2.02x/1.92x), more stores
(2.30x/2.16x), more branches (1.75x/1.65x), more instructions
(1.80x/1.75x), more cycles (1.54x/1.38x), more L1 i-cache misses
(2.83x/2.04x), with 458.sjeng the extreme i-cache outlier and
429.mcf/433.milc *below* native.
"""

from conftest import publish

from repro.analysis import fig9, fig10


def test_fig9_counters(spec_results, benchmark):
    panels, text = benchmark(fig9, spec_results)
    publish("fig9_counters", text)

    loads = panels["9a"]["summary"]
    stores = panels["9b"]["summary"]
    branches = panels["9c"]["summary"]
    instrs = panels["9e"]["summary"]
    cycles = panels["9f"]["summary"]

    # Register pressure: wasm retires substantially more loads/stores.
    assert loads["chrome"] > 1.3 and loads["firefox"] > 1.25
    assert stores["chrome"] > 1.15 and stores["firefox"] > 1.1

    # Code size: more instructions retired, and cycles follow but less
    # than instructions (the extra instructions are cheap moves).
    assert instrs["chrome"] > 1.3
    assert cycles["chrome"] < instrs["chrome"] + 0.15

    # More branches than native (stack checks, indirect-call checks,
    # loop-entry jumps) — Chrome at least as branchy as Firefox.
    assert branches["chrome"] >= 1.0
    assert branches["chrome"] >= branches["firefox"] - 0.02


def test_fig10_icache(spec_results, benchmark):
    per_bench, summary, text = benchmark(fig10, spec_results)
    publish("fig10_icache", text)

    # Overall: wasm suffers more i-cache misses.
    assert summary["chrome"] > 1.0

    # The paper's anomalies: mcf (and milc) miss *less* under wasm.
    assert per_bench["429.mcf"]["chrome"] < 1.0
    assert per_bench["433.milc"]["chrome"] < 1.2

    # Code-footprint outliers miss far more (sjeng in the paper; the
    # reproduction's switch-dense and call-dense proxies behave alike).
    assert per_bench["458.sjeng"]["chrome"] > 1.5
    assert max(r["chrome"] for r in per_bench.values()) > 5.0
