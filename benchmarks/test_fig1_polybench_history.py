"""Figure 1: PolyBenchC kernels within Nx of native, by engine vintage.

Paper: in 2017 seven kernels ran within 1.1x of native; by April 2018,
11; by May 2019, 13 — steady improvement of the WebAssembly engines on
the PolyBenchC suite.  The reproduction's vintages are the 2017/2018/2019
engine configurations; the counts must improve (weakly) year over year at
every threshold.
"""

from conftest import publish

from repro.analysis import FIG1_THRESHOLDS, fig1


def test_fig1(benchmark):
    counts, details, text = benchmark.pedantic(
        lambda: fig1(size="ref", runs=2), rounds=1, iterations=1)
    publish("fig1_polybench_history", text)

    years = sorted(counts)
    assert years == [2017, 2018, 2019]
    for threshold in FIG1_THRESHOLDS:
        series = [counts[y][threshold] for y in years]
        assert series[0] <= series[-1], \
            f"engines must improve at <{threshold}x: {series}"
    # The newest engines keep most kernels under 2.5x of native.
    assert counts[2019][2.5] >= 18
    # And the oldest engines were measurably worse somewhere.
    assert any(counts[2017][t] < counts[2019][t]
               for t in FIG1_THRESHOLDS)
