"""Figures 5/6: WebAssembly vs asm.js on the SPEC proxies.

Paper: wasm outperforms asm.js in both browsers — 1.54x in Chrome, 1.39x
in Firefox (Fig. 5); comparing each benchmark's best browser for each
technology, wasm is 1.3x faster (Fig. 6).
"""

from conftest import publish

from repro.analysis import fig5, fig6


def test_fig5(spec_results, benchmark):
    per_bench, summary, text = benchmark(fig5, spec_results)
    publish("fig5_asmjs_per_browser", text)
    # asm.js must lose to wasm at the geomean in both browsers.
    assert summary["chrome_geomean"] > 1.05
    assert summary["firefox_geomean"] > 1.05
    assert summary["chrome_geomean"] < 2.2
    # Most individual benchmarks agree with the geomean.
    worse = sum(1 for r in per_bench.values() if r["chrome"] > 1.0)
    assert worse >= len(per_bench) * 2 // 3


def test_fig6(spec_results, benchmark):
    per_bench, geomean_ratio, text = benchmark(fig6, spec_results)
    publish("fig6_asmjs_best_of", text)
    assert 1.05 < geomean_ratio < 2.0
