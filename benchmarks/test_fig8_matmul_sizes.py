"""Figure 8: matmul slowdown across matrix sizes.

Paper: across NI x NK x NJ sweeps from 200x220x240 to 2000x2200x2400,
WebAssembly matmul stays between 2x and 3.4x slower than native in both
browsers.  The reproduction sweeps the same 1 : 1.1 : 1.2 shapes at
reduced scale and requires a consistent (size-stable) slowdown band.
"""

from conftest import publish

from repro.analysis import fig8
from repro.benchsuite import FIG8_SIZES


def test_fig8(benchmark):
    per_size, text = benchmark.pedantic(
        lambda: fig8(FIG8_SIZES, runs=2), rounds=1, iterations=1)
    publish("fig8_matmul_sizes", text)

    chrome = [r["chrome"] for r in per_size.values()]
    firefox = [r["firefox"] for r in per_size.values()]
    # Always slower than native, within a stable band (paper: 2-3.4x).
    assert all(1.3 <= r <= 3.6 for r in chrome), chrome
    assert all(1.3 <= r <= 3.6 for r in firefox), firefox
    # Stability across sizes: max/min within ~1.8x of each other.
    assert max(chrome) / min(chrome) < 1.8
