"""Disabled-observability overhead gate.

The observability layer (repro.obs) promises that when tracing, metrics,
and profiling are all disabled — the default — the instrumented hot
paths cost (near) nothing.  This script measures that promise on a small
bench sweep and fails (exit 1) if the disabled-path overhead exceeds the
budget, so CI catches any instrumentation that leaks cost into
measurements.

Method: run the same benchmark sweep twice per mode, take the best
wall-clock of ``--repeats`` attempts for each mode, and compare

* ``disabled``  — observability off (the measurement configuration;
  this includes the hwc model's disabled-path checks in the executor
  hot loop, so the gate bounds their cost too);
* ``enabled``   — tracing + metrics on (sanity reference, not gated);
* ``hwc``       — the microarchitectural model attached (reference,
  not gated; retired counters and output are asserted bit-identical
  to the disabled sweep).

The gate compares ``disabled`` against itself across interleaved halves
(A/B of the same configuration) to bound timer noise, then against the
recorded baseline budget: overhead = disabled / min(disabled-rerun)
must stay under ``--budget`` (default 3%) relative to the fastest
observed disabled run.

Results are written as JSON (``--output``).

Usage::

    PYTHONPATH=src python bench/obs_overhead.py [--budget 0.03]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs                                     # noqa: E402
from repro.benchsuite import polybench_benchmark          # noqa: E402
from repro.harness.runner import (                        # noqa: E402
    compile_benchmark, run_compiled,
)

BENCHMARKS = ("durbin", "trisolv", "gemm")
TARGETS = ("native", "chrome")


def _sweep(compiled, hwc: bool = False):
    """One full sweep; returns (wall_seconds, results key)."""
    from repro.obs.hwc import HwcModel

    start = time.perf_counter()
    fingerprint = []
    for name in BENCHMARKS:
        for target in TARGETS:
            result = run_compiled(compiled[name], target, runs=2,
                                  hwc=HwcModel() if hwc else None)
            fingerprint.append(
                (name, target, result.run.perf.instructions,
                 result.run.exit_code, result.run.stdout))
    return time.perf_counter() - start, fingerprint


def _best(compiled, repeats, hwc: bool = False):
    best = None
    fingerprint = None
    for _ in range(repeats):
        seconds, fp = _sweep(compiled, hwc=hwc)
        if best is None or seconds < best:
            best = seconds
        if fingerprint is None:
            fingerprint = fp
        elif fingerprint != fp:
            raise SystemExit("FAIL: sweep results are not deterministic")
    return best, fingerprint


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=0.03,
                        help="max disabled-path overhead (fraction)")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--output", default="OBS_overhead.json")
    args = parser.parse_args(argv)

    # Compile once, outside the timed region (compiles dwarf execution
    # and would drown the per-instruction overhead being measured).
    compiled = {name: compile_benchmark(
        polybench_benchmark(name, "test"), TARGETS, cache=False)
        for name in BENCHMARKS}

    # Warm-up, then interleave the two modes so drift hits both equally.
    _sweep(compiled)
    obs.disable_tracing()
    obs.disable_metrics()
    disabled_a, fp_disabled = _best(compiled, args.repeats)

    obs.enable_tracing()
    obs.enable_metrics()
    try:
        enabled, fp_enabled = _best(compiled, args.repeats)
    finally:
        obs.disable_tracing()
        obs.disable_metrics()

    hwc_seconds, fp_hwc = _best(compiled, args.repeats, hwc=True)

    disabled_b, _ = _best(compiled, args.repeats)

    if fp_enabled != fp_disabled:
        print("FAIL: enabling observability changed results")
        return 1
    if fp_hwc != fp_disabled:
        print("FAIL: attaching the hwc model changed results")
        return 1

    baseline = min(disabled_a, disabled_b)
    slower = max(disabled_a, disabled_b)
    overhead = slower / baseline - 1.0
    enabled_overhead = enabled / baseline - 1.0
    hwc_overhead = hwc_seconds / baseline - 1.0

    report = {
        "benchmarks": list(BENCHMARKS),
        "targets": list(TARGETS),
        "repeats": args.repeats,
        "budget": args.budget,
        "disabled_seconds": baseline,
        "disabled_rerun_seconds": slower,
        "disabled_overhead": overhead,
        "enabled_seconds": enabled,
        "enabled_overhead": enabled_overhead,
        "hwc_seconds": hwc_seconds,
        "hwc_overhead": hwc_overhead,
        "results_identical": True,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)

    print(f"disabled sweep: {baseline:.3f}s "
          f"(rerun {slower:.3f}s, spread {100 * overhead:.2f}%)")
    print(f"enabled sweep:  {enabled:.3f}s "
          f"(+{100 * enabled_overhead:.2f}% vs disabled)")
    print(f"hwc sweep:      {hwc_seconds:.3f}s "
          f"(+{100 * hwc_overhead:.2f}% vs disabled, reference only)")
    if overhead > args.budget:
        print(f"FAIL: disabled-observability overhead {overhead:.4f} "
              f"exceeds budget {args.budget}")
        return 1
    print(f"PASS: disabled-path overhead within "
          f"{100 * args.budget:.0f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
