"""CI gate for the hwc microarchitectural model (repro.obs.hwc).

Three promises, each checked end-to-end on a small sweep and failed
loudly (exit 1) when broken:

1. **Determinism** — two identical runs with the model attached produce
   bit-identical :class:`~repro.obs.hwc.HwcReport` payloads, and a
   ``--jobs 2`` parallel sweep reproduces the serial sweep exactly
   (the model rides through forked workers via ``REPRO_HWC``).
2. **Bit-identity** — attaching the model changes no retired counter,
   cycle figure, or program byte, at every execution tier.
3. **Exactness** — per-function hwc buckets sum to the whole-program
   totals for every cell (``HwcReport.verify``).

Results are written as JSON (``--output``).

Usage::

    PYTHONPATH=src python bench/hwc_smoke.py [--output HWC_smoke.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.benchsuite import polybench_benchmark          # noqa: E402
from repro.harness.runner import (                        # noqa: E402
    compile_benchmark, run_compiled,
)
from repro.obs.hwc import HwcModel, hwc_cycles            # noqa: E402

BENCHMARKS = ("durbin", "trisolv", "gemm")
TARGETS = ("native", "chrome")
TIERS = ("off", "quicken", "fuse")


def _fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def _serial_sweep(compiled, hwc: bool):
    """Run every cell once; returns {(bench, target): payload}."""
    cells = {}
    for name in BENCHMARKS:
        for target in TARGETS:
            model = HwcModel() if hwc else None
            result = run_compiled(compiled[name], target, runs=1,
                                  hwc=model)
            run = result.run
            cells[name, target] = {
                "perf": run.perf.as_dict(),
                "icache_misses": run.icache_misses,
                "cycles": run.cycles,
                "stdout": run.stdout.decode("utf-8", "replace"),
                "hwc": run.hwc.as_dict() if run.hwc else None,
            }
            if run.hwc is not None:
                run.hwc.verify()
    return cells


def _parallel_sweep(jobs: int):
    """A --jobs sweep with the env gate on; returns hwc payloads."""
    from repro.harness.parallel import run_suite

    specs = [polybench_benchmark(name, "test") for name in BENCHMARKS]
    os.environ["REPRO_HWC"] = "1"
    # Single-CPU CI runners would silently fall back to the serial
    # path; force real forked workers so the gate exercises them.
    os.environ["REPRO_FORCE_JOBS"] = "1"
    try:
        by_name, _seconds = run_suite(specs, list(TARGETS), runs=1,
                                      jobs=jobs, cache=False)
    finally:
        os.environ.pop("REPRO_HWC", None)
        os.environ.pop("REPRO_FORCE_JOBS", None)
    cells = {}
    for spec in specs:
        for target in TARGETS:
            run = by_name[spec.name][target].run
            if run.hwc is None:
                raise SystemExit(_fail(
                    f"{spec.name}@{target}: REPRO_HWC did not reach "
                    f"the worker"))
            run.hwc.verify()
            cells[spec.name, target] = run.hwc.as_dict()
    return cells


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--output", default="HWC_smoke.json")
    args = parser.parse_args(argv)

    compiled = {name: compile_benchmark(
        polybench_benchmark(name, "test"), TARGETS, cache=False)
        for name in BENCHMARKS}

    # 1a. Serial determinism: two attached runs, identical reports.
    first = _serial_sweep(compiled, hwc=True)
    second = _serial_sweep(compiled, hwc=True)
    if first != second:
        return _fail("hwc reports differ between identical runs")

    # 2. Bit-identity: the model never perturbs what it observes.
    plain = _serial_sweep(compiled, hwc=False)
    for key, cell in plain.items():
        attached = first[key]
        for field in ("perf", "icache_misses", "cycles", "stdout"):
            if cell[field] != attached[field]:
                return _fail(
                    f"{key[0]}@{key[1]}: {field} changed with hwc "
                    f"attached")
        if attached["hwc"]["totals"]["retired"] != \
                cell["perf"]["instructions"]:
            return _fail(f"{key[0]}@{key[1]}: retired != instructions")

    # ...at every tier.
    spec_name = BENCHMARKS[0]
    for tier in TIERS:
        os.environ["REPRO_TIER"] = tier
        try:
            bare = run_compiled(compiled[spec_name], "chrome", runs=1)
            modeled = run_compiled(compiled[spec_name], "chrome", runs=1,
                                   hwc=HwcModel())
        finally:
            os.environ.pop("REPRO_TIER", None)
        if bare.run.perf.as_dict() != modeled.run.perf.as_dict() or \
                bare.run.cycles != modeled.run.cycles or \
                bare.run.stdout != modeled.run.stdout:
            return _fail(f"tier {tier}: counters changed with hwc "
                         f"attached")

    # 1b. Parallel determinism: --jobs reproduces the serial reports.
    parallel = _parallel_sweep(args.jobs)
    for key, report in parallel.items():
        if report != first[key]["hwc"]:
            return _fail(f"{key[0]}@{key[1]}: --jobs {args.jobs} hwc "
                         f"report differs from serial")

    report = {
        "benchmarks": list(BENCHMARKS),
        "targets": list(TARGETS),
        "tiers": list(TIERS),
        "jobs": args.jobs,
        "cells": len(first),
        "hwc_cycles": {
            f"{name}@{target}": hwc_cycles_of(first[name, target])
            for name, target in first
        },
        "deterministic": True,
        "bit_identical": True,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)

    print(f"PASS: {len(first)} cells deterministic (serial and "
          f"--jobs {args.jobs}), retired counters bit-identical with "
          f"the model attached across tiers {', '.join(TIERS)}")
    return 0


def hwc_cycles_of(cell) -> float:
    """Recompute the modeled cycles from a serialized cell payload."""
    from repro.obs.hwc import HwcCounters
    from repro.x86.perf import PerfCounters

    perf = PerfCounters()
    for key, value in cell["perf"].items():
        setattr(perf, key, value)
    totals = HwcCounters()
    for key, value in cell["hwc"]["totals"].items():
        setattr(totals, key, value)
    return hwc_cycles(perf, totals)


if __name__ == "__main__":
    sys.exit(main())
