"""Opt-smoke gate: fail CI when the SSA mid-end stops earning its keep.

Two gates:

1. **Code quality** — across the 23 fig4 polybench kernels, the SSA
   pipeline (GVN + SCCP + strength reduction) must deliver at least a
   5% geometric-mean static instruction reduction over the legacy
   (non-SSA) pipeline, and must never grow any single kernel.  A
   sampled subset is also interpreted both ways and must produce
   bit-identical output.

2. **Compile time** — the caching :class:`FunctionAnalysisManager`
   must make repeated analysis-hungry pipeline rounds at least 1.3x
   faster than the recompute-always control arm (``enabled=False``).
   Measured speedup is ~2-4x; the floor trips on a real regression
   (cache never hitting, over-invalidation), not on CI timer noise.

The third leg of the opt gate — fig4 at ``--tier fuse --verify-ir``
staying clean with SSA on — runs as a separate step of the CI job,
through the real CLI.

Usage::

    PYTHONPATH=src python bench/opt_smoke.py [--output OPT_smoke.json]
"""

from __future__ import annotations

import argparse
import copy
import json
import math
import os
import sys
import time

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.benchsuite import POLYBENCH_NAMES, polybench_spec  # noqa: E402
from repro.ir.interp import CollectingHost, IRInterpreter     # noqa: E402
from repro.ir.passes import optimize_module                   # noqa: E402
from repro.ir.passmanager import (                            # noqa: E402
    FunctionAnalysisManager, FunctionPass, _run_pass,
)
from repro.mcc import compile_source                          # noqa: E402

GEOMEAN_FLOOR = 1.05     # >= 5% geomean instruction reduction
CACHE_FLOOR = 1.3        # cached analyses >= 1.3x faster than recompute
SEMANTICS_SAMPLE = ("gemm", "durbin", "lu")


def _icount(module):
    return sum(f.instruction_count() for f in module.functions.values())


class _GuestHost(CollectingHost):
    """CollectingHost that also serves sys_heap_base."""

    def __init__(self, heap_base):
        super().__init__()
        self.heap_base = heap_base

    def call(self, env, name, args):
        if name == "sys_heap_base":
            return self.heap_base
        return super().call(env, name, args)


def _interp(module):
    host = _GuestHost(module.heap_base)
    value = IRInterpreter(module, host).run()
    return value, bytes(host.output)


def bench_instruction_reduction():
    """Gate 1: SSA on vs. off over the fig4 kernel set."""
    ratios = {}
    grew = []
    for name in POLYBENCH_NAMES:
        spec = polybench_spec(name, "test")
        base = compile_source(spec.source, name,
                              memory_size=spec.memory_size)
        off = optimize_module(copy.deepcopy(base), level=2, ssa=False)
        on = optimize_module(copy.deepcopy(base), level=2, ssa=True)
        n_off, n_on = _icount(off), _icount(on)
        ratios[name] = n_off / n_on
        if n_on > n_off:
            grew.append(name)
        if name in SEMANTICS_SAMPLE and _interp(on) != _interp(off):
            raise AssertionError(f"{name}: SSA pipeline changed output")
    geomean = math.exp(sum(math.log(r) for r in ratios.values())
                       / len(ratios))
    return {
        "kernels": len(ratios),
        "geomean_reduction": geomean,
        "per_kernel": {k: round(v, 4) for k, v in sorted(ratios.items())},
        "grew": grew,
        "speedup": geomean,          # uniform gate field
    }


class _AnalysisUser(FunctionPass):
    """Stands in for an analysis-hungry pass: queries the facts a real
    pipeline round needs, changes nothing."""

    name = "analysis-user"

    def run(self, func, module, fam):
        for name in ("domtree", "loops", "liveness"):
            fam.get(func, name)
        return False


def bench_analysis_cache(rounds: int = 6, repeats: int = 3):
    """Gate 2: repeated pipeline rounds, cached vs. recompute-always.

    The workload is the steady-state shape of a fixpoint pipeline:
    after the first round nothing changes, so every later round is pure
    analysis load — exactly what the cache exists to absorb.
    """
    from repro.ir.passes import LICMPass, RotatePass

    modules = []
    for name in POLYBENCH_NAMES[:8]:
        spec = polybench_spec(name, "test")
        module = compile_source(spec.source, name,
                                memory_size=spec.memory_size)
        optimize_module(module, level=2)
        modules.append(module)

    passes = [_AnalysisUser(), LICMPass(), RotatePass(), _AnalysisUser()]

    def run(enabled: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            work = [copy.deepcopy(m) for m in modules]
            fam = FunctionAnalysisManager(enabled=enabled)
            start = time.perf_counter()
            for _ in range(rounds):
                for module in work:
                    for func in module.functions.values():
                        for p in passes:
                            _run_pass(p, func, module, fam)
            best = min(best, time.perf_counter() - start)
        return best

    uncached = run(False)
    cached = run(True)
    return {
        "cached_seconds": cached,
        "uncached_seconds": uncached,
        "speedup": uncached / cached,
    }


GATES = (
    ("instruction_reduction", bench_instruction_reduction, GEOMEAN_FLOOR),
    ("analysis_cache", bench_analysis_cache, CACHE_FLOOR),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write results as JSON")
    args = parser.parse_args(argv)

    results, failed = {}, []
    for name, scenario, floor in GATES:
        print(f"[opt-smoke] {name} ...", flush=True)
        result = scenario()
        results[name] = result
        speedup = result["speedup"]
        verdict = "ok" if speedup >= floor else "FAIL"
        print(f"[opt-smoke]   {speedup:.2f}x (floor {floor:.2f}x) "
              f"{verdict}")
        if speedup < floor:
            failed.append((name, speedup, floor))
        if result.get("grew"):
            failed.append((f"{name}:grew", 0.0, 1.0))
            print(f"[opt-smoke]   kernels grew under SSA: "
                  f"{result['grew']}", file=sys.stderr)

    if args.output:
        with open(args.output, "w") as fh:
            json.dump({"gates": results}, fh, indent=2, sort_keys=True)
        print(f"[opt-smoke] wrote {args.output}")

    if failed:
        for name, speedup, floor in failed:
            print(f"[opt-smoke] {name}: {speedup:.2f}x is below the "
                  f"{floor:.2f}x floor", file=sys.stderr)
        return 1
    print("[opt-smoke] all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
