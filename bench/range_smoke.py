"""Range-analysis smoke gate: the soundness oracle and the elision floor.

Three promises are enforced, on every one of the 39 benchmarks (23
PolyBenchC + 15 SPEC + matmul) at test size, at ``--tier fuse`` with
``--verify-ir`` and ``--check-ranges`` armed:

* **Soundness** — the runtime range oracle stays silent on both
  executors: the wasm interpreter asserts every fact-bearing local and
  the x86 machine asserts every annotated def while running the
  check-eliding ``chrome-tiered`` engine.  One escaped interval fails
  the gate with the ``ranges`` pass named.
* **Elision floor** — on the fig4 kernels (the 23 PolyBenchC
  benchmarks) the tiered engine statically elides at least 25% of
  stack-depth checks and at least 50% of indirect-call checks (bounds
  + signature), and every eliding run's stdout/exit code still matches
  native exactly.  The suite-wide rate (SPEC brings function-pointer
  tables whose indices are loaded from memory, beyond an interval
  domain) is reported but not gated.
* **No gap regression** — the matmul wasm/native hwc-cycle ratio on the
  baseline chrome engine stays at or under the checked-in 1.65x, and
  the eliding chrome-tiered engine strictly improves on it.

Usage::

    PYTHONPATH=src python bench/range_smoke.py [--output FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.benchsuite import (                           # noqa: E402
    POLYBENCH_NAMES, SPEC_NAMES, matmul_spec, polybench_benchmark,
    spec_benchmark,
)
from repro.codegen.emscripten import compile_emscripten  # noqa: E402
from repro.harness.runner import (                       # noqa: E402
    compile_benchmark, run_compiled,
)
from repro.ir import CollectingHost                      # noqa: E402
from repro.ir.verify import set_check_ranges, set_verify_ir  # noqa: E402
from repro.obs.hwc import HwcModel, hwc_cycles           # noqa: E402
from repro.tier import set_tier                          # noqa: E402
from repro.wasm import WasmInstance                      # noqa: E402

#: PR 9 checked-in matmul wasm/native gap (EXPERIMENTS.md): the
#: baseline engine must not regress past it and the eliding engine
#: must come in under it.
BASELINE_GAP = 1.65

STACK_FLOOR = 0.25
INDIRECT_FLOOR = 0.50


class _Host(CollectingHost):
    def __init__(self, heap_base):
        super().__init__()
        self.heap_base = heap_base

    def call(self, env, name, args):
        if name == "sys_heap_base":
            return self.heap_base
        return super().call(env, name, args)


def _all_specs():
    for name in POLYBENCH_NAMES:
        yield polybench_benchmark(name, "test")
    for name in SPEC_NAMES:
        yield spec_benchmark(name, "test")
    yield matmul_spec()


def sweep():
    """Oracle + elision sweep; returns (per-benchmark rows, totals)."""
    rows = []
    totals = {"stack_total": 0, "stack_elided": 0,
              "indirect_total": 0, "indirect_elided": 0}
    fig4 = dict(totals)
    failures = []
    for spec in _all_specs():
        t0 = time.time()
        # Wasm-interpreter leg: facts ride in the repro-ranges custom
        # section; every local.set/tee of a fact-bearing local asserts.
        wasm, ir = compile_emscripten(spec.source, spec.name)
        host = _Host(ir.heap_base)
        try:
            WasmInstance(wasm, host=host).invoke("main")
        except AssertionError as err:
            failures.append(f"{spec.name}: wasm oracle: {err}")
            continue

        # x86 leg: the eliding engine under the machine oracle, with
        # stdout/exit compared against native.
        compiled = compile_benchmark(
            spec, ("native", "chrome-tiered"), cache=False)
        native = run_compiled(compiled, "native", runs=1)
        try:
            tiered = run_compiled(compiled, "chrome-tiered", runs=1)
        except AssertionError as err:
            failures.append(f"{spec.name}: x86 oracle: {err}")
            continue
        if (tiered.run.stdout, tiered.run.exit_code) != \
                (native.run.stdout, native.run.exit_code):
            failures.append(f"{spec.name}: eliding output diverged "
                            f"from native")
            continue
        checks = compiled.program_for(
            "chrome-tiered").compile_stats["checks"]
        for key in totals:
            totals[key] += checks[key]
            if spec.suite == "polybench":
                fig4[key] += checks[key]
        rows.append({"benchmark": spec.name, "suite": spec.suite,
                     **checks, "seconds": round(time.time() - t0, 2)})
        print(f"  {spec.name}: stack {checks['stack_elided']}"
              f"/{checks['stack_total']} indirect "
              f"{checks['indirect_elided']}/{checks['indirect_total']} "
              f"elided, oracle clean")
    return rows, totals, fig4, failures


def matmul_gap():
    """matmul hwc-cycle gap on the baseline vs the eliding engine."""
    spec = matmul_spec()
    compiled = compile_benchmark(
        spec, ("native", "chrome", "chrome-tiered"), cache=False)
    cycles = {}
    for target in ("native", "chrome", "chrome-tiered"):
        run = run_compiled(compiled, target, runs=1, hwc=HwcModel()).run
        cycles[target] = hwc_cycles(run.perf, run.hwc.totals)
    return {
        "native_cycles": cycles["native"],
        "chrome_cycles": cycles["chrome"],
        "chrome_tiered_cycles": cycles["chrome-tiered"],
        "chrome_gap": cycles["chrome"] / cycles["native"],
        "chrome_tiered_gap": cycles["chrome-tiered"] / cycles["native"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", help="write the report as JSON")
    args = parser.parse_args(argv)

    set_tier("fuse")
    set_verify_ir(True)
    set_check_ranges(True)

    print("range oracle + elision sweep (39 benchmarks, --tier fuse, "
          "--verify-ir, --check-ranges):")
    rows, totals, fig4, failures = sweep()
    gap = matmul_gap()

    ok = True
    if failures:
        ok = False
        for line in failures:
            print(f"FAIL {line}")

    stack_rate = fig4["stack_elided"] / max(fig4["stack_total"], 1)
    indirect_rate = (fig4["indirect_elided"]
                     / max(fig4["indirect_total"], 1))
    print(f"\nfig4 stack checks elided: {fig4['stack_elided']}"
          f"/{fig4['stack_total']} ({100 * stack_rate:.1f}%, "
          f"floor {100 * STACK_FLOOR:.0f}%)")
    print(f"fig4 indirect checks elided: {fig4['indirect_elided']}"
          f"/{fig4['indirect_total']} ({100 * indirect_rate:.1f}%, "
          f"floor {100 * INDIRECT_FLOOR:.0f}%)")
    print(f"suite-wide (not gated): stack {totals['stack_elided']}"
          f"/{totals['stack_total']}, indirect "
          f"{totals['indirect_elided']}/{totals['indirect_total']}")
    if stack_rate < STACK_FLOOR:
        print("FAIL stack-check elision under floor")
        ok = False
    if fig4["indirect_total"] and indirect_rate < INDIRECT_FLOOR:
        print("FAIL indirect-check elision under floor")
        ok = False

    print(f"matmul gap: chrome {gap['chrome_gap']:.3f}x, chrome-tiered "
          f"{gap['chrome_tiered_gap']:.3f}x (PR baseline "
          f"{BASELINE_GAP:.2f}x)")
    if gap["chrome_gap"] > BASELINE_GAP + 0.01:
        print("FAIL baseline chrome gap regressed past the checked-in "
              "figure")
        ok = False
    if gap["chrome_tiered_gap"] >= min(gap["chrome_gap"], BASELINE_GAP):
        print("FAIL eliding engine does not improve on the baseline gap")
        ok = False

    if args.output:
        with open(args.output, "w") as fh:
            json.dump({"benchmarks": rows, "totals": totals,
                       "fig4": fig4,
                       "stack_rate": stack_rate,
                       "indirect_rate": indirect_rate,
                       "matmul": gap, "failures": failures,
                       "ok": ok}, fh, indent=2)
        print(f"wrote {args.output}")

    print("range-smoke:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
