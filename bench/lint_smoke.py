"""Lint-smoke gate: `repro lint` over the example fixtures and the whole
benchmark suite, compared against a checked-in baseline.

Two promises are enforced:

* **Stability** — the linter's findings over ``examples/lint/`` and every
  benchmark source are exactly the checked-in ``bench/lint_baseline.json``.
  A new finding means either a linter regression or a real bug that just
  landed in a benchmark source; either way CI should stop and a human
  should look.  Run with ``--update`` after an intentional change.
* **Cheap when off** — the between-pass IR verification gate costs (near)
  nothing when ``--verify-ir`` is not given.  The disabled-path compile
  sweep is timed twice, interleaved, and the A/B spread must stay under
  ``--budget`` (default 3%); the verify-on sweep is reported for
  reference and sanity-checked to change nothing but time.

Usage::

    PYTHONPATH=src python bench/lint_smoke.py [--update] [--output FILE]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.benchsuite import (                           # noqa: E402
    POLYBENCH_NAMES, SPEC_NAMES, matmul_spec, polybench_benchmark,
    spec_benchmark,
)
from repro.ir.passes import optimize_module              # noqa: E402
from repro.ir.verify import set_verify_ir                # noqa: E402
from repro.mcc import compile_source                     # noqa: E402
from repro.mcc.lint import lint_file, lint_source        # noqa: E402

REPO = os.path.join(os.path.dirname(__file__), "..")
BASELINE = os.path.join(os.path.dirname(__file__), "lint_baseline.json")


def _benchmark_sources():
    for name in SPEC_NAMES:
        yield f"spec:{name}", spec_benchmark(name, "test").source
    for name in POLYBENCH_NAMES:
        yield f"polybench:{name}", polybench_benchmark(name, "test").source
    yield "matmul", matmul_spec().source


def collect_findings() -> dict:
    """All lint findings, keyed by fixture path / benchmark name."""
    findings = {}
    for path in sorted(glob.glob(os.path.join(REPO, "examples", "lint",
                                              "*.mc"))):
        rel = os.path.relpath(path, REPO)
        findings[rel] = [f.as_dict() for f in lint_file(path)]
        for entry in findings[rel]:
            entry["file"] = rel
    for name, source in _benchmark_sources():
        found = lint_source(source, name)
        if found:  # keep the baseline small: clean sources are omitted
            findings[name] = [f.as_dict() for f in found]
    return findings


def _verify_sweep() -> float:
    """One compile+optimize pass over a slice of the suite."""
    start = time.perf_counter()
    for name in ("durbin", "trisolv", "gemm"):
        module = compile_source(
            polybench_benchmark(name, "test").source, name)
        optimize_module(module)
    return time.perf_counter() - start


def measure_verify_overhead(repeats: int) -> dict:
    """Disabled-path A/B spread plus the verify-on cost for reference."""
    set_verify_ir(False)
    _verify_sweep()  # warm-up
    off_a = min(_verify_sweep() for _ in range(repeats))
    set_verify_ir(True)
    try:
        on = min(_verify_sweep() for _ in range(repeats))
    finally:
        set_verify_ir(False)
    off_b = min(_verify_sweep() for _ in range(repeats))
    baseline = min(off_a, off_b)
    return {
        "disabled_seconds": baseline,
        "disabled_rerun_seconds": max(off_a, off_b),
        "disabled_overhead": max(off_a, off_b) / baseline - 1.0,
        "enabled_seconds": on,
        "enabled_overhead": on / baseline - 1.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline instead of gating")
    parser.add_argument("--budget", type=float, default=0.03,
                        help="max disabled-path verify overhead (fraction)")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--output", default=None,
                        help="write the smoke report as JSON")
    args = parser.parse_args(argv)

    findings = collect_findings()
    total = sum(len(v) for v in findings.values())
    print(f"linted examples/lint + {len(SPEC_NAMES) + len(POLYBENCH_NAMES) + 1}"
          f" benchmark sources: {total} finding(s) "
          f"in {len(findings)} source(s)")

    if args.update:
        with open(BASELINE, "w") as fh:
            json.dump(findings, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated: {BASELINE}")
        return 0

    if not os.path.exists(BASELINE):
        print(f"FAIL: no baseline at {BASELINE}; run with --update")
        return 1
    baseline = json.load(open(BASELINE))
    if findings != baseline:
        changed = sorted(set(findings) ^ set(baseline))
        for key in sorted(set(findings) & set(baseline)):
            if findings[key] != baseline[key]:
                changed.append(key)
        print("FAIL: lint findings drifted from baseline in: "
              + ", ".join(sorted(set(changed))))
        for key in sorted(set(changed)):
            print(f"  {key}:")
            print(f"    baseline: {baseline.get(key)}")
            print(f"    now:      {findings.get(key)}")
        return 1
    print("PASS: lint findings match baseline")

    overhead = measure_verify_overhead(args.repeats)
    print(f"verify-off sweep: {overhead['disabled_seconds']:.3f}s "
          f"(rerun spread {100 * overhead['disabled_overhead']:.2f}%)")
    print(f"verify-on sweep:  {overhead['enabled_seconds']:.3f}s "
          f"(+{100 * overhead['enabled_overhead']:.2f}%)")

    report = {"findings": findings, "verify_overhead": overhead,
              "budget": args.budget}
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)

    if overhead["disabled_overhead"] > args.budget:
        print(f"FAIL: disabled-path verify overhead "
              f"{overhead['disabled_overhead']:.4f} exceeds {args.budget}")
        return 1
    print(f"PASS: disabled-path overhead within "
          f"{100 * args.budget:.0f}% budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
