"""Shard smoke: the sharded sweep engine must be bit-identical to serial.

Runs a small benchmark matrix three ways — serially, on the single
warm pool (``--jobs 2``), and on the work-stealing sharded engine
(``--shards 2 --jobs 2``) — and asserts that

* every cell's measurements (times, counters, stdout) are
  bit-identical across all three schedules;
* suite order is preserved in the merged results;
* the engine actually sharded (``shard.count`` == 2 in the metrics
  registry) rather than silently falling back to the single pool;
* a second sharded sweep reuses the warm shard pools (same worker
  pids), so repeated sweeps do not re-pay the fork cost.

``REPRO_FORCE_JOBS=1`` is set so the real pools run even on a 1-CPU
CI runner.  Writes a JSON summary and exits non-zero on any
violation, so CI can gate on it.

Usage::

    PYTHONPATH=src python bench/shard_smoke.py [--output shard.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

os.environ.setdefault("REPRO_FORCE_JOBS", "1")

from repro.benchsuite import matmul_spec, polybench_benchmark  # noqa: E402
from repro.harness import shard as shard_mod              # noqa: E402
from repro.harness.parallel import (                      # noqa: E402
    run_suite, shutdown_warm_pool,
)
from repro.obs import metrics as obs_metrics              # noqa: E402

BENCHMARKS = ["trisolv", "bicg", "mvt", "gesummv"]
TARGETS = ["native", "chrome", "firefox"]


def _suite():
    # The heavy matmul cell lands in shard 0's slice: skew for steals.
    return [matmul_spec(40, 40, 40)] + \
        [polybench_benchmark(name, "test") for name in BENCHMARKS]


def sweep(jobs, shards):
    results, _ = run_suite(_suite(), TARGETS, runs=3, jobs=jobs,
                           shards=shards, cache=False)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None)
    args = parser.parse_args(argv)

    names = [spec.name for spec in _suite()]
    print("[shard-smoke] serial sweep ...", flush=True)
    serial = sweep(1, 1)
    print("[shard-smoke] single-pool sweep (--jobs 2) ...", flush=True)
    single = sweep(2, 1)
    print("[shard-smoke] sharded sweep (--jobs 2 --shards 2) ...",
          flush=True)
    registry = obs_metrics.enable()
    sharded = sweep(2, 2)

    assert list(serial) == list(single) == list(sharded) == names, \
        "suite order not preserved"
    for name in names:
        for target in TARGETS:
            s = serial[name][target]
            for schedule, results in (("single", single),
                                      ("sharded", sharded)):
                cell = results[name][target]
                assert cell.times == s.times, \
                    f"{schedule} diverged: {name}@{target} times"
                assert cell.perf.as_dict() == s.perf.as_dict(), \
                    f"{schedule} diverged: {name}@{target} counters"
                assert cell.run.stdout == s.run.stdout, \
                    f"{schedule} diverged: {name}@{target} stdout"

    gauges = {name: gauge.value
              for name, gauge in registry.gauges.items()}
    counters = {name: counter.value
                for name, counter in registry.counters.items()
                if name.startswith("shard.")}
    assert gauges.get("shard.count") == 2, \
        f"engine did not shard: {gauges}"

    pools = shard_mod._SHARDS["pools"]
    pids = [w["proc"].pid for pool in pools for w in pool.workers]
    rewarmed = sweep(2, 2)
    assert shard_mod._SHARDS["pools"] is pools and \
        [w["proc"].pid for pool in pools
         for w in pool.workers] == pids, "shard pools not reused"
    for name in names:
        for target in TARGETS:
            assert rewarmed[name][target].times == \
                serial[name][target].times, "warm re-sweep diverged"
    shutdown_warm_pool()

    summary = {
        "benchmarks": names,
        "targets": TARGETS,
        "cells": len(names) * len(TARGETS),
        "bit_identical": True,
        "pools_reused": True,
        "shard_counters": counters,
        "shard_gauges": {k: v for k, v in gauges.items()
                         if k.startswith("shard.")},
        "cpus": os.cpu_count(),
    }
    print(json.dumps(summary, indent=2))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(summary, fh, indent=2)
        print(f"[shard-smoke] wrote {args.output}")
    print("[shard-smoke] sharded sweep bit-identical to serial")
    return 0


if __name__ == "__main__":
    sys.exit(main())
