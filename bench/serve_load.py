"""Serve load smoke: the benchmark service must degrade, not collapse.

Spawns ``repro serve`` as a subprocess, then drives it with an
**open-loop** load: ``--arrivals`` submissions on a fixed deterministic
schedule (arrival *i* fires at ``i / --rate`` seconds, whether or not
earlier requests finished), issued by hundreds of distinct simulated
clients.  The workload cycles through a small matrix of matmul cells so
the first submission of each key does real work and repeats exercise
the service-side memo table.

Gates (exit non-zero on any violation):

* **no lost jobs** — every accepted job reaches a terminal state
  (``done`` / ``failed`` / ``evicted`` / ``cancelled``); a job still
  ``queued``/``running`` when the dust settles is a bug;
* **structured load shedding** — every rejected submission carries a
  machine-readable ``code`` (``overloaded`` / ``rate_limited`` /
  ``circuit_open`` / ``draining``) and a ``retry_after`` hint;
* **latency budgets** — p50 / p99 of accepted-job latency under
  ``--p50-budget`` / ``--p99-budget`` seconds;
* **goodput** — ``done / accepted >= --min-goodput`` (lower the bar in
  chaos mode, where injected faults legitimately fail some cells);
* **bit-identity** — a served result for one cell equals a direct
  in-process :func:`measure_cell` run of the same cell, field for field;
* **clean drain** — SIGTERM makes the service exit 0, and a scan of
  ``/proc/*/environ`` for the marker env var finds zero orphan workers.

Chaos mode: pass ``--inject worker:0.1,trap:0.05`` (forwarded to the
service) to prove the gates hold while workers are being shot.

Writes a JSON artifact (latency histogram + percentiles + service
stats) for CI upload.

Usage::

    PYTHONPATH=src python bench/serve_load.py [--arrivals 120] \
        [--inject worker:0.1,trap:0.05] [--output serve_load.json]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

MARKER = "REPRO_SERVE_LOAD_MARKER"
SHED_CODES = ("overloaded", "rate_limited", "circuit_open", "draining")
HIST_BOUNDS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0)

#: The benchmark matrix: dims small enough that a cell is sub-second
#: warm, distinct enough that chaos has real dispatches to shoot.
DIMS = (6, 7, 8, 9, 10, 11, 12, 13)
TARGETS = ("native", "chrome")


def workload(i: int) -> tuple:
    """Deterministic (benchmark, target, priority, deadline) for slot i."""
    n = DIMS[i % len(DIMS)]
    target = TARGETS[(i // len(DIMS)) % len(TARGETS)]
    priority = (-1, 0, 0, 1)[i % 4]
    deadline = 60.0 if i % 7 == 3 else None
    return f"matmul-{n}x{n}x{n}", target, priority, deadline


def percentile(values, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


def histogram(values) -> list:
    counts = [0] * (len(HIST_BOUNDS) + 1)
    for v in values:
        for b, bound in enumerate(HIST_BOUNDS):
            if v <= bound:
                counts[b] += 1
                break
        else:
            counts[-1] += 1
    return [{"le": b, "count": c}
            for b, c in zip(list(HIST_BOUNDS) + ["inf"], counts)]


class Client:
    """Thin JSON-RPC client over urllib (one call per request)."""

    def __init__(self, port: int):
        self.url = f"http://127.0.0.1:{port}/rpc"
        self._id = 0
        self._lock = threading.Lock()

    def call(self, method: str, params: dict, timeout: float = 15.0):
        with self._lock:
            self._id += 1
            rid = self._id
        body = json.dumps({"jsonrpc": "2.0", "id": rid,
                           "method": method, "params": params}).encode()
        req = urllib.request.Request(
            self.url, data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read())


def drive_one(rpc: Client, i: int, t0: float, rate: float,
              distinct: int, runs: int, records: list,
              terminal_deadline: float) -> None:
    """One open-loop arrival: sleep to slot, submit, wait to terminal."""
    benchmark, target, priority, deadline = workload(i)
    rec = {"i": i, "benchmark": benchmark, "target": target,
           "accepted": False, "state": None, "shed_code": None,
           "latency": None, "memo_hit": False, "error": None}
    records[i] = rec
    time.sleep(max(0.0, t0 + i / rate - time.monotonic()))
    submitted = time.monotonic()
    params = {"benchmark": benchmark, "target": target, "runs": runs,
              "client": f"c{i % distinct:03d}", "priority": priority}
    if deadline is not None:
        params["deadline_s"] = deadline
    try:
        reply = rpc.call("submit", params)
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        rec["error"] = f"transport: {exc}"
        return
    if "error" in reply:
        data = reply["error"].get("data") or {}
        rec["state"] = "shed"
        rec["shed_code"] = data.get("code")
        rec["retry_after"] = data.get("retry_after")
        return
    rec["accepted"] = True
    job_id = reply["result"]["job_id"]
    while time.monotonic() < terminal_deadline:
        try:
            status = rpc.call("wait", {"job_id": job_id,
                                       "timeout_s": 10.0},
                              timeout=20.0)["result"]
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            rec["error"] = f"transport: {exc}"
            return
        if status.get("terminal"):
            rec["state"] = status["state"]
            rec["memo_hit"] = status.get("memo_hit", False)
            rec["latency"] = time.monotonic() - submitted
            rec["result"] = status.get("result")
            return
    rec["state"] = "lost"   # accepted but never terminal: the bug


def direct_cell(benchmark: str, target: str, runs: int) -> dict:
    """The same cell measured in-process — the bit-identity reference."""
    from repro.cli import _resolve_spec
    from repro.resilience import RetryPolicy
    from repro.resilience.cell import measure_cell
    from repro.serve.executor import MAX_INSTRUCTIONS, result_payload

    spec = _resolve_spec(benchmark, "test")
    result, failure, _seconds, attempts = measure_cell(
        spec, target, runs=runs, max_instructions=MAX_INSTRUCTIONS,
        policy=RetryPolicy(retries=2))
    assert failure is None, f"direct run failed: {failure}"
    return result_payload(result, attempts=attempts)


def scan_orphans(token: str) -> list:
    """Pids whose environment still carries the marker token."""
    orphans = []
    for pid in os.listdir("/proc"):
        if not pid.isdigit() or int(pid) == os.getpid():
            continue
        try:
            with open(f"/proc/{pid}/environ", "rb") as fh:
                if token.encode() in fh.read():
                    orphans.append(int(pid))
        except OSError:
            continue
    return orphans


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--arrivals", type=int, default=120,
                        help="total submissions (default 120)")
    parser.add_argument("--rate", type=float, default=60.0,
                        help="arrival rate per second (default 60)")
    parser.add_argument("--distinct-clients", type=int, default=200)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--runs", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--max-wait", type=float, default=30.0)
    parser.add_argument("--service-rate", type=float, default=0.0,
                        help="per-client token rate (0 disables)")
    parser.add_argument("--inject", default=None,
                        help="fault plan forwarded to the service")
    parser.add_argument("--inject-seed", type=int, default=1)
    parser.add_argument("--p50-budget", type=float, default=15.0)
    parser.add_argument("--p99-budget", type=float, default=60.0)
    parser.add_argument("--min-goodput", type=float, default=0.9)
    parser.add_argument("--settle", type=float, default=180.0,
                        help="max seconds to wait for terminal states")
    parser.add_argument("--output", default=None)
    args = parser.parse_args(argv)

    token = f"serve-load-{os.getpid()}-{int(time.time())}"
    env = dict(os.environ, PYTHONPATH=os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         os.environ.get("PYTHONPATH", "")]))
    env[MARKER] = token
    cmd = [sys.executable, "-m", "repro", "serve",
           "--host", "127.0.0.1", "--port", "0",
           "--workers", str(args.workers), "--runs", str(args.runs),
           "--queue-depth", str(args.queue_depth),
           "--max-wait", str(args.max_wait),
           "--rate", str(args.service_rate), "--grace", "30"]
    if args.inject:
        cmd += ["--inject", args.inject,
                "--inject-seed", str(args.inject_seed)]
    print(f"[serve-load] starting service: {' '.join(cmd[2:])}",
          flush=True)
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, env=env)
    banner = proc.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", banner)
    if not match:
        proc.kill()
        print(f"[serve-load] no banner from service: {banner!r}")
        return 2
    port = int(match.group(1))
    rpc = Client(port)
    print(f"[serve-load] service up on port {port}; "
          f"{args.arrivals} arrivals at {args.rate}/s", flush=True)

    records = [None] * args.arrivals
    t0 = time.monotonic() + 0.25
    terminal_deadline = t0 + args.arrivals / args.rate + args.settle
    threads = [threading.Thread(
        target=drive_one,
        args=(rpc, i, t0, args.rate, args.distinct_clients, args.runs,
              records, terminal_deadline), daemon=True)
        for i in range(args.arrivals)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=max(0.0, terminal_deadline - time.monotonic())
               + 30.0)

    stats = rpc.call("stats", {}, timeout=15.0)["result"]

    # -- drain: SIGTERM must exit 0 with no orphans ----------------------------------
    proc.send_signal(signal.SIGTERM)
    try:
        tail, _ = proc.communicate(timeout=90)
    except subprocess.TimeoutExpired:
        proc.kill()
        tail = "(killed: drain hung)"
    time.sleep(0.5)
    orphans = scan_orphans(token)

    # -- tally -----------------------------------------------------------------------
    accepted = [r for r in records if r and r["accepted"]]
    done = [r for r in accepted if r["state"] == "done"]
    failed = [r for r in accepted if r["state"] == "failed"]
    evicted = [r for r in accepted
               if r["state"] in ("evicted", "cancelled")]
    lost = [r for r in accepted
            if r["state"] not in ("done", "failed", "evicted",
                                  "cancelled")]
    shed = [r for r in records if r and r["state"] == "shed"]
    transport = [r for r in records if r and r["error"]]
    latencies = [r["latency"] for r in done if r["latency"] is not None]
    goodput = len(done) / len(accepted) if accepted else 1.0
    p50 = percentile(latencies, 0.50)
    p99 = percentile(latencies, 0.99)

    failures = []
    if lost:
        failures.append(f"{len(lost)} accepted jobs never reached a "
                        f"terminal state: "
                        f"{[(r['i'], r['state']) for r in lost[:5]]}")
    bad_shed = [r for r in shed if r["shed_code"] not in SHED_CODES
                or not isinstance(r.get("retry_after"), (int, float))]
    if bad_shed:
        failures.append(f"{len(bad_shed)} sheds missing structured "
                        f"code/retry_after")
    if transport:
        failures.append(f"{len(transport)} transport errors: "
                        f"{transport[0]['error']}")
    if goodput < args.min_goodput:
        failures.append(f"goodput {goodput:.3f} < {args.min_goodput}")
    if p50 > args.p50_budget:
        failures.append(f"p50 {p50:.2f}s > budget {args.p50_budget}s")
    if p99 > args.p99_budget:
        failures.append(f"p99 {p99:.2f}s > budget {args.p99_budget}s")
    if proc.returncode != 0:
        failures.append(f"service exit code {proc.returncode} != 0 "
                        f"after SIGTERM; tail: {tail[-300:]}")
    if orphans:
        failures.append(f"orphan worker processes survived drain: "
                        f"{orphans}")

    # -- bit-identity: a served result vs a direct in-process run --------------------
    reference = next((r for r in done if r.get("result")), None)
    identical = None
    if reference is not None:
        served = dict(reference["result"])
        direct = direct_cell(reference["benchmark"],
                             reference["target"], args.runs)
        for key in ("attempts", "memo"):
            served.pop(key, None)
            direct.pop(key, None)
        identical = served == direct
        if not identical:
            diff = {k: (served.get(k), direct.get(k))
                    for k in set(served) | set(direct)
                    if served.get(k) != direct.get(k)}
            failures.append(f"served result not bit-identical to "
                            f"direct run: {diff}")
    elif done:
        failures.append("no done job carried a result payload")

    summary = {
        "config": vars(args),
        "arrivals": args.arrivals,
        "accepted": len(accepted),
        "done": len(done),
        "failed": len(failed),
        "evicted": len(evicted),
        "shed": len(shed),
        "lost": len(lost),
        "memo_hits": sum(1 for r in done if r["memo_hit"]),
        "goodput": round(goodput, 4),
        "latency": {"p50": round(p50, 4), "p99": round(p99, 4),
                    "histogram": histogram(latencies)},
        "sheds_by_code": {code: sum(1 for r in shed
                                    if r["shed_code"] == code)
                          for code in SHED_CODES},
        "bit_identical": identical,
        "service_exit_code": proc.returncode,
        "orphan_workers": orphans,
        "service_stats": stats,
        "failures": failures,
    }
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"[serve-load] wrote {args.output}", flush=True)

    print(f"[serve-load] accepted={len(accepted)} done={len(done)} "
          f"failed={len(failed)} evicted={len(evicted)} "
          f"shed={len(shed)} lost={len(lost)} goodput={goodput:.3f} "
          f"p50={p50:.2f}s p99={p99:.2f}s "
          f"bit_identical={identical} exit={proc.returncode} "
          f"orphans={len(orphans)}", flush=True)
    if failures:
        for failure in failures:
            print(f"[serve-load] FAIL: {failure}")
        return 1
    print("[serve-load] all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
