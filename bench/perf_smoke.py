"""Perf-smoke gate: fail CI when the fast paths stop being fast.

Runs the tier and warm-pool scenarios from :mod:`bench.run_bench` and
enforces floors well below the measured speedups, so noise on a shared
CI runner does not flake the gate but a real regression (fusion slower
than table dispatch, warm pool slower than a cold pool) fails it.
Bit-identity is asserted inside each scenario — a warm-pool or fused
run that diverges from serial raises before the floors are checked.

Usage::

    PYTHONPATH=src python bench/perf_smoke.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from run_bench import (                                   # noqa: E402
    bench_parallel_warm, bench_sharded_sweep, bench_wasm_fused,
    bench_x86_fused,
)

#: (scenario, floor): measured speedups are ~1.5x / ~1.5x / ~1.7x, so a
#: floor of 1.05x trips only when the optimization has actually
#: regressed past the baseline, not on timer jitter.  The sharded
#: engine cannot beat the single pool on a 1-CPU CI box, so its gate
#: bounds the coordination *overhead* instead (measured ~0.87x of the
#: single-pool time on 1 CPU; the 0.75x floor trips only when the
#: coordinator itself regresses); steal activity and bit-identity are
#: asserted inside the scenario.
GATES = (
    ("wasm_fused", bench_wasm_fused, 1.05),
    ("x86_fused", bench_x86_fused, 1.05),
    ("parallel_warm", bench_parallel_warm, 1.05),
    ("sharded_sweep", lambda: bench_sharded_sweep(force=True), 0.75),
)


def main() -> int:
    failed = []
    for name, scenario, floor in GATES:
        print(f"[perf-smoke] {name} ...", flush=True)
        result = scenario()
        speedup = result["speedup"]
        verdict = "ok" if speedup >= floor else "FAIL"
        print(f"[perf-smoke]   {speedup:.2f}x (floor {floor:.2f}x) "
              f"{verdict}")
        if speedup < floor:
            failed.append((name, speedup, floor))
    if failed:
        for name, speedup, floor in failed:
            print(f"[perf-smoke] {name}: {speedup:.2f}x is below the "
                  f"{floor:.2f}x floor", file=sys.stderr)
        return 1
    print("[perf-smoke] all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
