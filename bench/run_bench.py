"""Micro-benchmarks for the measurement-stack fast paths.

Times each optimized subsystem against its in-tree pre-optimization
baseline and writes ``BENCH_repro.json`` at the repo root:

* ``compile_cache``   — a repeated 2-experiment suite run, cold
  (``--no-cache`` semantics) vs. warm (content-addressed cache);
* ``wasm_interp``     — a single-pass PolyBench run on the table-dispatch
  interpreter vs. the original chain-dispatch one;
* ``x86_machine``     — the decoded x86 executor vs. the original
  if/elif chain, same program, counters asserted identical;
* ``parallel_suite``  — a 4-benchmark suite sweep, ``jobs=4`` vs.
  serial, results asserted bit-identical.

Usage::

    PYTHONPATH=src python bench/run_bench.py [--output BENCH_repro.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.benchsuite import polybench_benchmark          # noqa: E402
from repro.codegen import compile_native                  # noqa: E402
from repro.codegen.emscripten import compile_emscripten   # noqa: E402
from repro.harness.compilecache import CompileCache       # noqa: E402
from repro.harness.parallel import run_suite              # noqa: E402
from repro.harness.runner import compile_benchmark        # noqa: E402
from repro.ir import CollectingHost                       # noqa: E402
from repro.wasm.interp import WasmInstance                # noqa: E402
from repro.wasm.interp_baseline import BaselineWasmInstance  # noqa: E402
from repro.x86.machine import X86Machine                  # noqa: E402
from repro.x86.machine_baseline import X86MachineBaseline  # noqa: E402


class _Host(CollectingHost):
    def __init__(self, heap_base):
        super().__init__()
        self.heap_base = heap_base

    def call(self, env, name, args):
        if name == "sys_heap_base":
            return self.heap_base
        return super().call(env, name, args)


def _best_of(fn, repeats=3):
    """Best wall-clock of ``repeats`` runs; returns (seconds, result)."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def bench_compile_cache():
    """Two experiments over the same 2 benchmarks: each experiment
    recompiles every (benchmark, target) cell, so the second pass and
    the repeated benchmarks are pure cache-hit territory."""
    names = ["trisolv", "bicg"]
    targets = ("native", "chrome", "firefox")

    def experiment(cache):
        for _ in range(2):  # e.g. Table 1 then Fig. 3 over the same suite
            for name in names:
                compile_benchmark(polybench_benchmark(name, "test"),
                                  targets, cache=cache)

    cold_seconds, _ = _best_of(lambda: experiment(False), repeats=2)

    with tempfile.TemporaryDirectory() as tmp:
        cache = CompileCache(directory=tmp)
        experiment(cache)  # populate
        warm_seconds, _ = _best_of(lambda: experiment(cache), repeats=2)
        stats = cache.stats.as_dict()

    return {
        "description": "repeated 2-experiment compile sweep, "
                       "cold vs content-addressed cache",
        "baseline_seconds": cold_seconds,
        "optimized_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "cache_stats": stats,
    }


def bench_wasm_interp():
    spec = polybench_benchmark("2mm", "test")
    wasm, ir = compile_emscripten(spec.source, spec.name)

    def run(cls):
        host = _Host(ir.heap_base)
        value = cls(wasm, host=host).invoke("main")
        return value, bytes(host.output)

    base_seconds, base_out = _best_of(lambda: run(BaselineWasmInstance))
    fast_seconds, fast_out = _best_of(lambda: run(WasmInstance))
    assert base_out == fast_out, "interpreters disagree"
    return {
        "description": "single-pass 2mm on the wasm interpreter, "
                       "chain dispatch vs pre-decoded table dispatch",
        "baseline_seconds": base_seconds,
        "optimized_seconds": fast_seconds,
        "speedup": base_seconds / fast_seconds,
    }


def bench_x86_machine():
    spec = polybench_benchmark("gemm", "test")
    program, module = compile_native(spec.source, spec.name)

    def run(cls):
        machine = cls(program, host=_Host(module.heap_base))
        machine.call("main")
        return machine.perf.as_dict()

    base_seconds, base_perf = _best_of(lambda: run(X86MachineBaseline))
    fast_seconds, fast_perf = _best_of(lambda: run(X86Machine))
    assert base_perf == fast_perf, "perf counters diverge"
    return {
        "description": "native gemm on the simulated x86 machine, "
                       "chain dispatch vs pre-decoded dispatch",
        "baseline_seconds": base_seconds,
        "optimized_seconds": fast_seconds,
        "speedup": base_seconds / fast_seconds,
        "instructions": fast_perf["instructions"],
    }


def bench_parallel_suite():
    # Heavy enough that per-cell work dominates worker startup.
    names = ["2mm", "3mm", "gemm", "covariance"]
    targets = ["native", "chrome", "firefox"]

    def sweep(jobs):
        suite = [polybench_benchmark(name, "test") for name in names]
        return run_suite(suite, targets, runs=3, jobs=jobs, cache=False)

    serial_seconds, (serial, _) = _best_of(lambda: sweep(1), repeats=1)
    parallel_seconds, (parallel, _) = _best_of(lambda: sweep(4),
                                               repeats=1)
    for name in names:
        for target in targets:
            assert serial[name][target].times == \
                parallel[name][target].times, "parallel diverged"
    return {
        "description": "4-benchmark x 3-target suite sweep, serial vs "
                       "jobs=4; results asserted bit-identical. "
                       "Wall-clock speedup needs multiple cores.",
        "baseline_seconds": serial_seconds,
        "optimized_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "jobs": 4,
        "cpus": os.cpu_count(),
    }


SCENARIOS = {
    "compile_cache": bench_compile_cache,
    "wasm_interp": bench_wasm_interp,
    "x86_machine": bench_x86_machine,
    "parallel_suite": bench_parallel_suite,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_out = os.path.join(os.path.dirname(__file__), "..",
                               "BENCH_repro.json")
    parser.add_argument("--output", default=os.path.normpath(default_out))
    parser.add_argument("--scenario", action="append",
                        choices=sorted(SCENARIOS),
                        help="run only the named scenario(s)")
    args = parser.parse_args(argv)

    results = {}
    for name in (args.scenario or SCENARIOS):
        print(f"[bench] {name} ...", flush=True)
        results[name] = SCENARIOS[name]()
        print(f"[bench]   {results[name]['speedup']:.2f}x "
              f"({results[name]['baseline_seconds']:.3f}s -> "
              f"{results[name]['optimized_seconds']:.3f}s)")

    payload = {
        "generated_by": "bench/run_bench.py",
        "python": sys.version.split()[0],
        "scenarios": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench] wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
