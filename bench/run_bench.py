"""Micro-benchmarks for the measurement-stack fast paths.

Times each optimized subsystem against its in-tree pre-optimization
baseline and writes ``BENCH_repro.json`` at the repo root:

* ``compile_cache``   — a repeated 2-experiment suite run, cold
  (``--no-cache`` semantics) vs. warm (content-addressed cache);
* ``wasm_interp``     — a single-pass PolyBench run on the table-dispatch
  interpreter vs. the original chain-dispatch one;
* ``x86_machine``     — the decoded x86 executor vs. the original
  if/elif chain, same program, counters asserted identical;
* ``wasm_fused``      — the wasm interpreter at ``--tier fuse``
  (superinstructions + quickened dispatch) vs. ``--tier off`` (plain
  table dispatch), outputs asserted identical;
* ``x86_fused``       — the x86 executor at ``--tier fuse`` vs.
  ``--tier off`` on a ref-size workload, counters asserted identical;
* ``parallel_suite``  — a 4-benchmark suite sweep, ``--jobs 4`` vs.
  serial, results asserted bit-identical (degrades honestly to serial
  on a single-CPU box);
* ``parallel_warm``   — the persistent warm-worker pool vs. a pool
  rebuilt for every sweep, results asserted bit-identical to serial;
* ``sharded_sweep``   — a skewed suite sweep on the work-stealing
  sharded engine (``--shards 2``) vs. the single warm pool at the same
  ``--jobs``, results asserted bit-identical and steals recorded
  (degrades honestly to serial on a single-CPU box).

Usage::

    PYTHONPATH=src python bench/run_bench.py [--output BENCH_repro.json]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.benchsuite import polybench_benchmark          # noqa: E402
from repro.codegen import compile_native                  # noqa: E402
from repro.codegen.emscripten import compile_emscripten   # noqa: E402
from repro.harness.compilecache import CompileCache       # noqa: E402
from repro.harness.parallel import (                      # noqa: E402
    run_suite, shutdown_warm_pool,
)
from repro.harness.runner import compile_benchmark        # noqa: E402
from repro.ir import CollectingHost                       # noqa: E402
from repro.wasm.interp import WasmInstance                # noqa: E402
from repro.wasm.interp_baseline import BaselineWasmInstance  # noqa: E402
from repro.x86.machine import X86Machine                  # noqa: E402
from repro.x86.machine_baseline import X86MachineBaseline  # noqa: E402


class _Host(CollectingHost):
    def __init__(self, heap_base):
        super().__init__()
        self.heap_base = heap_base

    def call(self, env, name, args):
        if name == "sys_heap_base":
            return self.heap_base
        return super().call(env, name, args)


def _best_of(fn, repeats=3):
    """Best wall-clock of ``repeats`` runs; returns (seconds, result)."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def bench_compile_cache():
    """Two experiments over the same 2 benchmarks: each experiment
    recompiles every (benchmark, target) cell, so the second pass and
    the repeated benchmarks are pure cache-hit territory."""
    names = ["trisolv", "bicg"]
    targets = ("native", "chrome", "firefox")

    def experiment(cache):
        for _ in range(2):  # e.g. Table 1 then Fig. 3 over the same suite
            for name in names:
                compile_benchmark(polybench_benchmark(name, "test"),
                                  targets, cache=cache)

    cold_seconds, _ = _best_of(lambda: experiment(False), repeats=2)

    with tempfile.TemporaryDirectory() as tmp:
        cache = CompileCache(directory=tmp)
        experiment(cache)  # populate
        warm_seconds, _ = _best_of(lambda: experiment(cache), repeats=2)
        stats = cache.stats.as_dict()

    return {
        "description": "repeated 2-experiment compile sweep, "
                       "cold vs content-addressed cache",
        "baseline_seconds": cold_seconds,
        "optimized_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "cache_stats": stats,
    }


def bench_wasm_interp():
    spec = polybench_benchmark("2mm", "test")
    wasm, ir = compile_emscripten(spec.source, spec.name)

    def run(cls):
        host = _Host(ir.heap_base)
        value = cls(wasm, host=host, tier="off").invoke("main")
        return value, bytes(host.output)

    def run_baseline():
        host = _Host(ir.heap_base)
        value = BaselineWasmInstance(wasm, host=host).invoke("main")
        return value, bytes(host.output)

    base_seconds, base_out = _best_of(run_baseline, repeats=5)
    fast_seconds, fast_out = _best_of(lambda: run(WasmInstance),
                                      repeats=5)
    assert base_out == fast_out, "interpreters disagree"
    return {
        "description": "single-pass 2mm on the wasm interpreter, "
                       "chain dispatch vs pre-decoded table dispatch "
                       "(fusion off; see wasm_fused)",
        "baseline_seconds": base_seconds,
        "optimized_seconds": fast_seconds,
        "speedup": base_seconds / fast_seconds,
    }


def bench_wasm_fused():
    # Ref-size: ~40ms per pass at --tier off, enough to keep wall-clock
    # jitter out of the ratio (the "test" size finishes in single-digit
    # milliseconds and swings +/-20%).
    spec = polybench_benchmark("2mm", "ref")
    wasm, ir = compile_emscripten(spec.source, spec.name)

    def run(tier):
        host = _Host(ir.heap_base)
        value = WasmInstance(wasm, host=host, tier=tier).invoke("main")
        return value, bytes(host.output)

    table_seconds, table_out = _best_of(lambda: run("off"), repeats=5)
    fused_seconds, fused_out = _best_of(lambda: run("fuse"), repeats=5)
    assert table_out == fused_out, "fused interpreter diverged"
    return {
        "description": "single-pass ref-size 2mm on the wasm "
                       "interpreter, table dispatch (--tier off) vs "
                       "superinstruction fusion + quickening "
                       "(--tier fuse); outputs asserted identical",
        "baseline_seconds": table_seconds,
        "optimized_seconds": fused_seconds,
        "speedup": table_seconds / fused_seconds,
    }


def bench_x86_machine():
    spec = polybench_benchmark("gemm", "test")
    program, module = compile_native(spec.source, spec.name)

    def run_baseline():
        machine = X86MachineBaseline(program, host=_Host(module.heap_base))
        machine.call("main")
        return machine.perf.as_dict()

    def run_fast():
        machine = X86Machine(program, host=_Host(module.heap_base),
                             tier="off")
        machine.call("main")
        return machine.perf.as_dict()

    base_seconds, base_perf = _best_of(run_baseline, repeats=5)
    fast_seconds, fast_perf = _best_of(run_fast, repeats=5)
    assert base_perf == fast_perf, "perf counters diverge"
    return {
        "description": "native gemm on the simulated x86 machine, "
                       "chain dispatch vs pre-decoded dispatch "
                       "(fusion off; see x86_fused)",
        "baseline_seconds": base_seconds,
        "optimized_seconds": fast_seconds,
        "speedup": base_seconds / fast_seconds,
        "instructions": fast_perf["instructions"],
    }


def bench_x86_fused():
    # Ref-size gemm: ~10x the instructions of the "test" size, enough
    # for promotion cost to amortize and wall-clock noise to shrink.
    spec = polybench_benchmark("gemm", "ref")
    program, module = compile_native(spec.source, spec.name)

    def run(tier):
        machine = X86Machine(program, host=_Host(module.heap_base),
                             tier=tier)
        machine.call("main")
        return machine.perf.as_dict()

    table_seconds, table_perf = _best_of(lambda: run("off"), repeats=5)
    fused_seconds, fused_perf = _best_of(lambda: run("fuse"), repeats=5)
    assert table_perf == fused_perf, "fused executor diverged"
    return {
        "description": "native ref-size gemm on the x86 executor, "
                       "table dispatch (--tier off) vs superinstruction "
                       "fusion + quickening (--tier fuse); perf counters "
                       "asserted identical",
        "baseline_seconds": table_seconds,
        "optimized_seconds": fused_seconds,
        "speedup": table_seconds / fused_seconds,
        "instructions": fused_perf["instructions"],
    }


def bench_parallel_suite():
    # Heavy enough that per-cell work dominates worker startup.
    names = ["2mm", "3mm", "gemm", "covariance"]
    targets = ["native", "chrome", "firefox"]

    from repro.harness.parallel import normalize_jobs
    effective = normalize_jobs(4, quiet=True)

    def sweep(jobs):
        suite = [polybench_benchmark(name, "test") for name in names]
        return run_suite(suite, targets, runs=3, jobs=jobs, cache=False)

    serial_seconds, (serial, _) = _best_of(lambda: sweep(1), repeats=1)
    parallel_seconds, (parallel, _) = _best_of(lambda: sweep(4),
                                               repeats=1)
    shutdown_warm_pool()
    for name in names:
        for target in targets:
            assert serial[name][target].times == \
                parallel[name][target].times, "parallel diverged"
    return {
        "description": "4-benchmark x 3-target suite sweep, serial vs "
                       "--jobs 4; results asserted bit-identical. "
                       "On a single-CPU box --jobs degrades to serial "
                       "(see parallel_warm for the forced-pool number).",
        "baseline_seconds": serial_seconds,
        "optimized_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "jobs": 4,
        "effective_jobs": effective,
        "cpus": os.cpu_count(),
    }


def bench_parallel_warm():
    """Persistent warm pool vs a pool rebuilt per sweep (the old
    ``ProcessPoolExecutor`` behavior).  Forced on via REPRO_FORCE_JOBS
    so the pool runs even on a single-CPU box, with a shared compile
    cache so the comparison isolates pool lifetime from compile work.
    Results are asserted bit-identical against a serial sweep."""
    names = ["2mm", "3mm", "gemm", "covariance"]
    targets = ["native", "chrome", "firefox"]
    jobs = min(4, max(2, os.cpu_count() or 1))

    prev_force = os.environ.get("REPRO_FORCE_JOBS")
    prev_cache = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_FORCE_JOBS"] = "1"
    tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
    os.environ["REPRO_CACHE_DIR"] = tmp

    def sweep(n):
        suite = [polybench_benchmark(name, "test") for name in names]
        return run_suite(suite, targets, runs=3, jobs=n)

    def cold_sweep():
        shutdown_warm_pool()
        return sweep(jobs)

    try:
        _, (serial, _) = _best_of(lambda: sweep(1), repeats=1)  # + cache fill
        cold_seconds, (cold, _) = _best_of(cold_sweep, repeats=3)
        shutdown_warm_pool()
        sweep(jobs)  # fork + warm the pool once
        warm_seconds, (warm, _) = _best_of(lambda: sweep(jobs), repeats=3)
    finally:
        shutdown_warm_pool()
        for var, prev in (("REPRO_FORCE_JOBS", prev_force),
                          ("REPRO_CACHE_DIR", prev_cache)):
            if prev is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = prev
        shutil.rmtree(tmp, ignore_errors=True)
    for name in names:
        for target in targets:
            assert serial[name][target].times == \
                warm[name][target].times == \
                cold[name][target].times, "warm pool diverged"
    return {
        "description": "4-benchmark x 3-target suite sweep on the "
                       "persistent warm-worker pool vs a pool rebuilt "
                       "per sweep; results asserted bit-identical to "
                       "serial. Measures what repeated sweeps "
                       "(compare/report/bench loops) save.",
        "baseline_seconds": cold_seconds,
        "optimized_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "jobs": jobs,
        "cpus": os.cpu_count(),
    }


def bench_sharded_sweep(force=False):
    """Work-stealing sharded engine (``--shards 2``) vs. the single
    warm pool at the same ``--jobs``, on a *skewed* suite (one heavy
    benchmark first) so the imbalance stealing exists to absorb is
    actually present.  Results are asserted bit-identical to serial
    and the steal count is recorded from the metrics registry.

    ``force=True`` (the perf-smoke gate) sets REPRO_FORCE_JOBS so both
    engines run their real pools even on a single-CPU box; the gate
    then bounds the sharding *overhead* rather than expecting a
    speedup no 1-CPU box can deliver.  Unforced, the scenario degrades
    honestly to serial (speedup 1.0, effective_jobs 1) like
    ``parallel_suite``.
    """
    from repro.benchsuite import matmul_spec
    from repro.harness.parallel import normalize_jobs
    from repro.harness.shard import shutdown_shard_pools
    from repro.obs import metrics as obs_metrics

    names = ["2mm", "3mm", "gemm", "covariance"]
    targets = ["native", "chrome", "firefox"]
    jobs = 4

    prev_force = os.environ.get("REPRO_FORCE_JOBS")
    prev_cache = os.environ.get("REPRO_CACHE_DIR")
    if force:
        os.environ["REPRO_FORCE_JOBS"] = "1"
    tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
    os.environ["REPRO_CACHE_DIR"] = tmp

    def sweep(n_jobs, shards):
        suite = [matmul_spec(40, 40, 40)] + \
            [polybench_benchmark(name, "test") for name in names]
        return run_suite(suite, targets, runs=3, jobs=n_jobs,
                         shards=shards)

    try:
        effective = normalize_jobs(jobs, quiet=True)
        _, (serial, _) = _best_of(lambda: sweep(1, 1), repeats=1)
        sweep(jobs, 1)  # fork + warm the single pool once
        single_seconds, (single, _) = _best_of(
            lambda: sweep(jobs, 1), repeats=3)
        sweep(jobs, 2)  # fork + warm the shard pools once
        registry = obs_metrics.enable()
        sharded_seconds, (sharded, _) = _best_of(
            lambda: sweep(jobs, 2), repeats=3)
        steals = registry.counters["shard.steals"].value \
            if "shard.steals" in registry.counters else 0
        obs_metrics.disable()
    finally:
        shutdown_warm_pool()
        shutdown_shard_pools()
        for var, prev in (("REPRO_FORCE_JOBS", prev_force),
                          ("REPRO_CACHE_DIR", prev_cache)):
            if prev is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = prev
        shutil.rmtree(tmp, ignore_errors=True)
    suite_names = ["matmul-40x40x40"] + names
    for name in suite_names:
        for target in targets:
            assert serial[name][target].times == \
                single[name][target].times == \
                sharded[name][target].times, "sharded sweep diverged"
    if force or effective > 1:
        assert steals > 0, "skewed sweep produced no steals"
    return {
        "description": "Skewed 5-benchmark x 3-target sweep on the "
                       "work-stealing sharded engine (--shards 2) vs "
                       "the single warm pool at the same --jobs; "
                       "results asserted bit-identical to serial, "
                       "steal count recorded. Unforced, degrades "
                       "honestly to serial on a single-CPU box.",
        "baseline_seconds": single_seconds,
        "optimized_seconds": sharded_seconds,
        "speedup": single_seconds / sharded_seconds,
        "jobs": jobs,
        "shards": 2,
        "effective_jobs": effective if not force else jobs,
        "steals": steals,
        "cpus": os.cpu_count(),
    }


SCENARIOS = {
    "compile_cache": bench_compile_cache,
    "wasm_interp": bench_wasm_interp,
    "x86_machine": bench_x86_machine,
    "wasm_fused": bench_wasm_fused,
    "x86_fused": bench_x86_fused,
    "parallel_suite": bench_parallel_suite,
    "parallel_warm": bench_parallel_warm,
    "sharded_sweep": bench_sharded_sweep,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_out = os.path.join(os.path.dirname(__file__), "..",
                               "BENCH_repro.json")
    parser.add_argument("--output", default=os.path.normpath(default_out))
    parser.add_argument("--scenario", action="append",
                        choices=sorted(SCENARIOS),
                        help="run only the named scenario(s)")
    args = parser.parse_args(argv)

    results = {}
    for name in (args.scenario or SCENARIOS):
        print(f"[bench] {name} ...", flush=True)
        results[name] = SCENARIOS[name]()
        print(f"[bench]   {results[name]['speedup']:.2f}x "
              f"({results[name]['baseline_seconds']:.3f}s -> "
              f"{results[name]['optimized_seconds']:.3f}s)")

    payload = {
        "generated_by": "bench/run_bench.py",
        "python": sys.version.split()[0],
        "scenarios": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench] wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
