"""Chaos smoke: a fixed-seed injected sweep must complete and be
reproducible.

Runs a small benchmark matrix twice under the same fault-injection mix
and seed, and asserts that

* the sweep completes the full (benchmark, target) matrix both times —
  no escaped exception, no hang;
* the failure manifest (which cells failed, with what status, phase,
  error type, and attempt count) is bit-identical across the two runs;
* at least one fault actually fired (otherwise the injector is dead
  code and the smoke proves nothing);
* every clean cell's measurements are bit-identical to an uninjected
  run of the same matrix.

Prints the manifest as JSON and exits non-zero on any violation, so CI
can gate on it.

Usage::

    PYTHONPATH=src python bench/chaos_smoke.py [--output chaos.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.benchsuite import polybench_benchmark          # noqa: E402
from repro.harness.parallel import run_suite              # noqa: E402
from repro.resilience import (                            # noqa: E402
    FaultPlan, RetryPolicy, is_failure,
)

BENCHMARKS = ["trisolv", "bicg", "mvt"]
TARGETS = ["native", "chrome", "firefox"]
INJECT = "trap:0.3,syscall:0.25,fuel:0.1,cache:0.2"
SEED = 20190710  # the paper's USENIX ATC 2019 presentation date
POLICY = RetryPolicy(retries=2, sleep=lambda s: None)


def sweep(plan):
    specs = [polybench_benchmark(name, "test") for name in BENCHMARKS]
    results, _ = run_suite(specs, TARGETS, runs=2, jobs=1, cache=False,
                           tolerant=True, plan=plan, policy=POLICY)
    return results


def manifest(results):
    rows = []
    for name, by_target in sorted(results.items()):
        for target, cell in by_target.items():
            if is_failure(cell):
                rows.append(dict(cell.as_dict("test"), times=None))
            else:
                rows.append({"benchmark": name, "target": target,
                             "status": "OK", "times": cell.times})
    return rows


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--output", default=None, metavar="PATH")
    args = parser.parse_args()

    plan = FaultPlan.parse(INJECT, seed=SEED)
    first = manifest(sweep(plan))
    second = manifest(sweep(plan))

    total = len(BENCHMARKS) * len(TARGETS)
    failed = [row for row in first if row["status"] != "OK"]
    errors = []
    if len(first) != total:
        errors.append(f"matrix incomplete: {len(first)}/{total} cells")
    if first != second:
        errors.append("manifest differs across reruns with the same seed")
    if not failed:
        errors.append("no fault fired: injector appears dead")

    clean = manifest(sweep(None))
    clean_by_cell = {(r["benchmark"], r["target"]): r for r in clean}
    for row in first:
        if row["status"] != "OK":
            continue
        ref = clean_by_cell[(row["benchmark"], row["target"])]
        if row["times"] != ref["times"]:
            errors.append(f"clean cell {row['benchmark']}@{row['target']} "
                          "differs from uninjected run")

    payload = {
        "inject": INJECT, "seed": SEED,
        "cells": total, "failed": len(failed),
        "manifest": first, "errors": errors,
    }
    text = json.dumps(payload, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    for error in errors:
        print(f"CHAOS SMOKE FAILED: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
